//! Minimal in-tree replacement for the `num-traits` crate.
//!
//! Only the surface the ppcs workspace actually consumes is provided:
//! [`Zero`], [`One`], [`Signed`], and [`ToPrimitive`]. Implementations
//! for the bignum types live in the in-tree `num-bigint` crate.

/// Additive identity.
pub trait Zero: Sized {
    /// Returns the additive identity.
    fn zero() -> Self;
    /// Whether `self` is the additive identity.
    fn is_zero(&self) -> bool;
}

/// Multiplicative identity.
pub trait One: Sized {
    /// Returns the multiplicative identity.
    fn one() -> Self;
    /// Whether `self` is the multiplicative identity.
    fn is_one(&self) -> bool;
}

/// Signed number operations.
pub trait Signed: Sized {
    /// Absolute value.
    fn abs(&self) -> Self;
    /// Sign of the number: -1, 0 or +1.
    fn signum(&self) -> Self;
    /// Whether `self > 0`.
    fn is_positive(&self) -> bool;
    /// Whether `self < 0`.
    fn is_negative(&self) -> bool;
}

/// Lossy/checked conversion toward primitive types.
pub trait ToPrimitive {
    /// Converts to `u32` if the value fits.
    fn to_u32(&self) -> Option<u32>;
    /// Converts to `u64` if the value fits.
    fn to_u64(&self) -> Option<u64>;
    /// Converts to `i64` if the value fits.
    fn to_i64(&self) -> Option<i64>;
    /// Converts to `usize` if the value fits.
    fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }
    /// Approximate conversion to `f64`.
    fn to_f64(&self) -> Option<f64>;
}

macro_rules! impl_numeric_for_int {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self {
                0
            }
            fn is_zero(&self) -> bool {
                *self == 0
            }
        }
        impl One for $t {
            fn one() -> Self {
                1
            }
            fn is_one(&self) -> bool {
                *self == 1
            }
        }
        impl ToPrimitive for $t {
            fn to_u32(&self) -> Option<u32> {
                u32::try_from(*self).ok()
            }
            fn to_u64(&self) -> Option<u64> {
                u64::try_from(*self).ok()
            }
            fn to_i64(&self) -> Option<i64> {
                i64::try_from(*self).ok()
            }
            fn to_f64(&self) -> Option<f64> {
                Some(*self as f64)
            }
        }
    )*};
}

impl_numeric_for_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_numeric_for_float {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self {
                0.0
            }
            fn is_zero(&self) -> bool {
                *self == 0.0
            }
        }
        impl One for $t {
            fn one() -> Self {
                1.0
            }
            fn is_one(&self) -> bool {
                *self == 1.0
            }
        }
        impl ToPrimitive for $t {
            fn to_u32(&self) -> Option<u32> {
                if *self >= 0.0 && *self <= u32::MAX as $t {
                    Some(*self as u32)
                } else {
                    None
                }
            }
            fn to_u64(&self) -> Option<u64> {
                if *self >= 0.0 && *self <= u64::MAX as $t {
                    Some(*self as u64)
                } else {
                    None
                }
            }
            fn to_i64(&self) -> Option<i64> {
                if *self >= i64::MIN as $t && *self <= i64::MAX as $t {
                    Some(*self as i64)
                } else {
                    None
                }
            }
            fn to_f64(&self) -> Option<f64> {
                Some(f64::from(*self))
            }
        }
    )*};
}

impl_numeric_for_float!(f32, f64);

macro_rules! impl_signed_for_int {
    ($($t:ty),*) => {$(
        impl Signed for $t {
            fn abs(&self) -> Self {
                <$t>::abs(*self)
            }
            fn signum(&self) -> Self {
                <$t>::signum(*self)
            }
            fn is_positive(&self) -> bool {
                *self > 0
            }
            fn is_negative(&self) -> bool {
                *self < 0
            }
        }
    )*};
}

impl_signed_for_int!(i8, i16, i32, i64, i128, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(u64::zero(), 0);
        assert!(0u32.is_zero());
        assert_eq!(i64::one(), 1);
        assert!(1usize.is_one());
        assert!(!2u8.is_one());
    }

    #[test]
    fn signed_ops() {
        assert_eq!(Signed::abs(&-5i64), 5);
        assert_eq!(Signed::signum(&-5i32), -1);
        assert!(Signed::is_negative(&-1i8));
        assert!(Signed::is_positive(&3i128));
    }

    #[test]
    fn to_primitive() {
        assert_eq!(300u64.to_u32(), Some(300));
        assert_eq!(u64::MAX.to_u32(), None);
        assert_eq!((-1i64).to_u64(), None);
        assert_eq!(2.5f64.to_u32(), Some(2));
        assert_eq!(7u8.to_f64(), Some(7.0));
    }
}
