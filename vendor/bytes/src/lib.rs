//! Minimal in-tree replacement for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply clonable, sliceable immutable byte buffer
//! (`Arc<Vec<u8>>` plus a window); [`BytesMut`] is a growable builder
//! that freezes into [`Bytes`]. The [`Buf`]/[`BufMut`] traits cover the
//! little-endian accessors the ppcs wire codec uses.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length of the readable window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the readable window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new handle onto the sub-range `range` of this buffer
    /// (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The readable window as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the readable window into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Self::from(data.as_bytes().to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write access to a byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u16_le(258);
        out.put_u32_le(70000);
        out.put_u64_le(u64::MAX - 5);
        out.put_slice(b"tail");
        let mut b = out.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 258);
        assert_eq!(b.get_u32_le(), 70000);
        assert_eq!(b.get_u64_le(), u64::MAX - 5);
        let mut tail = [0u8; 4];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_slice(), &[2, 3]);
        let c = b.clone();
        drop(b);
        assert_eq!(c.len(), 5);
    }

    #[test]
    #[should_panic(expected = "Buf underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u16_le();
    }
}
