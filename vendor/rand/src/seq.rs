//! Sequence helpers: in-place shuffling and distinct index sampling.

use crate::Rng;

/// Randomized operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Distinct index sampling, mirroring `rand::seq::index`.
pub mod index {
    use crate::Rng;

    /// A set of distinct indices in `0..length`.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Consumes into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, in random
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        // Partial Fisher–Yates: the first `amount` slots end up holding a
        // uniform distinct sample.
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn sample_yields_distinct_in_range() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..50 {
                let v = sample(&mut rng, 20, 7).into_vec();
                assert_eq!(v.len(), 7);
                let mut sorted = v.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 7, "indices must be distinct");
                assert!(v.iter().all(|&i| i < 20));
            }
        }

        #[test]
        fn sample_full_range_is_permutation() {
            let mut rng = StdRng::seed_from_u64(2);
            let mut v = sample(&mut rng, 10, 10).into_vec();
            v.sort_unstable();
            assert_eq!(v, (0..10).collect::<Vec<_>>());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should permute");
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10u8, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
