//! Distributions: the `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// Types that can produce values of `T` from randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers and `bool`, uniform in `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_small_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}

impl_standard_small_uint!(u8, u16, u32);

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! impl_standard_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let v: $u = self.sample(rng);
                v as $t
            }
        }
    )*};
}

impl_standard_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Draws `v` uniform in `[0, span)`; `span ≥ 1`.
    fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span >= 1);
        // Rejection sampling over the largest multiple of `span` that
        // fits in 64 bits, to avoid modulo bias.
        let threshold = span.wrapping_neg() % span;
        loop {
            let v = rng.next_u64();
            if v >= threshold {
                return v % span;
            }
        }
    }

    /// Types with a uniform sampler over half-open and inclusive ranges.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform draw from `[low, high)` (`inclusive = false`) or
        /// `[low, high]` (`inclusive = true`).
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let width = (high as $u).wrapping_sub(low as $u);
                    let span = if inclusive {
                        match u64::from(width).checked_add(1) {
                            Some(s) => s,
                            // Full-domain inclusive range of a 64-bit type.
                            None => return rng.next_u64() as $t,
                        }
                    } else {
                        u64::from(width)
                    };
                    let v = uniform_u64_below(rng, span);
                    low.wrapping_add(v as $t)
                }
            }
        )*};
    }

    impl_uniform_int!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64
    );

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    _inclusive: bool,
                ) -> Self {
                    let unit = (rng.next_u64() >> 11) as $t
                        * (1.0 / (1u64 << 53) as $t);
                    let v = low + (high - low) * unit;
                    if v < high {
                        v
                    } else {
                        // Guard against rounding up to the open bound.
                        <$t>::from_bits(high.to_bits() - 1).max(low)
                    }
                }
            }
        )*};
    }

    impl_uniform_float!(f64);

    impl SampleUniform for f32 {
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            let v = low + (high - low) * unit;
            if v < high {
                v
            } else {
                f32::from_bits(high.to_bits() - 1).max(low)
            }
        }
    }

    /// Range expressions accepted by [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Draws one uniform value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "gen_range: empty range");
            T::sample_between(rng, low, high, true)
        }
    }
}
