//! Minimal in-tree replacement for the `rand` crate (API-compatible with
//! the subset the ppcs workspace uses).
//!
//! Provides [`RngCore`], [`Rng`], [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), uniform range
//! sampling, and the slice/index helpers under [`seq`].

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Returns a value of the standard distribution for `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns a value uniformly distributed in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Fills `dest` with random bytes (alias for
    /// [`fill_bytes`](RngCore::fill_bytes)).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Commonly used items.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_varies() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = [0u8; 37];
        let mut b = [0u8; 37];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        fn draw(rng: &mut dyn RngCore) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(draw(&mut rng) < 100);
        }
    }
}
