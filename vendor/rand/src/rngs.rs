//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the same stream as upstream `rand`'s ChaCha-based `StdRng`, but
/// the workspace only relies on determinism and statistical quality, not
/// on a specific stream.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, limb) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *limb = u64::from_le_bytes(bytes);
        }
        if s == [0, 0, 0, 0] {
            // The all-zero state is a fixed point of xoshiro; remap it.
            let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
            for limb in &mut s {
                *limb = splitmix64(&mut sm);
            }
        }
        Self { s }
    }
}
