//! Minimal in-tree replacement for the `proptest` crate.
//!
//! Implements the strategy/runner subset the ppcs test suites use:
//! the [`proptest!`] macro, `prop_assert*` macros, range and `any`
//! strategies, `prop::collection::vec`, `prop::array::uniform*`,
//! `prop::sample::{select, Index}`, [`Just`], `prop_map` and
//! `prop_flat_map`. No shrinking: a failing case reports its values and
//! deterministic seed instead.

use std::fmt;

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod array;
pub mod collection;
pub mod sample;

/// Failure of a single generated test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (the case is skipped, not failed).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result of a single generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` = number of generated inputs).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection sampling).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + Clone + PartialOrd,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + Clone + PartialOrd,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                let mut bytes = [0u8; std::mem::size_of::<$t>()];
                rng.fill_bytes(&mut bytes);
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Full bit-pattern domain: normals, subnormals, infinities, NaNs.
        f64::from_bits(rng.gen())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f32::from_bits(rng.gen())
    }
}

/// The full-domain strategy for `T` (see [`Arbitrary`]).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy generating any `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Namespaced strategy modules, mirroring `proptest::prop`.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

/// Commonly used items.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

fn seed_for(name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index, so every
    // property has its own deterministic stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Drives one property: generates `cfg.cases` inputs and panics on the
/// first failing case, reporting the deterministic seed.
pub fn run_proptest<S, F>(cfg: &ProptestConfig, name: &str, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let mut executed = 0u32;
    let mut attempts = 0u32;
    while executed < cfg.cases {
        attempts += 1;
        assert!(
            attempts < cfg.cases.saturating_mul(20).max(1000),
            "property '{name}' rejected too many generated cases"
        );
        let seed = seed_for(name, attempts);
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strategy.new_value(&mut rng);
        match test(value) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {executed} (seed {seed:#x}): {msg}");
            }
        }
    }
}

/// Declares property-based tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_proptest(
                &cfg,
                stringify!($name),
                &strategy,
                |($($pat,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ( ($cfg:expr) ) => {};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{l:?}`\n right: `{r:?}`"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{l:?}`\n right: `{r:?}`: {}",
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right`\n  both: `{l:?}`"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right`\n  both: `{l:?}`: {}",
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 5u64..10, b in -2.0f64..2.0, c in 0usize..3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(c < 3);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn array_strategy_shape(a in prop::array::uniform4(any::<u64>())) {
            prop_assert_eq!(a.len(), 4);
        }

        #[test]
        fn select_draws_from_options(k in prop::sample::select(vec![1u8, 3, 7])) {
            prop_assert!(k == 1 || k == 3 || k == 7);
        }

        #[test]
        fn index_stays_in_bounds(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(13) < 13);
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(Just(0u8), n))
                .prop_map(|v| v.len())
        ) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn early_return_ok_is_allowed(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_seed() {
        let cfg = ProptestConfig::with_cases(16);
        crate::run_proptest(&cfg, "always_fails", &(0u64..10,), |(_v,)| {
            crate::prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let cfg = ProptestConfig::with_cases(8);
        crate::run_proptest(&cfg, "det", &(0u64..1_000_000,), |(v,)| {
            first.push(v);
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_proptest(&cfg, "det", &(0u64..1_000_000,), |(v,)| {
            second.push(v);
            Ok(())
        });
        assert_eq!(first, second);
    }
}
