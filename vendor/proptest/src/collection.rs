//! Collection strategies (`prop::collection`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Acceptable length specifications for [`vec`]: an exact `usize`, a
/// half-open range, or an inclusive range.
pub trait SizeSpec {
    /// Draws a length.
    fn pick_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeSpec for usize {
    fn pick_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeSpec for std::ops::Range<usize> {
    fn pick_len(&self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty vec length range");
        rng.gen_range(self.clone())
    }
}

impl SizeSpec for std::ops::RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and length
/// specification `size`.
pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.pick_len(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
