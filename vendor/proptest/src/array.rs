//! Fixed-size array strategies (`prop::array`).

use rand::rngs::StdRng;

use crate::Strategy;

/// Strategy for `[T; N]` drawing every element from `element`.
#[derive(Clone, Debug)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

macro_rules! uniform_fns {
    ($($fn_name:ident => $n:literal),+ $(,)?) => {$(
        /// Array strategy with every element drawn from `element`.
        pub fn $fn_name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )+};
}

uniform_fns!(
    uniform1 => 1,
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform8 => 8,
    uniform12 => 12,
    uniform16 => 16,
    uniform32 => 32,
);
