//! Sampling strategies (`prop::sample`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::{Arbitrary, Strategy};

/// An abstract index, resolvable against any non-empty collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolves against a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Index(rng.gen())
    }
}

/// Strategy drawing uniformly from a fixed set of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
