//! Minimal in-tree replacement for the `parking_lot` crate: a
//! poison-free [`Mutex`]/[`RwLock`] veneer over `std::sync`.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a poison error
/// (a panicked holder simply releases the lock).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods never return poison
/// errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
