//! Minimal in-tree replacement for the `num-integer` crate.
//!
//! Provides the [`Integer`] trait surface the workspace uses (gcd, lcm,
//! extended gcd, floored division). Implementations for the bignum types
//! live in the in-tree `num-bigint` crate; primitive unsigned integers get
//! a straightforward Euclidean implementation here.

use num_traits::Zero;

/// The result of an extended GCD computation: `gcd = a·x + b·y`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtendedGcd<T> {
    /// The greatest common divisor.
    pub gcd: T,
    /// Bézout coefficient of the first operand.
    pub x: T,
    /// Bézout coefficient of the second operand.
    pub y: T,
}

/// Integer-specific arithmetic.
pub trait Integer: Sized + Zero {
    /// Greatest common divisor.
    fn gcd(&self, other: &Self) -> Self;
    /// Least common multiple.
    fn lcm(&self, other: &Self) -> Self;
    /// Floored division.
    fn div_floor(&self, other: &Self) -> Self;
    /// Remainder with the sign of the divisor (`self mod other ≥ 0` for
    /// positive `other`).
    fn mod_floor(&self, other: &Self) -> Self;
    /// Extended Euclidean algorithm: returns `gcd` and Bézout
    /// coefficients with `gcd = self·x + other·y`.
    fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self>;
    /// Whether `self` divides evenly into `other`'s multiples.
    fn is_multiple_of_int(&self, other: &Self) -> bool {
        self.mod_floor(other).is_zero()
    }
}

macro_rules! impl_integer_unsigned {
    ($($t:ty),*) => {$(
        impl Integer for $t {
            fn gcd(&self, other: &Self) -> Self {
                let (mut a, mut b) = (*self, *other);
                while b != 0 {
                    let r = a % b;
                    a = b;
                    b = r;
                }
                a
            }
            fn lcm(&self, other: &Self) -> Self {
                if *self == 0 || *other == 0 {
                    return 0;
                }
                self / self.gcd(other) * other
            }
            fn div_floor(&self, other: &Self) -> Self {
                self / other
            }
            fn mod_floor(&self, other: &Self) -> Self {
                self % other
            }
            fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self> {
                // Unsigned coefficients are only meaningful when they end
                // up non-negative; the workspace uses the bignum impls for
                // the general case.
                let g = self.gcd(other);
                ExtendedGcd { gcd: g, x: 0, y: 0 }
            }
        }
    )*};
}

impl_integer_unsigned!(u8, u16, u32, u64, u128, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_gcd_lcm() {
        assert_eq!(12u64.gcd(&18), 6);
        assert_eq!(4u32.lcm(&6), 12);
        assert_eq!(0u64.gcd(&7), 7);
        assert_eq!(0u64.lcm(&7), 0);
    }
}
