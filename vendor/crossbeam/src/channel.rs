//! An unbounded multi-producer multi-consumer channel with the
//! `crossbeam-channel` API surface the workspace uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the deadline.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => f.write_str("channel receive timed out"),
            Self::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("channel empty"),
            Self::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a value; fails only if every receiver is gone.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying back the value when disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared.lock().push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe the
            // disconnect.
            let _guard = self.shared.lock();
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    fn disconnected(&self) -> bool {
        self.shared.senders.load(Ordering::Acquire) == 0
    }

    /// Blocks until a value arrives or every sender is gone.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout` for a value.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on deadline, otherwise
    /// [`RecvTimeoutError::Disconnected`] when empty and disconnected.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
            if result.timed_out() && queue.is_empty() {
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(v) = queue.pop_front() {
            return Ok(v);
        }
        if self.disconnected() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
    }

    #[test]
    fn timeout_disconnect_detected() {
        let (tx, rx) = unbounded::<u8>();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            drop(tx);
        });
        let err = rx.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }
}
