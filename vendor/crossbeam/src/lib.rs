//! Minimal in-tree replacement for the `crossbeam` crate: an unbounded
//! MPMC channel with timeout-aware receive, plus scoped threads
//! (re-exported from std).

pub mod channel;

/// Scoped threads (std's implementation matches the crossbeam API the
/// workspace uses).
pub mod thread {
    pub use std::thread::{scope, Scope};
}
