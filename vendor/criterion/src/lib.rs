//! Minimal in-tree replacement for the `criterion` benchmark harness.
//!
//! Auto-calibrates an iteration count per benchmark, runs `sample_size`
//! timed samples, and reports the median, min and max time per
//! iteration on stdout. No plots, no statistics beyond the quantiles —
//! enough to compare implementations and track regressions by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target accumulated time per measurement sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
/// Upper bound on the whole measurement phase of one benchmark.
const MAX_BENCH_TIME: Duration = Duration::from_secs(5);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (marker for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The final label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// in-tree harness always re-runs setup outside the timed section).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over generated inputs, excluding `setup` time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched`, but the routine borrows its input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration: grow the iteration count until one sample takes long
    // enough to time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
            break;
        }
        if b.elapsed >= TARGET_SAMPLE_TIME / 4 {
            // Close: extrapolate directly to the target.
            let per_iter = b.elapsed.as_nanos().max(1) / u128::from(iters);
            iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.max(1)).clamp(1, 1 << 30) as u64;
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let budget_start = Instant::now();
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if budget_start.elapsed() > MAX_BENCH_TIME {
            break;
        }
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples x {iters} iters)",
        format_ns(min),
        format_ns(median),
        format_ns(max),
        per_iter_ns.len(),
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_works() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n + 1)
        });
        g.bench_function("plain", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
