//! Minimal in-tree replacement for the `num-bigint` crate.
//!
//! Arbitrary-precision unsigned ([`BigUint`]) and signed ([`BigInt`])
//! integers on 64-bit limbs, covering the API surface the ppcs workspace
//! uses: arithmetic (including Knuth Algorithm D division), modular
//! exponentiation, radix parsing/formatting, byte-order conversions, and
//! (behind the `rand` feature) uniform random generation.

mod bigint;
mod biguint;

#[cfg(feature = "rand")]
mod bigrand;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;

#[cfg(feature = "rand")]
pub use bigrand::RandBigInt;
