//! Arbitrary-precision unsigned integers on little-endian `u64` limbs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};

use num_integer::{ExtendedGcd, Integer};
use num_traits::{One, ToPrimitive, Zero};

const BASE: u128 = 1u128 << 64;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` is little-endian with no trailing zero limbs, so
/// zero is the empty limb vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// Parses an ASCII representation in the given radix (2–36).
    ///
    /// Returns `None` on an empty buffer or any invalid digit.
    pub fn parse_bytes(buf: &[u8], radix: u32) -> Option<Self> {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        if buf.is_empty() {
            return None;
        }
        let mut acc = BigUint::zero();
        let radix_big = BigUint::from(u64::from(radix));
        for &b in buf {
            let d = (b as char).to_digit(radix)?;
            acc = acc * &radix_big + BigUint::from(u64::from(d));
        }
        Some(acc)
    }

    /// Builds from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut le = bytes.to_vec();
        le.reverse();
        Self::from_bytes_le(&le)
    }

    /// Builds from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut limb = [0u8; 8];
            limb[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(limb));
        }
        Self::from_limbs(limbs)
    }

    /// Big-endian bytes, no leading zeros (zero encodes as `[0]`).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut bytes = self.to_bytes_le();
        bytes.reverse();
        bytes
    }

    /// Little-endian bytes, no trailing zeros (zero encodes as `[0]`).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut bytes = Vec::with_capacity(self.limbs.len() * 8);
        for limb in &self.limbs {
            bytes.extend_from_slice(&limb.to_le_bytes());
        }
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        bytes
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + u64::from(64 - top.leading_zeros()),
        }
    }

    /// Sets or clears the bit at position `bit`.
    pub fn set_bit(&mut self, bit: u64, value: bool) {
        let limb = (bit / 64) as usize;
        let mask = 1u64 << (bit % 64);
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= mask;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !mask;
            while self.limbs.last() == Some(&0) {
                self.limbs.pop();
            }
        }
    }

    /// Whether the bit at position `bit` is set.
    pub fn bit(&self, bit: u64) -> bool {
        let limb = (bit / 64) as usize;
        limb < self.limbs.len() && self.limbs[limb] >> (bit % 64) & 1 == 1
    }

    /// Number of trailing zero bits, or `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return Some(i as u64 * 64 + u64::from(limb.trailing_zeros()));
            }
        }
        None
    }

    /// `self^exp mod modulus` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self % modulus;
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i) {
                result = &result * &base % modulus;
            }
            if i + 1 < nbits {
                base = &base * &base % modulus;
            }
        }
        result
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, exp: u32) -> BigUint {
        let mut result = BigUint::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        result
    }

    /// Integer square root (largest `r` with `r² ≤ self`).
    pub fn sqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        // Newton's method from a safe over-estimate.
        let mut x = BigUint::one() << (self.bits().div_ceil(2) as usize);
        loop {
            let next = (&x + self / &x) >> 1usize;
            if next >= x {
                return x;
            }
            x = next;
        }
    }

    /// Formats in the given radix (supported: 2–36).
    pub fn to_str_radix(&self, radix: u32) -> String {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        if self.is_zero() {
            return "0".to_string();
        }
        let radix_big = BigUint::from(u64::from(radix));
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = div_rem(&cur, &radix_big);
            let d = r.limbs.first().copied().unwrap_or(0) as u32;
            digits.push(char::from_digit(d, radix).expect("digit below radix"));
            cur = q;
        }
        digits.iter().rev().collect()
    }

    pub(crate) fn div_rem(&self, other: &BigUint) -> (BigUint, BigUint) {
        div_rem(self, other)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> Self {
                BigUint::from_limbs(vec![u64::from(v)])
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64);

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from_limbs(vec![v as u64])
    }
}

impl Zero for BigUint {
    fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }
    fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }
}

impl One for BigUint {
    fn one() -> Self {
        BigUint { limbs: vec![1] }
    }
    fn is_one(&self) -> bool {
        self.limbs == [1]
    }
}

impl ToPrimitive for BigUint {
    fn to_u32(&self) -> Option<u32> {
        self.to_u64().and_then(|v| u32::try_from(v).ok())
    }
    fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }
    fn to_i64(&self) -> Option<i64> {
        self.to_u64().and_then(|v| i64::try_from(v).ok())
    }
    fn to_f64(&self) -> Option<f64> {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * BASE as f64 + limb as f64;
        }
        Some(acc)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_limbs(&self.limbs, &other.limbs)
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn add(a: &BigUint, b: &BigUint) -> BigUint {
    let (long, short) = if a.limbs.len() >= b.limbs.len() {
        (&a.limbs, &b.limbs)
    } else {
        (&b.limbs, &a.limbs)
    };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u128;
    for (i, limb) in long.iter().enumerate() {
        let sum = *limb as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry;
        out.push(sum as u64);
        carry = sum >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    BigUint::from_limbs(out)
}

fn sub(a: &BigUint, b: &BigUint) -> BigUint {
    assert!(a >= b, "BigUint subtraction underflow");
    let mut out = Vec::with_capacity(a.limbs.len());
    let mut borrow = 0i128;
    for i in 0..a.limbs.len() {
        let d = a.limbs[i] as i128 - b.limbs.get(i).copied().unwrap_or(0) as i128 - borrow;
        if d < 0 {
            out.push((d + BASE as i128) as u64);
            borrow = 1;
        } else {
            out.push(d as u64);
            borrow = 0;
        }
    }
    BigUint::from_limbs(out)
}

fn mul(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let mut out = vec![0u64; a.limbs.len() + b.limbs.len()];
    for (i, &x) in a.limbs.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &y) in b.limbs.iter().enumerate() {
            let cur = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.limbs.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    BigUint::from_limbs(out)
}

/// Knuth Algorithm D (normalized schoolbook division).
fn div_rem(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    assert!(!v.is_zero(), "BigUint division by zero");
    if u < v {
        return (BigUint::zero(), u.clone());
    }
    if v.limbs.len() == 1 {
        let d = v.limbs[0] as u128;
        let mut q = vec![0u64; u.limbs.len()];
        let mut rem = 0u128;
        for i in (0..u.limbs.len()).rev() {
            let cur = (rem << 64) | u.limbs[i] as u128;
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        return (
            BigUint::from_limbs(q),
            BigUint::from_limbs(vec![rem as u64]),
        );
    }

    let shift = v.limbs.last().expect("nonzero").leading_zeros() as usize;
    let vn = v << shift;
    let un_shifted = u << shift;
    let n = vn.limbs.len();
    let mut un = un_shifted.limbs.clone();
    un.resize(u.limbs.len() + 1, 0);
    let m = un.len() - 1 - n;
    let mut q = vec![0u64; m + 1];
    let vtop = vn.limbs[n - 1] as u128;
    let vsec = vn.limbs[n - 2] as u128;

    for j in (0..=m).rev() {
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vtop;
        let mut rhat = top % vtop;
        while qhat >= BASE || qhat * vsec > ((rhat << 64) | un[j + n - 2] as u128) {
            qhat -= 1;
            rhat += vtop;
            if rhat >= BASE {
                break;
            }
        }

        // Multiply and subtract (may go one too far, fixed up below).
        let mut k = 0i128;
        for i in 0..n {
            let p = qhat * vn.limbs[i] as u128;
            let t = un[i + j] as i128 - k - (p as u64) as i128;
            un[i + j] = t as u64;
            k = (p >> 64) as i128 - (t >> 64);
        }
        let t = un[j + n] as i128 - k;
        un[j + n] = t as u64;

        if t < 0 {
            qhat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = un[i + j] as u128 + vn.limbs[i] as u128 + carry;
                un[i + j] = s as u64;
                carry = s >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat as u64;
    }

    let rem = BigUint::from_limbs(un[..n].to_vec()) >> shift;
    (BigUint::from_limbs(q), rem)
}

fn shl(a: &BigUint, bits: usize) -> BigUint {
    if a.is_zero() || bits == 0 {
        return a.clone();
    }
    let limb_shift = bits / 64;
    let bit_shift = bits % 64;
    let mut out = vec![0u64; a.limbs.len() + limb_shift + 1];
    for (i, &limb) in a.limbs.iter().enumerate() {
        out[i + limb_shift] |= limb << bit_shift;
        if bit_shift != 0 {
            out[i + limb_shift + 1] |= limb >> (64 - bit_shift);
        }
    }
    BigUint::from_limbs(out)
}

fn shr(a: &BigUint, bits: usize) -> BigUint {
    let limb_shift = bits / 64;
    if limb_shift >= a.limbs.len() {
        return BigUint::zero();
    }
    let bit_shift = bits % 64;
    let mut out = vec![0u64; a.limbs.len() - limb_shift];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = a.limbs[i + limb_shift] >> bit_shift;
        if bit_shift != 0 && i + limb_shift + 1 < a.limbs.len() {
            *slot |= a.limbs[i + limb_shift + 1] << (64 - bit_shift);
        }
    }
    BigUint::from_limbs(out)
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $func:path) => {
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $func(&self, &rhs)
            }
        }
        impl<'a> $trait<&'a BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &'a BigUint) -> BigUint {
                $func(&self, rhs)
            }
        }
        impl<'a> $trait<BigUint> for &'a BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $func(self, &rhs)
            }
        }
        impl<'a, 'b> $trait<&'b BigUint> for &'a BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &'b BigUint) -> BigUint {
                $func(self, rhs)
            }
        }
    };
}

forward_binop!(Add, add, add);
forward_binop!(Sub, sub, sub);
forward_binop!(Mul, mul, mul);

fn div(a: &BigUint, b: &BigUint) -> BigUint {
    div_rem(a, b).0
}

fn rem(a: &BigUint, b: &BigUint) -> BigUint {
    div_rem(a, b).1
}

forward_binop!(Div, div, div);
forward_binop!(Rem, rem, rem);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = add(self, rhs);
    }
}

impl AddAssign<BigUint> for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self = add(self, &rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = sub(self, rhs);
    }
}

impl SubAssign<BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: BigUint) {
        *self = sub(self, &rhs);
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = mul(self, rhs);
    }
}

impl MulAssign<BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: BigUint) {
        *self = mul(self, &rhs);
    }
}

macro_rules! impl_shifts {
    ($($t:ty),*) => {$(
        impl Shl<$t> for BigUint {
            type Output = BigUint;
            fn shl(self, bits: $t) -> BigUint {
                shl(&self, bits as usize)
            }
        }
        impl Shl<$t> for &BigUint {
            type Output = BigUint;
            fn shl(self, bits: $t) -> BigUint {
                shl(self, bits as usize)
            }
        }
        impl Shr<$t> for BigUint {
            type Output = BigUint;
            fn shr(self, bits: $t) -> BigUint {
                shr(&self, bits as usize)
            }
        }
        impl Shr<$t> for &BigUint {
            type Output = BigUint;
            fn shr(self, bits: $t) -> BigUint {
                shr(self, bits as usize)
            }
        }
    )*};
}

impl_shifts!(u32, u64, usize, i32);

impl Integer for BigUint {
    fn gcd(&self, other: &Self) -> Self {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    fn lcm(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        self / self.gcd(other) * other
    }

    fn div_floor(&self, other: &Self) -> Self {
        self / other
    }

    fn mod_floor(&self, other: &Self) -> Self {
        self % other
    }

    fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self> {
        // Coefficients can be negative in general; unsigned callers only
        // use `gcd`. The signed variant lives on `BigInt`.
        ExtendedGcd {
            gcd: Integer::gcd(self, other),
            x: BigUint::zero(),
            y: BigUint::zero(),
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_str_radix(10))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::parse_bytes(s.as_bytes(), 10).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211457",
        ] {
            assert_eq!(big(s).to_string(), s);
        }
        let h = BigUint::parse_bytes(b"ff00000000000000ff", 16).unwrap();
        assert_eq!(h.to_str_radix(16), "ff00000000000000ff");
        assert!(BigUint::parse_bytes(b"12g4", 10).is_none());
        assert!(BigUint::parse_bytes(b"", 16).is_none());
    }

    #[test]
    fn arithmetic_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (u64::MAX as u128 + 17, 12345),
            (u64::MAX as u128 * 97, u64::MAX as u128 - 3),
        ];
        for &(a, b) in &cases {
            let (ba, bb) = (BigUint::from(a), BigUint::from(b));
            assert_eq!(&ba + &bb, BigUint::from(a + b));
            if a >= b {
                assert_eq!(&ba - &bb, BigUint::from(a - b));
            }
            if b != 0 {
                assert_eq!(&ba / &bb, BigUint::from(a / b));
                assert_eq!(&ba % &bb, BigUint::from(a % b));
            }
        }
    }

    #[test]
    fn multiplication_and_division_agree() {
        let a = big("123456789012345678901234567890123456789");
        let b = big("987654321098765432109876543210");
        let p = &a * &b;
        assert_eq!(&p / &a, b);
        assert_eq!(&p % &a, BigUint::zero());
        let r = big("55555");
        let with_rem = &p + &r;
        assert_eq!(&with_rem / &b, &a + BigUint::zero());
        // Remainder must survive the full Knuth-D path.
        assert_eq!(&with_rem % &b, r % b);
    }

    #[test]
    fn division_stress_near_limb_boundaries() {
        // Exercise the qhat correction branches.
        let a = (BigUint::one() << 192usize) - BigUint::one();
        let b = (BigUint::one() << 64usize) + BigUint::one();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, (BigUint::one() << 192usize) - BigUint::one());
        assert!(r < b);
    }

    #[test]
    fn shifts() {
        let a = big("12345678901234567890");
        assert_eq!(&a << 64u32 >> 64u32, a);
        assert_eq!(&BigUint::one() << 200usize >> 199usize, BigUint::from(2u32));
        assert_eq!(&a >> 1000u64, BigUint::zero());
    }

    #[test]
    fn modpow_small_cases() {
        let p = BigUint::from(1_000_000_007u64);
        let b = BigUint::from(2u32);
        assert_eq!(b.modpow(&BigUint::from(10u32), &p), BigUint::from(1024u32));
        // Fermat: a^(p-1) ≡ 1 (mod p).
        let a = BigUint::from(123456u64);
        assert_eq!(a.modpow(&(&p - BigUint::one()), &p), BigUint::one());
        assert_eq!(a.modpow(&BigUint::zero(), &p), BigUint::one());
    }

    #[test]
    fn bits_and_bit_ops() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::from(255u32).bits(), 8);
        assert_eq!((BigUint::one() << 100usize).bits(), 101);
        let mut v = BigUint::zero();
        v.set_bit(130, true);
        assert_eq!(v, BigUint::one() << 130usize);
        assert!(v.bit(130));
        v.set_bit(130, false);
        assert!(v.is_zero());
        assert_eq!((BigUint::from(8u32)).trailing_zeros(), Some(3));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
    }

    #[test]
    fn byte_roundtrips() {
        let a = big("123456789012345678901234567890");
        assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
        assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le()), a);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1]), BigUint::one());
    }

    #[test]
    fn gcd_lcm_sqrt_pow() {
        assert_eq!(Integer::gcd(&big("48"), &big("36")), big("12"));
        assert_eq!(Integer::lcm(&big("4"), &big("6")), big("12"));
        assert_eq!(big("144").sqrt(), big("12"));
        assert_eq!(big("145").sqrt(), big("12"));
        assert_eq!(BigUint::from(3u32).pow(20), big("3486784401"));
    }

    #[test]
    fn to_f64_approximates() {
        let v = BigUint::one() << 100usize;
        let f = v.to_f64().unwrap();
        assert!((f - 2f64.powi(100)).abs() < 1e15);
    }
}
