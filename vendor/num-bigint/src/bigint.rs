//! Signed arbitrary-precision integers: a sign plus a [`BigUint`]
//! magnitude.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub};

use num_integer::{ExtendedGcd, Integer};
use num_traits::{One, Signed, ToPrimitive, Zero};

use crate::BigUint;

/// The sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Negative.
    Minus,
    /// Zero.
    NoSign,
    /// Positive.
    Plus,
}

impl Sign {
    fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::NoSign => Sign::NoSign,
            Sign::Plus => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariant: a zero magnitude always carries [`Sign::NoSign`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Builds from an explicit sign and magnitude (zero magnitude forces
    /// [`Sign::NoSign`]).
    pub fn from_biguint(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt {
                sign: Sign::NoSign,
                mag,
            }
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// `self^exp mod modulus` (exponent and modulus must be
    /// non-negative; the result is in `[0, modulus)`).
    ///
    /// # Panics
    ///
    /// Panics on a negative exponent or non-positive modulus.
    pub fn modpow(&self, exp: &BigInt, modulus: &BigInt) -> BigInt {
        assert!(
            exp.sign != Sign::Minus,
            "modpow requires a non-negative exponent"
        );
        assert!(modulus.sign == Sign::Plus, "modpow requires modulus > 0");
        let base = self.mod_floor(modulus);
        let r = base.mag.modpow(&exp.mag, &modulus.mag);
        BigInt::from_biguint(Sign::Plus, r)
    }

    /// Formats in the given radix.
    pub fn to_str_radix(&self, radix: u32) -> String {
        let mag = self.mag.to_str_radix(radix);
        if self.sign == Sign::Minus {
            format!("-{mag}")
        } else {
            mag
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_biguint(Sign::Plus, mag)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                BigInt::from_biguint(Sign::Plus, BigUint::from(v))
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                if v < 0 {
                    BigInt::from_biguint(Sign::Minus, BigUint::from(v.unsigned_abs() as u128))
                } else {
                    BigInt::from_biguint(Sign::Plus, BigUint::from(v as u128))
                }
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, i128, isize);

impl Zero for BigInt {
    fn zero() -> Self {
        BigInt {
            sign: Sign::NoSign,
            mag: BigUint::zero(),
        }
    }
    fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }
}

impl One for BigInt {
    fn one() -> Self {
        BigInt::from_biguint(Sign::Plus, BigUint::one())
    }
    fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag.is_one()
    }
}

impl Signed for BigInt {
    fn abs(&self) -> Self {
        BigInt::from_biguint(Sign::Plus, self.mag.clone())
    }
    fn signum(&self) -> Self {
        match self.sign {
            Sign::Minus => -BigInt::one(),
            Sign::NoSign => BigInt::zero(),
            Sign::Plus => BigInt::one(),
        }
    }
    fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }
    fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }
}

impl ToPrimitive for BigInt {
    fn to_u32(&self) -> Option<u32> {
        if self.sign == Sign::Minus {
            None
        } else {
            self.mag.to_u32()
        }
    }
    fn to_u64(&self) -> Option<u64> {
        if self.sign == Sign::Minus {
            None
        } else {
            self.mag.to_u64()
        }
    }
    fn to_i64(&self) -> Option<i64> {
        let mag = self.mag.to_u64()?;
        match self.sign {
            Sign::Minus => {
                if mag <= i64::MAX as u64 + 1 {
                    Some((mag as i64).wrapping_neg())
                } else {
                    None
                }
            }
            _ => i64::try_from(mag).ok(),
        }
    }
    fn to_f64(&self) -> Option<f64> {
        let f = self.mag.to_f64()?;
        Some(if self.sign == Sign::Minus { -f } else { f })
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Minus => 0,
            Sign::NoSign => 1,
            Sign::Plus => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => {
                if self.sign == Sign::Minus {
                    other.mag.cmp(&self.mag)
                } else {
                    self.mag.cmp(&other.mag)
                }
            }
            ord => ord,
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::from_biguint(self.sign.negate(), self.mag)
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::from_biguint(self.sign.negate(), self.mag.clone())
    }
}

fn add(a: &BigInt, b: &BigInt) -> BigInt {
    match (a.sign, b.sign) {
        (Sign::NoSign, _) => b.clone(),
        (_, Sign::NoSign) => a.clone(),
        (sa, sb) if sa == sb => BigInt::from_biguint(sa, &a.mag + &b.mag),
        (sa, _) => match a.mag.cmp(&b.mag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_biguint(sa, &a.mag - &b.mag),
            Ordering::Less => BigInt::from_biguint(sa.negate(), &b.mag - &a.mag),
        },
    }
}

fn sub(a: &BigInt, b: &BigInt) -> BigInt {
    add(a, &-b)
}

fn mul(a: &BigInt, b: &BigInt) -> BigInt {
    let sign = match (a.sign, b.sign) {
        (Sign::NoSign, _) | (_, Sign::NoSign) => Sign::NoSign,
        (sa, sb) if sa == sb => Sign::Plus,
        _ => Sign::Minus,
    };
    BigInt::from_biguint(sign, &a.mag * &b.mag)
}

/// Truncated division (quotient rounds toward zero, remainder takes the
/// dividend's sign) — matching upstream `num-bigint`.
fn div_rem(a: &BigInt, b: &BigInt) -> (BigInt, BigInt) {
    let (q_mag, r_mag) = a.mag.div_rem(&b.mag);
    let q_sign = match (a.sign, b.sign) {
        (Sign::NoSign, _) | (_, Sign::NoSign) => Sign::NoSign,
        (sa, sb) if sa == sb => Sign::Plus,
        _ => Sign::Minus,
    };
    (
        BigInt::from_biguint(q_sign, q_mag),
        BigInt::from_biguint(a.sign, r_mag),
    )
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $func:expr) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $func(&self, &rhs)
            }
        }
        impl<'a> $trait<&'a BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &'a BigInt) -> BigInt {
                $func(&self, rhs)
            }
        }
        impl<'a> $trait<BigInt> for &'a BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $func(self, &rhs)
            }
        }
        impl<'a, 'b> $trait<&'b BigInt> for &'a BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &'b BigInt) -> BigInt {
                $func(self, rhs)
            }
        }
    };
}

forward_binop!(Add, add, add);
forward_binop!(Sub, sub, sub);
forward_binop!(Mul, mul, mul);
forward_binop!(Div, div, |a, b| div_rem(a, b).0);
forward_binop!(Rem, rem, |a, b| div_rem(a, b).1);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = add(self, rhs);
    }
}

impl AddAssign<BigInt> for BigInt {
    fn add_assign(&mut self, rhs: BigInt) {
        *self = add(self, &rhs);
    }
}

impl Integer for BigInt {
    fn gcd(&self, other: &Self) -> Self {
        BigInt::from_biguint(Sign::Plus, Integer::gcd(&self.mag, &other.mag))
    }

    fn lcm(&self, other: &Self) -> Self {
        BigInt::from_biguint(Sign::Plus, Integer::lcm(&self.mag, &other.mag))
    }

    fn div_floor(&self, other: &Self) -> Self {
        let (q, r) = div_rem(self, other);
        if r.is_zero() || (r.sign == other.sign) {
            q
        } else {
            q - BigInt::one()
        }
    }

    fn mod_floor(&self, other: &Self) -> Self {
        let r = self % other;
        if r.is_zero() || r.sign == other.sign {
            r
        } else {
            r + other
        }
    }

    /// Extended Euclid: returns `gcd ≥ 0` and Bézout coefficients with
    /// `gcd = self·x + other·y`.
    fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self> {
        let (mut old_r, mut r) = (self.clone(), other.clone());
        let (mut old_x, mut x) = (BigInt::one(), BigInt::zero());
        let (mut old_y, mut y) = (BigInt::zero(), BigInt::one());
        while !r.is_zero() {
            let q = &old_r / &r;
            let next_r = &old_r - &(&q * &r);
            old_r = std::mem::replace(&mut r, next_r);
            let next_x = &old_x - &(&q * &x);
            old_x = std::mem::replace(&mut x, next_x);
            let next_y = &old_y - &(&q * &y);
            old_y = std::mem::replace(&mut y, next_y);
        }
        if old_r.sign == Sign::Minus {
            old_r = -old_r;
            old_x = -old_x;
            old_y = -old_y;
        }
        ExtendedGcd {
            gcd: old_r,
            x: old_x,
            y: old_y,
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_str_radix(10))
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_arithmetic_matches_i128() {
        let cases: [(i128, i128); 6] = [
            (0, 5),
            (7, -3),
            (-7, 3),
            (-7, -3),
            // Keep |a * b| within i128 so the reference arithmetic is exact.
            (i32::MAX as i128 * 3, -(i64::MAX as i128)),
            (-1, 1),
        ];
        for &(a, b) in &cases {
            let (ba, bb) = (BigInt::from(a), BigInt::from(b));
            assert_eq!(&ba + &bb, BigInt::from(a + b), "{a} + {b}");
            assert_eq!(&ba - &bb, BigInt::from(a - b), "{a} - {b}");
            assert_eq!(&ba * &bb, BigInt::from(a * b), "{a} * {b}");
            if b != 0 {
                assert_eq!(&ba / &bb, BigInt::from(a / b), "{a} / {b}");
                assert_eq!(&ba % &bb, BigInt::from(a % b), "{a} % {b}");
            }
        }
    }

    #[test]
    fn ordering() {
        let mut v = vec![
            BigInt::from(3),
            BigInt::from(-10),
            BigInt::zero(),
            BigInt::from(-2),
            BigInt::from(11),
        ];
        v.sort();
        let got: Vec<i64> = v.iter().map(|x| x.to_i64().unwrap()).collect();
        assert_eq!(got, [-10, -2, 0, 3, 11]);
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let a = BigInt::from(240);
        let b = BigInt::from(46);
        let e = a.extended_gcd(&b);
        assert_eq!(e.gcd, BigInt::from(2));
        assert_eq!(&a * &e.x + &b * &e.y, e.gcd);

        // Modular inverse via extended gcd, as the Paillier code does it.
        let m = BigInt::from(1_000_000_007i64);
        let x = BigInt::from(123_456_789i64);
        let e = x.extended_gcd(&m);
        assert!(e.gcd.is_one());
        let mut inv = e.x % &m;
        if inv.is_negative() {
            inv += &m;
        }
        assert_eq!((&x * &inv) % &m, BigInt::one());
    }

    #[test]
    fn modpow_handles_negative_base() {
        let m = BigInt::from(97);
        let r = BigInt::from(-5).modpow(&BigInt::from(2), &m);
        assert_eq!(r, BigInt::from(25));
        let r = BigInt::from(-5).modpow(&BigInt::from(3), &m);
        assert_eq!(r, BigInt::from((97 - 125 % 97 + 97) % 97));
    }

    #[test]
    fn to_primitive_conversions() {
        assert_eq!(BigInt::from(-42).to_i64(), Some(-42));
        assert_eq!(BigInt::from(-1).to_u64(), None);
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(BigInt::from(-2).to_f64(), Some(-2.0));
    }

    #[test]
    fn display() {
        assert_eq!(BigInt::from(-123).to_string(), "-123");
        assert_eq!(BigInt::zero().to_string(), "0");
    }
}
