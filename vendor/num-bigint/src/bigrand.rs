//! Uniform random generation of big integers (the `rand` feature).

use num_traits::Zero;
use rand::RngCore;

use crate::BigUint;

/// Random big-integer generation, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait RandBigInt {
    /// Uniform draw from `[0, 2^bits)`.
    fn gen_biguint(&mut self, bits: u64) -> BigUint;

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint;

    /// Uniform draw from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    fn gen_biguint_range(&mut self, low: &BigUint, high: &BigUint) -> BigUint;
}

impl<R: RngCore + ?Sized> RandBigInt for R {
    fn gen_biguint(&mut self, bits: u64) -> BigUint {
        if bits == 0 {
            return BigUint::zero();
        }
        let limbs = bits.div_ceil(64) as usize;
        let mut raw = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            raw.push(self.next_u64());
        }
        let top_bits = bits % 64;
        if top_bits != 0 {
            let last = raw.last_mut().expect("at least one limb");
            *last &= (1u64 << top_bits) - 1;
        }
        BigUint::from_limbs(raw)
    }

    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "gen_biguint_below: zero bound");
        let bits = bound.bits();
        // Rejection sampling: each draw succeeds with probability > 1/2.
        loop {
            let candidate = self.gen_biguint(bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    fn gen_biguint_range(&mut self, low: &BigUint, high: &BigUint) -> BigUint {
        assert!(low < high, "gen_biguint_range: empty range");
        low + self.gen_biguint_below(&(high - low))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use num_traits::One;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = BigUint::parse_bytes(b"deadbeefcafebabe12345678", 16).unwrap();
        for _ in 0..100 {
            assert!(rng.gen_biguint_below(&bound) < bound);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let low = BigUint::from(1u32) << 100usize;
        let high = &low + BigUint::from(1000u32);
        for _ in 0..100 {
            let v = rng.gen_biguint_range(&low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    fn bit_sized_draws_fit() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [1u64, 7, 64, 65, 256] {
            let v = rng.gen_biguint(bits);
            assert!(v.bits() <= bits);
        }
        // Unit range: only one possible value.
        let one = BigUint::one();
        assert!(rng.gen_biguint_below(&one).is_zero());
    }
}
