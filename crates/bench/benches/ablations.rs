//! Ablation benchmarks for the design choices DESIGN.md §7 calls out:
//!
//! * masking degree `σ` (the paper's `q`) vs per-evaluation cost;
//! * decoy density `m` (the paper's `k`, `M = m·k` points) vs cost;
//! * monomial-expansion blowup vs kernel degree;
//! * Taylor truncation order vs expansion cost for RBF models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppcs_core::{expand_model, ProtocolConfig};
use ppcs_math::{F64Algebra, MvPolynomial};
use ppcs_ompe::{ompe_receive, ompe_send, OmpeParams};
use ppcs_ot::TrustedSimOt;
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use ppcs_transport::run_pair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

static SIM: TrustedSimOt = TrustedSimOt;

fn run_ompe(params: OmpeParams) {
    let alg = F64Algebra::new();
    let secret = MvPolynomial::affine(&alg, &[0.5, -0.25, 0.125, 1.0], 0.75);
    let alpha = vec![0.1, 0.2, 0.3, 0.4];
    let (res, v) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(1);
            ompe_send(&F64Algebra::new(), &ep, &SIM, &mut rng, &secret, &params)
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(2);
            ompe_receive(&F64Algebra::new(), &ep, &SIM, &mut rng, &alpha, &params)
        },
    );
    res.expect("send");
    black_box(v.expect("receive"));
}

fn toy_model(kernel: Kernel, dim: usize) -> SvmModel {
    let mut rng = StdRng::seed_from_u64(3);
    let mut ds = Dataset::new(dim);
    for k in 0..80 {
        let positive = k % 2 == 0;
        let c = if positive { 0.5 } else { -0.5 };
        ds.push(
            (0..dim).map(|_| c + rng.gen_range(-0.45..0.45)).collect(),
            if positive {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    SvmModel::train(&ds, kernel, &SmoParams::default())
}

fn bench_ablations(c: &mut Criterion) {
    // Masking degree sweep (q in the paper; m = q+1 interpolation points).
    let mut group = c.benchmark_group("ablation_masking_degree");
    group.sample_size(30);
    for sigma in [1usize, 2, 4, 8, 16] {
        let params = OmpeParams::new(1, sigma, 2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(sigma), &sigma, |b, _| {
            b.iter(|| run_ompe(params))
        });
    }
    group.finish();

    // Decoy density sweep (k in the paper; M = m·k submitted points).
    let mut group = c.benchmark_group("ablation_cover_density");
    group.sample_size(30);
    for decoys in [1usize, 2, 4, 8, 16] {
        let params = OmpeParams::new(1, 3, decoys).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(decoys), &decoys, |b, _| {
            b.iter(|| run_ompe(params))
        });
    }
    group.finish();

    // Monomial-expansion blowup: n' = C(n+p-1, p).
    let mut group = c.benchmark_group("ablation_expansion_degree");
    group.sample_size(10);
    for degree in [2u32, 3, 4, 5] {
        let model = toy_model(
            Kernel::Polynomial {
                a0: 0.2,
                b0: 0.0,
                degree,
            },
            8,
        );
        let cfg = ProtocolConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, _| {
            b.iter(|| black_box(expand_model(&model, &cfg).expect("expansion")))
        });
    }
    group.finish();

    // Taylor order for RBF expansion.
    let mut group = c.benchmark_group("ablation_taylor_order");
    group.sample_size(10);
    let model = toy_model(Kernel::Rbf { gamma: 0.4 }, 4);
    for order in [1u32, 2, 3, 4, 5] {
        let cfg = ProtocolConfig {
            taylor_order: order,
            ..ProtocolConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| black_box(expand_model(&model, &cfg).expect("expansion")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
