//! Per-sample private-classification cost (the Fig. 9 kernel): original
//! vs private, linear vs expanded polynomial, across dimensionalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppcs_bench::private_classify;
use ppcs_core::ProtocolConfig;
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn blob_model(dim: usize, kernel: Kernel, seed: u64) -> (SvmModel, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim);
    for k in 0..120 {
        let positive = k % 2 == 0;
        let c = if positive { 0.5 } else { -0.5 };
        ds.push(
            (0..dim).map(|_| c + rng.gen_range(-0.45..0.45)).collect(),
            if positive {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    let model = SvmModel::train(&ds, kernel, &SmoParams::default());
    let samples: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    (model, samples)
}

fn bench_classification(c: &mut Criterion) {
    let cfg_full = ProtocolConfig::default();
    let cfg_fast = ProtocolConfig::functional();

    let mut group = c.benchmark_group("classify_batch8_linear");
    group.sample_size(20);
    for dim in [8usize, 60, 123] {
        let (model, samples) = blob_model(dim, Kernel::Linear, dim as u64);
        group.bench_with_input(BenchmarkId::new("plain", dim), &dim, |b, _| {
            b.iter(|| {
                for s in &samples {
                    black_box(model.predict(s));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("private_functional", dim), &dim, |b, _| {
            b.iter(|| black_box(private_classify(&model, &samples, cfg_fast, 1)))
        });
        group.bench_with_input(BenchmarkId::new("private_full", dim), &dim, |b, _| {
            b.iter(|| black_box(private_classify(&model, &samples, cfg_full, 2)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("classify_batch8_poly3");
    group.sample_size(10);
    for dim in [4usize, 8, 16] {
        let (model, samples) = blob_model(dim, Kernel::paper_polynomial(dim), 100 + dim as u64);
        group.bench_with_input(BenchmarkId::new("plain", dim), &dim, |b, _| {
            b.iter(|| {
                for s in &samples {
                    black_box(model.predict(s));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("private_functional", dim), &dim, |b, _| {
            b.iter(|| black_box(private_classify(&model, &samples, cfg_fast, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
