//! Field-arithmetic microbenchmarks: the in-tree `Fp256` Montgomery
//! implementation vs native `f64` — the cost axis of choosing the
//! cryptographically sound backend over the paper-faithful one.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppcs_math::{Algebra, F64Algebra, FixedFpAlgebra, Fp256};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_field(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fp256::random(&mut rng);
    let b = Fp256::random(&mut rng);

    let mut group = c.benchmark_group("fp256");
    group.bench_function("mul", |bench| {
        bench.iter(|| black_box(black_box(a) * black_box(b)))
    });
    group.bench_function("add", |bench| {
        bench.iter(|| black_box(black_box(a) + black_box(b)))
    });
    group.bench_function("square", |bench| {
        bench.iter(|| black_box(black_box(a).square()))
    });
    group.bench_function("inv", |bench| bench.iter(|| black_box(black_box(a).inv())));
    group.finish();

    let fixed = FixedFpAlgebra::new(16);
    let f64a = F64Algebra::new();
    let mut group = c.benchmark_group("encode_decode");
    group.bench_function("fixed/encode_scale1", |bench| {
        bench.iter(|| black_box(fixed.encode(black_box(0.73214), 1)))
    });
    group.bench_function("fixed/encode_scale8", |bench| {
        bench.iter(|| black_box(fixed.encode(black_box(0.73214), 8)))
    });
    let e = fixed.encode(0.73214, 2);
    group.bench_function("fixed/decode_scale2", |bench| {
        bench.iter(|| black_box(fixed.decode(black_box(&e), 2)))
    });
    group.bench_function("f64/encode", |bench| {
        bench.iter(|| black_box(f64a.encode(black_box(0.73214), 1)))
    });
    group.finish();

    // A realistic protocol inner loop: Horner evaluation of a degree-12
    // polynomial, fixed-point vs float.
    let mut group = c.benchmark_group("horner_deg12");
    group.bench_function("fp256", |bench| {
        let mut rng = StdRng::seed_from_u64(2);
        let coeffs: Vec<Fp256> = (0..13).map(|_| Fp256::random(&mut rng)).collect();
        let x = Fp256::random(&mut rng);
        bench.iter_batched(
            || coeffs.clone(),
            |coeffs| {
                let mut acc = Fp256::ZERO;
                for c in coeffs.iter().rev() {
                    acc = acc * x + *c;
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("f64", |bench| {
        let coeffs: Vec<f64> = (0..13).map(|i| i as f64 * 0.37).collect();
        let x = 1.234f64;
        bench.iter(|| {
            let mut acc = 0.0;
            for c in coeffs.iter().rev() {
                acc = acc * x + *c;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_field
}
criterion_main!(benches);
