//! SMO training benchmarks: the LIBSVM-substitute substrate, across
//! training-set sizes and kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn blobs(dim: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim);
    for k in 0..n {
        let positive = k % 2 == 0;
        let c = if positive { 0.5 } else { -0.5 };
        ds.push(
            (0..dim).map(|_| c + rng.gen_range(-0.6..0.6)).collect(),
            if positive {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    ds
}

fn bench_train(c: &mut Criterion) {
    let params = SmoParams::default();

    let mut group = c.benchmark_group("smo_train_linear_dim8");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let ds = blobs(8, n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(SvmModel::train(&ds, Kernel::Linear, &params)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("smo_train_kernels_n400");
    group.sample_size(10);
    let ds = blobs(8, 400, 7);
    for (name, kernel) in [
        ("linear", Kernel::Linear),
        ("poly3", Kernel::paper_polynomial(8)),
        ("rbf", Kernel::Rbf { gamma: 0.5 }),
        ("sigmoid", Kernel::Sigmoid { a0: 0.1, c0: 0.0 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(SvmModel::train(&ds, kernel, &params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
