//! OMPE protocol benchmarks: one oblivious evaluation across backends
//! and input arities — the per-sample cost core of Fig. 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppcs_math::{Algebra, F64Algebra, FixedFpAlgebra, MvPolynomial};
use ppcs_ompe::{ompe_receive, ompe_send, OmpeParams};
use ppcs_ot::TrustedSimOt;
use ppcs_transport::run_pair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

static SIM: TrustedSimOt = TrustedSimOt;

fn run_f64(arity: usize, params: OmpeParams) {
    let alg = F64Algebra::new();
    let weights: Vec<f64> = (0..arity).map(|i| 0.1 * i as f64 - 0.3).collect();
    let secret = MvPolynomial::affine(&alg, &weights, 0.5);
    let alpha: Vec<f64> = (0..arity).map(|i| 0.05 * i as f64 - 0.2).collect();
    let (res, v) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(1);
            ompe_send(&F64Algebra::new(), &ep, &SIM, &mut rng, &secret, &params)
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(2);
            ompe_receive(&F64Algebra::new(), &ep, &SIM, &mut rng, &alpha, &params)
        },
    );
    res.expect("send");
    black_box(v.expect("receive"));
}

fn run_fixed(arity: usize, params: OmpeParams) {
    let alg = FixedFpAlgebra::new(16);
    let weights: Vec<_> = (0..arity)
        .map(|i| alg.encode(0.1 * i as f64 - 0.3, 1))
        .collect();
    let secret = MvPolynomial::affine(&alg, &weights, alg.encode(0.5, 2));
    let alpha: Vec<_> = (0..arity)
        .map(|i| alg.encode(0.05 * i as f64 - 0.2, 1))
        .collect();
    let (res, v) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(1);
            ompe_send(
                &FixedFpAlgebra::new(16),
                &ep,
                &SIM,
                &mut rng,
                &secret,
                &params,
            )
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(2);
            ompe_receive(
                &FixedFpAlgebra::new(16),
                &ep,
                &SIM,
                &mut rng,
                &alpha,
                &params,
            )
        },
    );
    res.expect("send");
    black_box(v.expect("receive"));
}

fn bench_ompe(c: &mut Criterion) {
    let params = OmpeParams::new(1, 3, 2).unwrap();

    let mut group = c.benchmark_group("ompe_affine");
    group.sample_size(30);
    for arity in [8usize, 60, 123, 500] {
        group.bench_with_input(BenchmarkId::new("f64", arity), &arity, |b, &n| {
            b.iter(|| run_f64(n, params))
        });
        if arity <= 123 {
            group.bench_with_input(BenchmarkId::new("fp256", arity), &arity, |b, &n| {
                b.iter(|| run_fixed(n, params))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ompe);
criterion_main!(benches);
