//! Oblivious-transfer benchmarks: the cryptographic Naor–Pinkas engine
//! (768-bit group for timing; the 2048-bit figures scale by the modexp
//! ratio) against the ideal-functionality simulator — the crossover that
//! motivates functional-mode sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppcs_ot::{NaorPinkasOt, ObliviousTransfer, TrustedSimOt};
use ppcs_transport::run_pair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn transfer(ot: &'static dyn ObliviousTransfer, n: usize, k: usize) {
    let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 32]).collect();
    let indices: Vec<usize> = (0..k).map(|i| (i * 7) % n).collect();
    let (send, got) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(1);
            ot.send(&ep, &mut rng, &msgs, k)
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(2);
            ot.receive(&ep, &mut rng, n, &indices)
        },
    );
    send.expect("send");
    black_box(got.expect("recv"));
}

fn bench_ot_real(c: &mut Criterion) {
    use std::sync::OnceLock;
    static NP768: OnceLock<NaorPinkasOt> = OnceLock::new();
    static SIM: TrustedSimOt = TrustedSimOt;
    let np: &'static dyn ObliviousTransfer = NP768.get_or_init(NaorPinkasOt::fast_insecure);

    let mut group = c.benchmark_group("ot_k_of_n");
    group.sample_size(10);
    for &(n, k) in &[(8usize, 4usize), (16, 4), (32, 8)] {
        group.bench_with_input(
            BenchmarkId::new("naor_pinkas_768", format!("{k}of{n}")),
            &(n, k),
            |bench, &(n, k)| bench.iter(|| transfer(np, n, k)),
        );
        group.bench_with_input(
            BenchmarkId::new("trusted_sim", format!("{k}of{n}")),
            &(n, k),
            |bench, &(n, k)| bench.iter(|| transfer(&SIM, n, k)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ot_real);
criterion_main!(benches);
