//! Similarity-evaluation cost (Fig. 10): ordinary metric vs the private
//! three-round protocol, across hyperplane dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppcs_core::{similarity_plain, similarity_request, similarity_respond, SimilarityConfig};
use ppcs_math::F64Algebra;
use ppcs_ot::TrustedSimOt;
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use ppcs_transport::run_pair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn model_of_dim(dim: usize, seed: u64) -> SvmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut ds = Dataset::new(dim);
    while ds.len() < 100 {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let score = ppcs_svm::dot(&w, &x) + 0.05;
        if score.abs() < 0.1 {
            continue;
        }
        ds.push(x, Label::from_sign(score));
    }
    SvmModel::train(&ds, Kernel::Linear, &SmoParams::default())
}

fn bench_similarity(c: &mut Criterion) {
    let cfg = SimilarityConfig::default();
    let mut group = c.benchmark_group("similarity");
    group.sample_size(20);
    for dim in [2usize, 4, 8] {
        let ma = model_of_dim(dim, 10 + dim as u64);
        let mb = model_of_dim(dim, 20 + dim as u64);
        group.bench_with_input(BenchmarkId::new("ordinary", dim), &dim, |b, _| {
            b.iter(|| black_box(similarity_plain(&ma, &mb, &cfg).expect("metric")))
        });
        group.bench_with_input(BenchmarkId::new("private", dim), &dim, |b, _| {
            b.iter(|| {
                let (ma, mb) = (ma.clone(), mb.clone());
                let (res, t) = run_pair(
                    move |ep| {
                        let mut rng = StdRng::seed_from_u64(1);
                        similarity_respond(
                            &F64Algebra::new(),
                            &ep,
                            &TrustedSimOt,
                            &mut rng,
                            &ma,
                            &cfg,
                        )
                    },
                    move |ep| {
                        let mut rng = StdRng::seed_from_u64(2);
                        similarity_request(
                            &F64Algebra::new(),
                            &ep,
                            &TrustedSimOt,
                            &mut rng,
                            &mb,
                            &cfg,
                        )
                        .expect("similarity")
                    },
                );
                res.expect("responder");
                black_box(t)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
