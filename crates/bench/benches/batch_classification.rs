//! Batched/parallel classification throughput: per-sample sessions vs
//! one batched session (state reuse + coalesced point clouds) vs the
//! multi-lane parallel pipeline, across batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppcs_bench::{private_classify, private_classify_parallel, private_classify_parallel_with_ot};
use ppcs_core::ProtocolConfig;
use ppcs_ot::NaorPinkasOt;
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn blob_model(dim: usize, batch: usize, seed: u64) -> (SvmModel, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim);
    for k in 0..120 {
        let positive = k % 2 == 0;
        let c = if positive { 0.5 } else { -0.5 };
        ds.push(
            (0..dim).map(|_| c + rng.gen_range(-0.45..0.45)).collect(),
            if positive {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
    let samples: Vec<Vec<f64>> = (0..batch)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    (model, samples)
}

/// One session per sample — the pre-batching baseline shape.
fn classify_per_sample(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    seed: u64,
) -> Vec<Label> {
    samples
        .iter()
        .enumerate()
        .flat_map(|(i, s)| private_classify(model, std::slice::from_ref(s), cfg, seed + i as u64))
        .collect()
}

fn bench_batch_classification(c: &mut Criterion) {
    let cfg = ProtocolConfig::default();
    let dim = 16usize;

    let mut group = c.benchmark_group("batch_classification");
    group.sample_size(10);
    for batch in [16usize, 64, 256] {
        let (model, samples) = blob_model(dim, batch, batch as u64);
        group.bench_with_input(
            BenchmarkId::new("per_sample_sessions", batch),
            &batch,
            |b, _| b.iter(|| black_box(classify_per_sample(&model, &samples, cfg, 1))),
        );
        group.bench_with_input(BenchmarkId::new("batched_1lane", batch), &batch, |b, _| {
            b.iter(|| black_box(private_classify(&model, &samples, cfg, 2)))
        });
        for lanes in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_{lanes}lanes"), batch),
                &batch,
                |b, _| {
                    b.iter(|| black_box(private_classify_parallel(&model, &samples, cfg, lanes, 3)))
                },
            );
        }
    }
    group.finish();

    // Under the real Naor–Pinkas OT each sample costs real modular
    // exponentiations, so lane scaling (not just session reuse) shows.
    let np = NaorPinkasOt::fast_insecure();
    let mut group = c.benchmark_group("batch_classification_np");
    group.sample_size(10);
    let batch = 16usize;
    let (model, samples) = blob_model(dim, batch, 7);
    for lanes in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_{lanes}lanes"), batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    black_box(private_classify_parallel_with_ot(
                        &model, &samples, cfg, lanes, 3, &np,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_classification);
criterion_main!(benches);
