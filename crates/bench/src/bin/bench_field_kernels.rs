//! Field-kernel microbench: scalar vs AVX2 batch kernels.
//!
//! ```text
//! bench_field_kernels [n_elems] [reps]
//! ```
//!
//! Times the batch kernels that back the OMPE hot loops — Montgomery
//! products (`mul_many` / `square_many` / `scale_many`), the batch
//! point-cloud evaluation (`eval_cloud_many`, the kernel behind the
//! OMPE mask/cover refresh and answer paths), and the shared-inversion
//! batch interpolation (`interp_batch`) — and prints scalar and AVX2
//! wall times side by side with the speedup ratio. On machines without
//! AVX2 only the scalar column is produced.
//!
//! `EXPERIMENTS.md` records the numbers from this bench; the
//! `eval_cloud_many` row is the "batch OMPE evaluation" figure cited
//! there and in the README performance section.

use std::hint::black_box;
use std::time::Instant;

use ppcs_bench::{print_row, print_rule};
use ppcs_math::{
    avx2_available, eval_cloud_many_with, interp_batch, interpolate_at_zero, mul_many_with,
    scale_many_with, square_many_with, FixedFpAlgebra, Fp256, SimdBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// (p50, p95) wall time of `reps` runs of `f`, in microseconds
/// (nearest-rank quantiles, matching `report::quantile_ms`).
fn time_us(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = |q: f64| samples[((q * reps as f64).ceil() as usize).max(1) - 1];
    (rank(0.50), rank(0.95))
}

struct Row {
    name: &'static str,
    scalar_us: (f64, f64),
    avx2_us: Option<(f64, f64)>,
}

impl Row {
    fn cells(&self) -> Vec<String> {
        let (avx2, speedup) = match self.avx2_us {
            Some((p50, p95)) => (
                format!("{p50:.1} / {p95:.1}"),
                format!("{:.2}x", self.scalar_us.0 / p50),
            ),
            None => ("-".into(), "-".into()),
        };
        vec![
            self.name.into(),
            format!("{:.1} / {:.1}", self.scalar_us.0, self.scalar_us.1),
            avx2,
            speedup,
        ]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args
        .get(1)
        .map(|s| s.parse().expect("n_elems must be an integer"))
        .unwrap_or(4096);
    let reps: usize = args
        .get(2)
        .map(|s| s.parse().expect("reps must be an integer"))
        .unwrap_or(41);

    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut a = vec![Fp256::ZERO; n];
    let mut b = vec![Fp256::ZERO; n];
    Fp256::random_fill(&mut rng, &mut a);
    Fp256::random_fill(&mut rng, &mut b);
    let k = Fp256::random(&mut rng);

    // Batch OMPE evaluation shape: a degree-24 secret/cover polynomial
    // evaluated over the whole point cloud at once.
    let mut coeffs = vec![Fp256::ZERO; 25];
    Fp256::random_fill(&mut rng, &mut coeffs);
    let mut cloud = vec![Fp256::ZERO; n];
    Fp256::random_fill(&mut rng, &mut cloud);

    let backends: Vec<SimdBackend> = if avx2_available() {
        vec![SimdBackend::Scalar, SimdBackend::Avx2]
    } else {
        vec![SimdBackend::Scalar]
    };

    let run = |backend: SimdBackend, name: &str, reps: usize| -> (f64, f64) {
        match name {
            "mul_many" => time_us(reps, || {
                let mut x = a.clone();
                mul_many_with(backend, &mut x, &b);
                black_box(&x);
            }),
            "square_many" => time_us(reps, || {
                let mut x = a.clone();
                square_many_with(backend, &mut x);
                black_box(&x);
            }),
            "scale_many" => time_us(reps, || {
                let mut x = a.clone();
                scale_many_with(backend, &mut x, k);
                black_box(&x);
            }),
            "eval_cloud_many (deg 24)" => {
                let mut out = vec![Fp256::ZERO; cloud.len()];
                time_us(reps, || {
                    eval_cloud_many_with(backend, &coeffs, &cloud, &mut out);
                    black_box(&out);
                })
            }
            _ => unreachable!("unknown workload {name}"),
        }
    };

    println!("field-kernel microbench: n = {n}, reps = {reps} (p50 / p95)");
    println!("backends: {backends:?}\n");
    let widths = [26, 17, 17, 9];
    print_row(
        &[
            "kernel".into(),
            "scalar (us)".into(),
            "avx2 (us)".into(),
            "speedup".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    let mut rows = Vec::new();
    for name in [
        "mul_many",
        "square_many",
        "scale_many",
        "eval_cloud_many (deg 24)",
    ] {
        let scalar_us = run(SimdBackend::Scalar, name, reps);
        let avx2_us = backends
            .iter()
            .find(|b| matches!(b, SimdBackend::Avx2))
            .map(|_| run(SimdBackend::Avx2, name, reps));
        let row = Row {
            name,
            scalar_us,
            avx2_us,
        };
        print_row(&row.cells(), &widths);
        rows.push(row);
    }

    // Batch interpolation: 64 degree-8 systems, one shared Fermat
    // inversion (interp_batch) vs one inversion chain per system. This
    // runs on the process-wide dispatch backend (set PPCS_SIMD=off to
    // measure the scalar path end to end).
    let alg = FixedFpAlgebra::new(16);
    let systems: Vec<Vec<(Fp256, Fp256)>> = (0..64)
        .map(|s| {
            (0..9)
                .map(|i| (Fp256::from_u64(1 + s * 64 + i), Fp256::random(&mut rng)))
                .collect()
        })
        .collect();
    let (batched, _) = time_us(reps, || {
        black_box(interp_batch(&alg, &systems).expect("well-formed systems"));
    });
    let (looped, _) = time_us(reps, || {
        for sys in &systems {
            black_box(interpolate_at_zero(&alg, sys).expect("well-formed system"));
        }
    });
    println!(
        "\ninterp (64 systems, deg 8): batched {batched:.1} us vs per-system {looped:.1} us \
         ({:.2}x)",
        looped / batched
    );

    if let Some(eval) = rows.iter().find(|r| r.name.starts_with("eval_cloud_many")) {
        if let Some((avx2_p50, _)) = eval.avx2_us {
            let speedup = eval.scalar_us.0 / avx2_p50;
            println!("\nbatch OMPE evaluation speedup (scalar / avx2): {speedup:.2}x");
        }
    }
}
