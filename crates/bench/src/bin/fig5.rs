//! **Fig. 5** — Model estimation privacy: a colluding coalition pools
//! 2/4/10/20/50 randomized classification values of a 2-D linear
//! classifier (trained on 1000 samples) and least-squares-estimates the
//! decision function. The estimates ramble instead of converging to the
//! original line.
//!
//! ```text
//! cargo run -p ppcs-bench --bin fig5 --release
//! ```

use ppcs_bench::{print_row, print_rule};
use ppcs_core::privacy::estimation_attack;
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Alice's model: 2-D linear classifier from 1000 training samples
    // (the paper's Fig. 5 setup).
    let mut rng = StdRng::seed_from_u64(5);
    let mut ds = Dataset::new(2);
    while ds.len() < 1000 {
        let x: [f64; 2] = [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
        let score = 0.8 * x[0] - 0.6 * x[1] + 0.15;
        if score.abs() < 0.05 {
            continue;
        }
        ds.push(x.to_vec(), Label::from_sign(score));
    }
    let model = SvmModel::train(
        &ds,
        Kernel::Linear,
        &SmoParams {
            c: 10.0,
            ..SmoParams::default()
        },
    );
    let w = model.linear_weights().expect("linear weights");
    let norm: f64 = w.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!(
        "\nFig. 5 — Model Estimation from randomized classification results\n\
         \nTrue decision function: {:.4}·t1 + {:.4}·t2 + {:.4} = 0\n",
        w[0] / norm,
        w[1] / norm,
        model.bias() / norm
    );

    let widths = [8usize, 24, 12, 14];
    print_row(
        &[
            "samples".into(),
            "estimated direction".into(),
            "offset".into(),
            "angle err °".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    // Three independent collusion attempts per size show the "rambling":
    // the estimates disagree with the model *and with each other*.
    for &k in &[2usize, 4, 10, 20, 50] {
        for trial in 0..3 {
            let outcome = estimation_attack(
                &w,
                model.bias(),
                k,
                16,
                true,
                &mut StdRng::seed_from_u64(100 * k as u64 + trial),
            );
            print_row(
                &[
                    if trial == 0 {
                        format!("{k}")
                    } else {
                        String::new()
                    },
                    format!(
                        "[{:+.3}, {:+.3}]",
                        outcome.estimated_direction[0], outcome.estimated_direction[1]
                    ),
                    format!("{:+.4}", outcome.estimated_offset),
                    format!("{:.2}", outcome.angle_error_deg),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nAs in the paper's Fig. 5, the estimated lines lie at varying directions\n\
         and positions and do not settle on the original model."
    );
}
