//! **Fig. 7** — Accuracy of linear data classification: original SVM vs
//! the privacy-preserving scheme on the eight named datasets. The paper's
//! claim: the bars are identical.
//!
//! ```text
//! cargo run -p ppcs-bench --bin fig7 --release
//! ```

use ppcs_bench::{plain_accuracy, print_row, print_rule, private_accuracy, train_entry};
use ppcs_core::ProtocolConfig;
use ppcs_datasets::spec_by_name;

/// The paper's Fig. 7 x-axis order.
const DATASETS: [&str; 8] = [
    "splice",
    "madelon",
    "diabetes",
    "german.numer",
    "australian",
    "cod-rna",
    "ionosphere",
    "breast-cancer",
];

/// Cap on private protocol runs per dataset (functional mode is fast,
/// but cod-rna's 59k-test split would still dominate the run).
const MAX_PRIVATE_SAMPLES: usize = 2000;

fn main() {
    println!("\nFig. 7 — Accuracy of Linear Data Classification\n");
    let widths = [14usize, 12, 14, 10, 10];
    print_row(
        &[
            "dataset".into(),
            "original %".into(),
            "private %".into(),
            "equal?".into(),
            "samples".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    for name in DATASETS {
        let spec = spec_by_name(name).expect("catalog entry");
        let entry = train_entry(&spec);
        let cfg = ProtocolConfig::functional();
        let plain = plain_accuracy(&entry.linear, &entry.test, MAX_PRIVATE_SAMPLES);
        let (private, n) =
            private_accuracy(&entry.linear, &entry.test, MAX_PRIVATE_SAMPLES, cfg, 7);
        print_row(
            &[
                name.into(),
                format!("{:.2}", 100.0 * plain),
                format!("{:.2}", 100.0 * private),
                format!("{}", (plain - private).abs() < 1e-12),
                format!("{n}"),
            ],
            &widths,
        );
    }
    println!(
        "\nAs in the paper: the privacy-preserving scheme predicts every class\n\
         with exactly the same accuracy as the original SVM."
    );
}
