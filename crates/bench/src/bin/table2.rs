//! **Table II** — Privacy-preserving similarity evaluation on the four
//! diabetes subsets: averaged two-sample K-S statistic vs the private
//! triangle metric `10³·T`, with the Spearman rank correlation
//! quantifying the paper's "same trend" claim.
//!
//! ```text
//! cargo run -p ppcs-bench --bin table2 --release
//! ```

use ppcs_bench::{print_row, print_rule};
use ppcs_core::{similarity_request, similarity_respond, SimilarityConfig};
use ppcs_datasets::{diabetes_subsets, TABLE2_PAIRS, TABLE2_PAPER};
use ppcs_math::F64Algebra;
use ppcs_ot::TrustedSimOt;
use ppcs_stats::{ks_average_over_dims, spearman_rank_correlation};
use ppcs_svm::{Kernel, SmoParams, SvmModel};
use ppcs_transport::run_pair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let subsets = diabetes_subsets(42);
    let params = SmoParams {
        c: 8.0,
        ..SmoParams::default()
    };
    let models: Vec<SvmModel> = subsets
        .iter()
        .map(|ds| SvmModel::train(ds, Kernel::Linear, &params))
        .collect();
    let cfg = SimilarityConfig::default();

    let widths = [10usize, 12, 12, 12, 12];
    println!("\nTable II — Privacy-preserving Data Similarity Evaluation\n");
    print_row(
        &[
            "pair".into(),
            "K-S avg".into(),
            "paper K-S".into(),
            "10³·T".into(),
            "paper 10³T".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    let mut ks_values = Vec::new();
    let mut t_values = Vec::new();
    for (row, &(i, j)) in TABLE2_PAIRS.iter().enumerate() {
        let ks = ks_average_over_dims(&subsets[i], &subsets[j]);
        let (ma, mb) = (models[i].clone(), models[j].clone());
        let (res, t) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(10 + row as u64);
                similarity_respond(&F64Algebra::new(), &ep, &TrustedSimOt, &mut rng, &ma, &cfg)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(50 + row as u64);
                similarity_request(&F64Algebra::new(), &ep, &TrustedSimOt, &mut rng, &mb, &cfg)
                    .expect("similarity")
            },
        );
        res.expect("responder");
        let (paper_ks, paper_t) = TABLE2_PAPER[row];
        print_row(
            &[
                format!("S{} vs S{}", i + 1, j + 1),
                format!("{ks:.3}"),
                format!("{paper_ks:.3}"),
                format!("{:.3}", 1e3 * t),
                format!("{paper_t:.3}"),
            ],
            &widths,
        );
        ks_values.push(ks);
        t_values.push(t);
    }

    let rho = spearman_rank_correlation(&ks_values, &t_values);
    println!(
        "\nSpearman rank correlation between K-S and private T: {rho:.3} \
         (paper claims \"same trend\"; 1.0 = identical ranking)."
    );
    println!(
        "Note: absolute magnitudes differ from the paper's (synthetic subsets; \
         the paper's values are not triangle-consistent) — the claim under test \
         is the shared ordering."
    );
}
