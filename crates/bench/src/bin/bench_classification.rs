//! Machine-readable classification bench: runs the private
//! classification protocol with the telemetry registry attached, and
//! writes a schema-validated `BENCH_classification.json` artifact with
//! p50/p95 latency, round counts, and per-kind wire-byte totals.
//!
//! The workload is one sample per session — the paper's interactive
//! serving scenario, and the case the offline/online phase split is
//! built for (per-sample protocol work is inherently online, so the
//! split's advantage shrinks as the batch grows and setup amortizes;
//! batch-throughput behaviour is `bench_serving`'s job). Two latency
//! series are measured over the same workload: the end-to-end session
//! (`latency_ms`: cold handshake, inline precompute, per-iteration
//! thread pair) and the online phase only (`latency_online_ms`: both
//! sides' offline material drawn outside the timed region, warm
//! session ticket, single-threaded engine pump).
//!
//! ```text
//! cargo run -p ppcs-bench --bin bench_classification --release [iters] [out.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use ppcs_bench::report::{validate_bench_json, BenchArtifact, Overhead};
use ppcs_bench::train_entry;
use ppcs_core::{Client, ProtocolConfig, Trainer, WarmSessionCache};
use ppcs_datasets::spec_by_name;
use ppcs_math::F64Algebra;
use ppcs_ot::{ObliviousTransfer, TrustedSimOt};
use ppcs_svm::SvmModel;
use ppcs_telemetry::MetricsRegistry;
use ppcs_transport::{drive_blocking, duplex, run_engine_pair, Driver};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 1;

fn run_sessions(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    iters: u64,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> Vec<f64> {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let sel = TrustedSimOt.select();
    let mut latencies = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        let (ep_t, ep_c) = duplex();
        let start = Instant::now();
        std::thread::scope(|scope| {
            let t = scope.spawn(|| {
                let mut eng = trainer.serve_engine(sel, 100 + i);
                drive_blocking(&ep_t, &mut eng).expect("serve")
            });
            let mut driver = Driver::new();
            if let Some(reg) = metrics {
                driver = driver.with_metrics(reg.clone());
            }
            let mut eng = client.classify_engine(sel, 200 + i, samples);
            driver.drive(&ep_c, &mut eng).expect("classify");
            t.join().expect("trainer thread");
        });
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
    }
    latencies
}

/// Online-phase-only latency: the same batch workload, but every
/// input-independent step happens outside the timed region — both
/// sides draw their offline OMPE material up front and the client
/// holds a warm-session ticket, so the timed part is just the
/// input-keyed message exchange ([`run_engine_pair`] on one thread,
/// no spawn cost in the measurement).
fn run_online_sessions(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    iters: u64,
) -> Vec<f64> {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let sel = TrustedSimOt.select();
    let expected: Vec<_> = samples.iter().map(|s| model.predict(s)).collect();
    let cache = WarmSessionCache::new();
    let peer = 7;
    cache.insert(peer, trainer.spec(), trainer.epoch());
    let mut latencies = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        // Offline phase: precompute both halves, untimed.
        let mut rng = StdRng::seed_from_u64(9_000 + i);
        let material = trainer.precompute_material(sel, samples.len(), &mut rng);
        let mut offline = client
            .precompute_material(sel, &trainer.spec(), samples.len(), &mut rng)
            .expect("client offline material");
        let mut serve = trainer.serve_session_engine(sel, 100 + i, true, Some(material));
        let mut classify =
            client.classify_warm_engine(sel, 200 + i, samples, &cache, peer, Some(&mut offline));
        // Online phase: only the input-keyed exchange is timed.
        let start = Instant::now();
        let (served, values) =
            run_engine_pair(&mut serve, &mut classify).expect("session transport");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(served.expect("serve"), samples.len());
        let values = values.expect("classify");
        for (got, want) in values.iter().zip(&expected) {
            assert_eq!(got.0, *want, "online phase must match plaintext labels");
        }
    }
    latencies
}

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_classification.json".into());

    let spec = spec_by_name("diabetes").expect("catalog has diabetes");
    let entry = train_entry(&spec);
    let cfg = ProtocolConfig::functional();
    let samples: Vec<Vec<f64>> = (0..SAMPLES)
        .map(|i| entry.test.features(i).to_vec())
        .collect();

    // Warm-up (allocators, thread pools) before anything is timed.
    run_sessions(&entry.linear, &samples, cfg, 1, None);
    run_online_sessions(&entry.linear, &samples, cfg, 1);

    let reg = MetricsRegistry::new(1, "client");
    let latencies = run_sessions(&entry.linear, &samples, cfg, iters, Some(&reg));
    let telemetry_on_ms: f64 = latencies.iter().sum();
    let off = run_sessions(&entry.linear, &samples, cfg, iters, None);
    let telemetry_off_ms: f64 = off.iter().sum();
    let online = run_online_sessions(&entry.linear, &samples, cfg, iters);

    let artifact = BenchArtifact {
        bench: "classification".into(),
        iterations: iters,
        latency_ms: latencies,
        latency_online_ms: Some(online),
        session: reg.report(),
        overhead: Some(Overhead {
            telemetry_on_ms,
            telemetry_off_ms,
        }),
    };
    let text = artifact.to_json();
    validate_bench_json(&text).expect("artifact must pass its own schema validator");
    std::fs::write(&out, format!("{text}\n")).expect("write artifact");

    println!("{}", artifact.session);
    println!(
        "telemetry on {telemetry_on_ms:.1} ms vs off {telemetry_off_ms:.1} ms \
         over {iters} sessions (ratio {:.3})",
        artifact.overhead.expect("set above").ratio()
    );
    let e2e_p50 = ppcs_bench::report::quantile_ms(&artifact.latency_ms, 0.50);
    let online_p50 = ppcs_bench::report::quantile_ms(
        artifact.latency_online_ms.as_deref().expect("set above"),
        0.50,
    );
    println!(
        "e2e p50 {e2e_p50:.4} ms vs online-phase p50 {online_p50:.4} ms \
         ({:.1}x)",
        e2e_p50 / online_p50
    );
    println!("wrote {out}");
}
