//! Machine-readable classification bench: runs the private batch
//! classification protocol with the telemetry registry attached, and
//! writes a schema-validated `BENCH_classification.json` artifact with
//! p50/p95 latency, round counts, and per-kind wire-byte totals.
//!
//! ```text
//! cargo run -p ppcs-bench --bin bench_classification --release [iters] [out.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use ppcs_bench::report::{validate_bench_json, BenchArtifact, Overhead};
use ppcs_bench::train_entry;
use ppcs_core::{Client, ProtocolConfig, Trainer};
use ppcs_datasets::spec_by_name;
use ppcs_math::F64Algebra;
use ppcs_ot::{ObliviousTransfer, TrustedSimOt};
use ppcs_svm::SvmModel;
use ppcs_telemetry::MetricsRegistry;
use ppcs_transport::{drive_blocking, duplex, Driver};

const SAMPLES: usize = 8;

fn run_sessions(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    iters: u64,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> Vec<f64> {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let sel = TrustedSimOt.select();
    let mut latencies = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        let (ep_t, ep_c) = duplex();
        let start = Instant::now();
        std::thread::scope(|scope| {
            let t = scope.spawn(|| {
                let mut eng = trainer.serve_engine(sel, 100 + i);
                drive_blocking(&ep_t, &mut eng).expect("serve")
            });
            let mut driver = Driver::new();
            if let Some(reg) = metrics {
                driver = driver.with_metrics(reg.clone());
            }
            let mut eng = client.classify_engine(sel, 200 + i, samples);
            driver.drive(&ep_c, &mut eng).expect("classify");
            t.join().expect("trainer thread");
        });
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
    }
    latencies
}

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_classification.json".into());

    let spec = spec_by_name("diabetes").expect("catalog has diabetes");
    let entry = train_entry(&spec);
    let cfg = ProtocolConfig::functional();
    let samples: Vec<Vec<f64>> = (0..SAMPLES)
        .map(|i| entry.test.features(i).to_vec())
        .collect();

    // Warm-up (allocators, thread pools) before anything is timed.
    run_sessions(&entry.linear, &samples, cfg, 1, None);

    let reg = MetricsRegistry::new(1, "client");
    let latencies = run_sessions(&entry.linear, &samples, cfg, iters, Some(&reg));
    let telemetry_on_ms: f64 = latencies.iter().sum();
    let off = run_sessions(&entry.linear, &samples, cfg, iters, None);
    let telemetry_off_ms: f64 = off.iter().sum();

    let artifact = BenchArtifact {
        bench: "classification".into(),
        iterations: iters,
        latency_ms: latencies,
        session: reg.report(),
        overhead: Some(Overhead {
            telemetry_on_ms,
            telemetry_off_ms,
        }),
    };
    let text = artifact.to_json();
    validate_bench_json(&text).expect("artifact must pass its own schema validator");
    std::fs::write(&out, format!("{text}\n")).expect("write artifact");

    println!("{}", artifact.session);
    println!(
        "telemetry on {telemetry_on_ms:.1} ms vs off {telemetry_off_ms:.1} ms \
         over {iters} sessions (ratio {:.3})",
        artifact.overhead.expect("set above").ratio()
    );
    println!("wrote {out}");
}
