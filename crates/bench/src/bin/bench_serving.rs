//! Machine-readable serving bench: each iteration drives one round of
//! [`BATCH`] concurrent TCP classification sessions through the
//! `serve_async_tcp` reactor (one server thread, one client-side
//! `AsyncDriver` multiplexing the whole fleet), and writes a
//! schema-validated `BENCH_serving.json` artifact with per-round
//! latency quantiles plus the server-side session report (admission,
//! reactor wakeup, and timer counters included).
//!
//! ```text
//! cargo run -p ppcs-bench --bin bench_serving --release [iters] [out.json]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppcs_bench::report::{validate_bench_json, BenchArtifact};
use ppcs_bench::train_entry;
use ppcs_core::{Client, ProtocolConfig, ServerConfig, Trainer, TrainerServer};
use ppcs_datasets::spec_by_name;
use ppcs_math::F64Algebra;
use ppcs_ot::{ObliviousTransfer, TrustedSimOt};
use ppcs_svm::{Label, SvmModel};
use ppcs_telemetry::MetricsRegistry;
use ppcs_transport::{AsyncDriver, DriveOptions, SessionLimits};

/// Concurrent sessions per measured round.
const BATCH: usize = 32;

fn server_config() -> ServerConfig {
    ServerConfig {
        max_sessions: 2 * BATCH,
        limits: SessionLimits::unlimited()
            .with_deadline(Duration::from_secs(30))
            .with_max_frames(1 << 16)
            .with_max_wire_bytes(64 << 20),
        idle_timeout: Duration::from_secs(30),
        drain_deadline: Duration::from_millis(500),
        precompute_capacity: 0,
        precompute_masks: 0,
        ..ServerConfig::default()
    }
}

/// One round: a fresh server reactor serves `BATCH` concurrent TCP
/// sessions (one sample each); returns the round's wall time in ms.
fn run_round(
    model: &SvmModel,
    sample: &[f64],
    cfg: ProtocolConfig,
    round: u64,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> f64 {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let sel = TrustedSimOt.select();
    let mut server = TrainerServer::new(&trainer, server_config());
    if let Some(reg) = metrics {
        server = server.with_metrics(reg.clone());
    }
    let supervisor = server.supervisor();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let expected = model.predict(sample);
    let sample_vec = vec![sample.to_vec()];

    let start = Instant::now();
    let summary = std::thread::scope(|scope| {
        let server_thread = scope.spawn(|| {
            server
                .serve_async_tcp(listener, &TrustedSimOt, 1000 * round)
                .expect("server reactor")
        });
        let mut cdrv: AsyncDriver<'_, Vec<(Label, f64)>, ppcs_core::PpcsError> =
            AsyncDriver::new().expect("client reactor");
        // Attach the whole fleet before the first poll so all BATCH
        // sessions are genuinely in flight together.
        for i in 0..BATCH {
            let stream = std::net::TcpStream::connect(addr).expect("connect");
            let id = cdrv.add_tcp(stream).expect("register");
            cdrv.attach_engine(
                id,
                client.classify_engine(sel, 10_000 * round + i as u64, &sample_vec),
                DriveOptions::new().with_timeout(Duration::from_secs(30)),
            );
        }
        let done = cdrv.drive_all();
        assert_eq!(done.len(), BATCH, "every session must finish");
        for (id, res, _) in done {
            let values = res.unwrap_or_else(|e| panic!("session {id} failed: {e:?}"));
            assert_eq!(values[0].0, expected, "session {id}: wrong label");
        }
        drop(cdrv);
        supervisor.drain();
        server_thread.join().expect("server thread")
    });
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(summary.sessions_admitted, BATCH as u64);
    assert_eq!(summary.served_samples, BATCH);
    elapsed_ms
}

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_serving.json".into());

    let spec = spec_by_name("diabetes").expect("catalog has diabetes");
    let entry = train_entry(&spec);
    let cfg = ProtocolConfig::functional();
    let sample = entry.test.features(0).to_vec();

    // Warm-up round (allocators, listener setup) before anything is
    // timed or counted.
    run_round(&entry.linear, &sample, cfg, 0, None);

    let reg = MetricsRegistry::new(1, "trainer-server");
    let mut latencies = Vec::with_capacity(iters as usize);
    for round in 1..=iters {
        latencies.push(run_round(&entry.linear, &sample, cfg, round, Some(&reg)));
    }

    let artifact = BenchArtifact {
        bench: "serving".into(),
        iterations: iters,
        latency_ms: latencies,
        latency_online_ms: None,
        session: reg.report(),
        overhead: None,
    };
    let text = artifact.to_json();
    validate_bench_json(&text).expect("artifact must pass its own schema validator");
    std::fs::write(&out, format!("{text}\n")).expect("write artifact");

    println!("{}", artifact.session);
    println!(
        "{iters} rounds x {BATCH} concurrent TCP sessions per round, \
         one reactor thread each side"
    );
    println!("wrote {out}");
}
