//! **Fig. 9** — Computational cost of classification vs data size:
//! the a1a–a9a sweep with four curves — {linear, nonlinear} ×
//! {original, privacy-preserving}.
//!
//! The private curves run the full masking configuration (random
//! polynomials + decoys) over the ideal OT, so the sweep measures the
//! protocol's compute overhead — the paper attributes its ≈ 4× factor to
//! the random-polynomial work. Per-sample cost is measured on a capped
//! batch and scaled to the full split (classification is embarrassingly
//! per-sample).
//!
//! ```text
//! cargo run -p ppcs-bench --bin fig9 --release
//! ```

use ppcs_bench::{print_row, print_rule, time_ms, time_private_batch, train_entry};
use ppcs_core::ProtocolConfig;
use ppcs_datasets::catalog;
use ppcs_ot::TrustedSimOt;
use ppcs_svm::SvmModel;

static SIM: TrustedSimOt = TrustedSimOt;

/// Measured batch caps (per-sample cost is flat; the full-split numbers
/// are `per_sample × test_size`).
const PLAIN_CAP: usize = 5_000;
const PRIVATE_LINEAR_CAP: usize = 1_000;
const PRIVATE_POLY_CAP: usize = 40;

/// Plain-classification timing in LIBSVM's support-vector form
/// (`Σ_s α_s y_s K(x_s, t) + b`) — the baseline the paper's "original
/// scheme" measured.
fn plain_sv_batch_ms(model: &SvmModel, samples: &[Vec<f64>]) -> f64 {
    let (_, ms) = time_ms(|| {
        let mut acc = 0usize;
        for s in samples {
            acc += (model.decision(s) > 0.0) as usize;
        }
        std::hint::black_box(acc)
    });
    ms
}

/// Plain linear classification in explicit weight form `wᵀt + b` — the
/// representation the private protocol actually evaluates, included so
/// the overhead attributable to the protocol itself is visible.
fn plain_w_batch_ms(model: &SvmModel, samples: &[Vec<f64>]) -> f64 {
    let w = model.linear_weights().expect("linear model");
    let (_, ms) = time_ms(|| {
        let mut acc = 0usize;
        for s in samples {
            let d = ppcs_svm::dot(&w, s) + model.bias();
            acc += (d > 0.0) as usize;
        }
        std::hint::black_box(acc)
    });
    ms
}

fn main() {
    println!(
        "\nFig. 9 — Computational Cost of Classification (a1a–a9a sweep)\n\
         \nAll times in ms, extrapolated to the full test split from capped batches;\n\
         'KB' is the raw classified payload (8 bytes per dimension value).\n"
    );
    let widths = [6usize, 9, 10, 11, 11, 12, 13, 14];
    print_row(
        &[
            "set".into(),
            "samples".into(),
            "KB".into(),
            "lin w-form".into(),
            "lin SV-form".into(),
            "poly orig".into(),
            "lin private".into(),
            "poly private".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    // Full masking configuration (fresh random polynomials and decoys per
    // sample) over the ideal OT: this measures exactly the overhead the
    // paper attributes to "adding the random polynomial to the process".
    let cfg = ProtocolConfig::default();
    for spec in catalog()
        .into_iter()
        .filter(|s| s.name.len() == 3 && s.name.starts_with('a'))
    {
        let entry = train_entry(&spec);
        let total = entry.test.len();
        let all: Vec<Vec<f64>> = (0..total)
            .map(|i| entry.test.features(i).to_vec())
            .collect();

        let scale = |cap: usize, ms: f64| ms * total as f64 / cap.min(total) as f64;

        let plain_lin_w = scale(
            PLAIN_CAP,
            plain_w_batch_ms(&entry.linear, &all[..PLAIN_CAP.min(total)]),
        );
        let plain_lin_sv = scale(
            PLAIN_CAP,
            plain_sv_batch_ms(&entry.linear, &all[..PLAIN_CAP.min(total)]),
        );
        let plain_poly = scale(
            PLAIN_CAP,
            plain_sv_batch_ms(&entry.poly, &all[..PLAIN_CAP.min(total)]),
        );
        let (_, priv_lin_ms) = time_private_batch(
            &entry.linear,
            &all[..PRIVATE_LINEAR_CAP.min(total)],
            cfg,
            &SIM,
            9,
        );
        let priv_lin = scale(PRIVATE_LINEAR_CAP, priv_lin_ms);
        let (_, priv_poly_ms) = time_private_batch(
            &entry.poly,
            &all[..PRIVATE_POLY_CAP.min(total)],
            cfg,
            &SIM,
            10,
        );
        let priv_poly = scale(PRIVATE_POLY_CAP, priv_poly_ms);

        print_row(
            &[
                spec.name.into(),
                format!("{total}"),
                format!("{}", entry.test.payload_bytes() / 1024),
                format!("{plain_lin_w:.1}"),
                format!("{plain_lin_sv:.1}"),
                format!("{plain_poly:.1}"),
                format!("{priv_lin:.1}"),
                format!("{priv_poly:.1}"),
            ],
            &widths,
        );
    }
    println!(
        "\nShape to compare with the paper's Fig. 9: all four curves grow linearly\n\
         with data size; the private schemes sit a constant factor above the\n\
         original ones (the paper reports ≈ 4×), and nonlinear sits above linear."
    );
}
