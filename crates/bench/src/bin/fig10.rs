//! **Fig. 10** — Computational cost of similarity evaluation vs
//! hyperplane dimension (2–8): ordinary (in-the-clear metric) vs the
//! privacy-preserving protocol.
//!
//! Both parties' geometries (boundary points, centroids, norms) are
//! precomputed outside the timed region — the paper's comparison is
//! between "a simple multiplication per dimension" (ordinary) and "more
//! random polynomials per dimension" (private), i.e. the per-evaluation
//! work after training.
//!
//! ```text
//! cargo run -p ppcs-bench --bin fig10 --release
//! ```

use ppcs_bench::{print_row, print_rule, time_ms};
use ppcs_core::{
    direction_input, similarity_plain_geometry, similarity_request_geometry,
    similarity_respond_geometry, ModelGeometry, SimilarityConfig,
};
use ppcs_math::F64Algebra;
use ppcs_ot::TrustedSimOt;
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use ppcs_transport::run_pair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn model_of_dim(dim: usize, seed: u64) -> SvmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut ds = Dataset::new(dim);
    while ds.len() < 120 {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let score = ppcs_svm::dot(&w, &x) + 0.05;
        if score.abs() < 0.1 {
            continue;
        }
        ds.push(x, Label::from_sign(score));
    }
    SvmModel::train(
        &ds,
        Kernel::Linear,
        &SmoParams {
            c: 10.0,
            ..SmoParams::default()
        },
    )
}

fn main() {
    const RUNS: usize = 20;
    println!(
        "\nFig. 10 — Computational Cost of Similarity Evaluation vs Dimension\n\
         \nPer-evaluation wall-clock time with precomputed geometry\n\
         (averaged over {RUNS} runs).\n"
    );
    let widths = [6usize, 16, 18, 8];
    print_row(
        &[
            "dims".into(),
            "ordinary (ns)".into(),
            "private (µs)".into(),
            "ratio".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    let cfg = SimilarityConfig::default();
    for dim in 2..=8usize {
        let ma = model_of_dim(dim, 1000 + dim as u64);
        let mb = model_of_dim(dim, 2000 + dim as u64);
        let ga = ModelGeometry::from_model(&ma, &cfg).expect("geometry A");
        let gb = ModelGeometry::from_model(&mb, &cfg).expect("geometry B");
        let gb_dir = direction_input(&gb, &mb);

        // Ordinary: the metric formula over precomputed geometry.
        const ORD_REPS: usize = 20_000;
        let (_, ordinary_ms) = time_ms(|| {
            let mut acc = 0.0;
            for _ in 0..ORD_REPS {
                acc += similarity_plain_geometry(
                    &ga,
                    &gb,
                    Kernel::Linear,
                    std::hint::black_box(&gb_dir),
                    &cfg,
                );
            }
            std::hint::black_box(acc)
        });
        let ordinary_ns = 1e6 * ordinary_ms / ORD_REPS as f64;

        // Private: the three OMPE rounds over the same geometry.
        let (_, private_total_ms) = time_ms(|| {
            for run in 0..RUNS {
                let (ga, gb) = (ga.clone(), gb.clone());
                let gb_dir = gb_dir.clone();
                let (res, _t) = run_pair(
                    move |ep| {
                        let mut rng = StdRng::seed_from_u64(3000 + run as u64);
                        similarity_respond_geometry(
                            &F64Algebra::new(),
                            &ep,
                            &TrustedSimOt,
                            &mut rng,
                            &ga,
                            Kernel::Linear,
                            dim,
                            &cfg,
                        )
                    },
                    move |ep| {
                        let mut rng = StdRng::seed_from_u64(4000 + run as u64);
                        similarity_request_geometry(
                            &F64Algebra::new(),
                            &ep,
                            &TrustedSimOt,
                            &mut rng,
                            &gb,
                            &gb_dir,
                            dim,
                            &cfg,
                        )
                        .expect("similarity")
                    },
                );
                res.expect("responder");
            }
        });
        let private_us = 1e3 * private_total_ms / RUNS as f64;

        print_row(
            &[
                format!("{dim}"),
                format!("{ordinary_ns:.1}"),
                format!("{private_us:.1}"),
                format!("{:.0}x", 1e3 * private_us / ordinary_ns),
            ],
            &widths,
        );
    }
    println!(
        "\nShape to compare with the paper's Fig. 10: the private evaluation's\n\
         cost grows faster with dimension than the ordinary one's (each extra\n\
         dimension adds masking polynomials, not just one multiplication)."
    );
}
