//! Machine-readable similarity bench: runs the private model-similarity
//! protocol (three OMPE rounds) with the telemetry registry attached on
//! the requester, and writes a schema-validated `BENCH_similarity.json`
//! artifact with p50/p95 latency, round counts, and wire-byte totals.
//!
//! ```text
//! cargo run -p ppcs-bench --bin bench_similarity --release [iters] [out.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use ppcs_bench::report::{validate_bench_json, BenchArtifact, Overhead};
use ppcs_core::{similarity_request_io, similarity_respond_io, SimilarityConfig};
use ppcs_math::F64Algebra;
use ppcs_ot::{ObliviousTransfer, TrustedSimOt};
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use ppcs_telemetry::MetricsRegistry;
use ppcs_transport::{drive_blocking, duplex, Driver, ProtocolEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-D linear model whose boundary passes through the origin rotated
/// by `angle_deg` — guaranteed to intersect the default `[-1, 1]²` box.
fn train_rotated(angle_deg: f64, seed: u64) -> SvmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(2);
    let theta = angle_deg.to_radians();
    let (c, s) = (theta.cos(), theta.sin());
    while ds.len() < 160 {
        let x: Vec<f64> = (0..2).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let score = c * x[0] + s * x[1];
        if score.abs() < 0.1 {
            continue;
        }
        ds.push(x, Label::from_sign(score));
    }
    SvmModel::train(
        &ds,
        Kernel::Linear,
        &SmoParams {
            c: 10.0,
            ..SmoParams::default()
        },
    )
}

fn run_sessions(
    model_a: &SvmModel,
    model_b: &SvmModel,
    cfg: &SimilarityConfig,
    iters: u64,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> Vec<f64> {
    let sel = TrustedSimOt.select();
    let mut latencies = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        let (ep_a, ep_b) = duplex();
        let start = Instant::now();
        std::thread::scope(|scope| {
            let a = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(300 + i);
                let mut eng = ProtocolEngine::new(|io| async move {
                    similarity_respond_io(&F64Algebra::new(), &io, sel, &mut rng, model_a, cfg)
                        .await
                });
                drive_blocking(&ep_a, &mut eng).expect("respond")
            });
            let mut rng = StdRng::seed_from_u64(400 + i);
            let mut driver = Driver::new();
            if let Some(reg) = metrics {
                driver = driver.with_metrics(reg.clone());
            }
            let mut eng = ProtocolEngine::new(|io| async move {
                similarity_request_io(&F64Algebra::new(), &io, sel, &mut rng, model_b, cfg).await
            });
            let t = driver.drive(&ep_b, &mut eng).expect("request");
            assert!(t.is_finite() && t >= 0.0, "similarity must be a real value");
            a.join().expect("responder thread");
        });
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
    }
    latencies
}

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_similarity.json".into());

    let model_a = train_rotated(15.0, 4);
    let model_b = train_rotated(60.0, 5);
    let cfg = SimilarityConfig::default();

    run_sessions(&model_a, &model_b, &cfg, 1, None);

    let reg = MetricsRegistry::new(2, "requester");
    let latencies = run_sessions(&model_a, &model_b, &cfg, iters, Some(&reg));
    let telemetry_on_ms: f64 = latencies.iter().sum();
    let off = run_sessions(&model_a, &model_b, &cfg, iters, None);
    let telemetry_off_ms: f64 = off.iter().sum();

    let artifact = BenchArtifact {
        bench: "similarity".into(),
        iterations: iters,
        latency_ms: latencies,
        latency_online_ms: None,
        session: reg.report(),
        overhead: Some(Overhead {
            telemetry_on_ms,
            telemetry_off_ms,
        }),
    };
    let text = artifact.to_json();
    validate_bench_json(&text).expect("artifact must pass its own schema validator");
    std::fs::write(&out, format!("{text}\n")).expect("write artifact");

    println!("{}", artifact.session);
    println!(
        "telemetry on {telemetry_on_ms:.1} ms vs off {telemetry_off_ms:.1} ms \
         over {iters} sessions (ratio {:.3})",
        artifact.overhead.expect("set above").ratio()
    );
    println!("wrote {out}");
}
