//! **Fig. 6** — Decision-function retrieval: with raw (un-randomized)
//! decision values, three points suffice to reconstruct a 2-D linear
//! classifier (the tangent-circle argument); the per-query amplifier
//! defeats the same attack.
//!
//! ```text
//! cargo run -p ppcs-bench --bin fig6 --release
//! ```

use ppcs_bench::{print_row, print_rule};
use ppcs_core::privacy::retrieval_attack;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let true_w = [0.8, -0.6];
    let true_b = 0.15;
    println!(
        "\nFig. 6 — Decision Function Retrieval (2-D, 3 query points)\n\
         \nTrue boundary: {:.2}·t1 + {:.2}·t2 + {:.2} = 0\n",
        true_w[0], true_w[1], true_b
    );

    let widths = [22usize, 12, 14, 12];
    print_row(
        &[
            "attacker sees".into(),
            "angle err °".into(),
            "offset err".into(),
            "recovered".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    let mut recovered_exact = 0;
    let mut recovered_random = 0;
    let trials = 10;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(600 + trial);
        let exact = retrieval_attack(&true_w, true_b, 3, false, 16, &mut rng);
        let random = retrieval_attack(&true_w, true_b, 3, true, 16, &mut rng);
        recovered_exact += exact.recovered as u32;
        recovered_random += random.recovered as u32;
        if trial < 3 {
            print_row(
                &[
                    "exact distances".into(),
                    format!("{:.4}", exact.angle_error_deg),
                    format!("{:.4}", exact.offset_error),
                    format!("{}", exact.recovered),
                ],
                &widths,
            );
            print_row(
                &[
                    "randomized (fresh r_a)".into(),
                    format!("{:.4}", random.angle_error_deg),
                    format!("{:.4}", random.offset_error),
                    format!("{}", random.recovered),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nOver {trials} trials: exact distances reconstructed the boundary \
         {recovered_exact}/{trials} times;\nrandomized values reconstructed it \
         {recovered_random}/{trials} times."
    );
    println!(
        "This is the paper's §VI-A argument for the amplifier: without r_a, a\n\
         client holding n+1 = 3 distance values retrieves the classifier exactly."
    );
}
