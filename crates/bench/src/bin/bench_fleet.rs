//! Failover-latency measurement for the fleet resilience layer: the
//! same classification batch through three replica trainers under four
//! conditions — all healthy, one replica killed mid-session, one dead
//! on arrival, and a mute primary raced by a hedge — reporting per-run
//! p50/p95 so the cost of each recovery path is a number, not a claim.
//!
//! ```text
//! cargo run -p ppcs-bench --bin bench_fleet --release [iters]
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppcs_core::{
    BreakerConfig, Client, Connector, FleetClient, FleetConfig, ProtocolConfig, ServerConfig,
    Trainer, TrainerServer,
};
use ppcs_math::FixedFpAlgebra;
use ppcs_ot::TrustedSimOt;
use ppcs_svm::{Kernel, SmoParams, SvmModel};
use ppcs_transport::{
    duplex, faulty_pair, Endpoint, FaultKind, FaultSchedule, FaultyLane, Lane, TransportError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REPLICAS: usize = 3;
const SAMPLES: usize = 12;

static SIM: TrustedSimOt = TrustedSimOt;

fn lane_bank(n: usize) -> (Vec<Endpoint>, Arc<Mutex<VecDeque<Endpoint>>>) {
    let mut server = Vec::with_capacity(n);
    let mut client = VecDeque::with_capacity(n);
    for _ in 0..n {
        let (s, c) = duplex();
        server.push(s);
        client.push_back(c);
    }
    (server, Arc::new(Mutex::new(client)))
}

fn connector(bank: Arc<Mutex<VecDeque<Endpoint>>>) -> Connector {
    Box::new(move || {
        bank.lock()
            .expect("bank lock")
            .pop_front()
            .map(|ep| Box::new(ep) as Box<dyn Lane>)
            .ok_or(TransportError::Disconnected)
    })
}

/// Both halves chaos-wrapped (the carrier framing needs the peer
/// wrapped too): the client half dies per `schedule`.
fn killed_lane_bank(
    n: usize,
    schedule: FaultSchedule,
) -> (Vec<FaultyLane>, Arc<Mutex<VecDeque<FaultyLane>>>) {
    let mut server = Vec::with_capacity(n);
    let mut client = VecDeque::with_capacity(n);
    for _ in 0..n {
        let (s, c) = faulty_pair(FaultSchedule::none(), schedule.clone());
        server.push(s);
        client.push_back(c);
    }
    (server, Arc::new(Mutex::new(client)))
}

fn faulty_connector(bank: Arc<Mutex<VecDeque<FaultyLane>>>) -> Connector {
    Box::new(move || {
        bank.lock()
            .expect("bank lock")
            .pop_front()
            .map(|l| Box::new(l) as Box<dyn Lane>)
            .ok_or(TransportError::Disconnected)
    })
}

/// Which failure the run injects on replica 0.
#[derive(Clone, Copy)]
enum Condition {
    Healthy,
    /// The connection dies at client-send sequence 2 (mid-session).
    KilledMidSession,
    /// The connection dies at sequence 0 (the probe itself).
    DeadOnArrival,
    /// Replica 0 dials but never answers; the hedge races past it.
    MutePrimary,
}

fn fleet_config(cond: Condition) -> FleetConfig {
    FleetConfig {
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 60_000,
        },
        hedge_delay: match cond {
            Condition::MutePrimary => Some(Duration::from_millis(10)),
            _ => None,
        },
        probe_window: match cond {
            Condition::MutePrimary => Duration::from_millis(100),
            _ => Duration::from_secs(5),
        },
        ..FleetConfig::default()
    }
}

/// One timed run: fresh servers, fresh fleet, one parallel batch.
fn run_once(
    trainer: &Trainer<FixedFpAlgebra>,
    cfg: ProtocolConfig,
    samples: &[Vec<f64>],
    cond: Condition,
    seed: u64,
) -> f64 {
    // Replica 0's wiring depends on the condition; replicas 1..N are
    // always plain banks backed by live servers.
    let plain: Vec<_> = (0..REPLICAS - 1).map(|_| lane_bank(4)).collect();
    let killed = match cond {
        Condition::KilledMidSession => Some(killed_lane_bank(
            4,
            FaultSchedule::single(2, FaultKind::Cut),
        )),
        Condition::DeadOnArrival => Some(killed_lane_bank(
            4,
            FaultSchedule::single(0, FaultKind::Cut),
        )),
        _ => None,
    };
    let healthy_extra = matches!(cond, Condition::Healthy).then(|| lane_bank(4));
    let mute = matches!(cond, Condition::MutePrimary).then(|| lane_bank(4));

    std::thread::scope(|scope| {
        let mut client_banks = Vec::new();
        for (server_lanes, client_bank) in &plain {
            scope.spawn(move || {
                TrainerServer::new(trainer, ServerConfig::default()).serve(server_lanes, &SIM, 7);
            });
            client_banks.push(client_bank.clone());
        }
        if let Some((killed_server, _)) = &killed {
            scope.spawn(move || {
                TrainerServer::new(trainer, ServerConfig::default()).serve(killed_server, &SIM, 7);
            });
        }
        if let Some((server_lanes, client_bank)) = &healthy_extra {
            scope.spawn(move || {
                TrainerServer::new(trainer, ServerConfig::default()).serve(server_lanes, &SIM, 7);
            });
            client_banks.push(client_bank.clone());
        }

        let alg = FixedFpAlgebra::new(16);
        let mut fleet = FleetClient::new(Client::new(alg, cfg), fleet_config(cond));
        if let Some((_, killed_bank)) = &killed {
            fleet.add_replica(faulty_connector(killed_bank.clone()));
        }
        if let Some((_, mute_bank)) = &mute {
            // A dialable bank with no server behind it: the probe hangs
            // until its window while the hedge races past.
            fleet.add_replica(connector(mute_bank.clone()));
        }
        for bank in &client_banks {
            fleet.add_replica(connector(bank.clone()));
        }

        let start = Instant::now();
        let labels = match cond {
            // Hedging is a per-session race: measure the sequential path.
            Condition::MutePrimary => fleet.classify_batch(&SIM, seed, samples),
            _ => fleet.classify_batch_parallel(&SIM, seed, samples),
        }
        .expect("fleet batch");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(labels.len(), samples.len());

        drop(fleet);
        if let Some((_, killed_bank)) = &killed {
            killed_bank.lock().expect("bank lock").clear();
        }
        if let Some((_, mute_bank)) = &mute {
            mute_bank.lock().expect("bank lock").clear();
        }
        for bank in &client_banks {
            bank.lock().expect("bank lock").clear();
        }
        elapsed
    })
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let mut ds_rng = StdRng::seed_from_u64(7);
    let mut ds = ppcs_svm::Dataset::new(3);
    for k in 0..80 {
        let positive = k % 2 == 0;
        let c = if positive { 0.5 } else { -0.5 };
        ds.push(
            (0..3).map(|_| c + ds_rng.gen_range(-0.45..0.45)).collect(),
            if positive {
                ppcs_svm::Label::Positive
            } else {
                ppcs_svm::Label::Negative
            },
        );
    }
    let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
    let cfg = ProtocolConfig::default();
    let alg = FixedFpAlgebra::new(16);
    let trainer = Trainer::new(alg, &model, cfg).expect("trainer setup");
    let mut rng = StdRng::seed_from_u64(900);
    let samples: Vec<Vec<f64>> = (0..SAMPLES)
        .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    let conditions: [(&str, Condition); 4] = [
        ("healthy (3/3 replicas)", Condition::Healthy),
        ("killed mid-session", Condition::KilledMidSession),
        ("dead on arrival", Condition::DeadOnArrival),
        ("mute primary, hedged", Condition::MutePrimary),
    ];

    println!(
        "{iters} iters x {SAMPLES}-sample batch, {REPLICAS} replicas, in-memory lanes, exact field"
    );
    println!("| condition | p50 (ms) | p95 (ms) | vs healthy p50 |");
    println!("|---|---:|---:|---:|");
    let mut healthy_p50 = None;
    for (name, cond) in conditions {
        // One warm-up run per condition before anything is timed.
        run_once(&trainer, cfg, &samples, cond, 1);
        let mut lat: Vec<f64> = (0..iters)
            .map(|i| run_once(&trainer, cfg, &samples, cond, 100 + i as u64))
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (p50, p95) = (quantile(&lat, 0.5), quantile(&lat, 0.95));
        let base = *healthy_p50.get_or_insert(p50);
        println!("| {name} | {p50:.3} | {p95:.3} | {:.2}x |", p50 / base);
    }
}
