//! **Fig. 8** — Accuracy of nonlinear (degree-3 polynomial kernel) data
//! classification: original SVM vs the privacy-preserving scheme.
//!
//! The private leg requires the monomial expansion `C(n+2, 3)`; madelon's
//! 500 dimensions would need ~2.1·10⁷ monomials and gigabytes of cover
//! polynomials per sample, so its private column runs on a
//! reduced-dimension (30-feature) variant — the protocol-parity property
//! being verified is dimension-independent (see DESIGN.md §5).
//!
//! ```text
//! cargo run -p ppcs-bench --bin fig8 --release
//! ```

use ppcs_bench::{plain_accuracy, print_row, print_rule, private_accuracy, train_entry};
use ppcs_core::ProtocolConfig;
use ppcs_datasets::{spec_by_name, DatasetSpec, Structure};

/// The paper's Fig. 8 x-axis order.
const DATASETS: [&str; 8] = [
    "cod-rna",
    "splice",
    "diabetes",
    "australian",
    "ionosphere",
    "german.numer",
    "breast-cancer",
    "madelon",
];

fn private_spec(spec: &DatasetSpec) -> (DatasetSpec, bool) {
    if spec.dim <= 150 {
        return (spec.clone(), false);
    }
    // Reduced-dimension variant for the expansion-bound datasets.
    let reduced = DatasetSpec {
        name: spec.name,
        dim: 30,
        train_size: spec.train_size.min(800),
        test_size: 500,
        structure: match spec.structure {
            Structure::TripleProduct { linear_leak, .. } => Structure::TripleProduct {
                decoy_amplitude: 0.15,
                linear_leak,
            },
            other => other,
        },
        ..spec.clone()
    };
    (reduced, true)
}

fn main() {
    println!("\nFig. 8 — Accuracy of Nonlinear Data Classification (poly kernel, p = 3)\n");
    let widths = [14usize, 12, 14, 10, 10, 10];
    print_row(
        &[
            "dataset".into(),
            "original %".into(),
            "private %".into(),
            "equal?".into(),
            "samples".into(),
            "reduced".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    for name in DATASETS {
        let spec = spec_by_name(name).expect("catalog entry");
        let (pspec, reduced) = private_spec(&spec);
        let entry = train_entry(&pspec);
        let cfg = ProtocolConfig {
            max_expanded_terms: 50_000,
            ..ProtocolConfig::functional()
        };
        // Keep per-dataset protocol work bounded: the expansion cost per
        // sample is O(n'), so budget fewer samples for wide datasets.
        let budget = match pspec.dim {
            0..=15 => 500,
            16..=40 => 200,
            _ => 60,
        };
        let plain = plain_accuracy(&entry.poly, &entry.test, budget);
        let (private, n) = private_accuracy(&entry.poly, &entry.test, budget, cfg, 8);
        print_row(
            &[
                name.into(),
                format!("{:.2}", 100.0 * plain),
                format!("{:.2}", 100.0 * private),
                format!("{}", (plain - private).abs() < 1e-12),
                format!("{n}"),
                if reduced {
                    "30 dims".into()
                } else {
                    "-".into()
                },
            ],
            &widths,
        );
    }
    println!(
        "\nAs in the paper: nonlinear private classification reproduces the\n\
         original kernel SVM's predictions exactly (column 'equal?')."
    );
}
