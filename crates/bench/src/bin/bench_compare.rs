//! CI perf gate: compare a fresh bench artifact against a committed
//! baseline.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [p50_tol]
//! ```
//!
//! Both files must be valid `ppcs-bench/v2` (or legacy `v1`) artifacts for the same
//! workload. The gate fails (exit code 1) when the fresh p50 exceeds
//! `baseline * (1 + p50_tol)` (default tolerance 0.15) or when wire
//! bytes per iteration grow at all; see
//! [`compare_bench_json`](ppcs_bench::report::compare_bench_json) for
//! the exact policy.

use std::process::ExitCode;

use ppcs_bench::report::compare_bench_json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [p50_tol]");
        return ExitCode::from(2);
    }
    let p50_tol: f64 = match args.get(3).map(|s| s.parse()) {
        None => 0.15,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("p50_tol must be a number, got {:?}", args[3]);
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::from(2)
        })
    };
    let baseline = match read(&args[1]) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let fresh = match read(&args[2]) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match compare_bench_json(&baseline, &fresh, p50_tol) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("PERF GATE FAILED: {e}");
            eprintln!(
                "If this regression is intentional, regenerate the committed \
                 BENCH_*.json artifacts and apply the `perf-regression-ok` \
                 label to the pull request."
            );
            ExitCode::FAILURE
        }
    }
}
