//! Calibration helper: sweeps the polynomial-kernel `C` for a dataset
//! analog and prints accuracy/convergence, used to tune the catalog.
//!
//! ```text
//! cargo run -p ppcs-bench --bin calibrate --release -- diabetes
//! ```

use ppcs_bench::{print_row, print_rule};
use ppcs_datasets::{generate, spec_by_name};
use ppcs_svm::{Kernel, SmoParams, SvmModel};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "diabetes".into());
    let spec = spec_by_name(&name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let data = generate(&spec);

    let widths = [12usize, 10, 10, 12, 10, 8];
    println!(
        "\npoly-C sweep for {name} (dim {}, train {})\n",
        spec.dim,
        data.train.len()
    );
    print_row(
        &[
            "C".into(),
            "train %".into(),
            "test %".into(),
            "iterations".into(),
            "conv".into(),
            "#SV".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    for c in [
        1e-4, 1e-3, 0.01, 0.1, 1.0, 8.0, 27.0, 100.0, 250.0, 1000.0, 4000.0, 2e4, 1e5,
    ] {
        let params = SmoParams {
            c,
            max_iterations: 400_000,
            ..SmoParams::default()
        };
        let model = SvmModel::train(&data.train, Kernel::paper_polynomial(spec.dim), &params);
        print_row(
            &[
                format!("{c:.0}"),
                format!("{:.2}", 100.0 * model.accuracy(&data.train)),
                format!("{:.2}", 100.0 * model.accuracy(&data.test)),
                format!("{}", model.iterations()),
                format!("{}", model.converged()),
                format!("{}", model.support_vectors().len()),
            ],
            &widths,
        );
    }
}
