//! **Table I** — Data classification accuracy of the plain SVM on the 17
//! dataset analogs, linear vs degree-3 polynomial kernel.
//!
//! ```text
//! cargo run -p ppcs-bench --bin table1 --release
//! ```

use ppcs_bench::{print_row, print_rule, train_entry};
use ppcs_datasets::catalog;

fn main() {
    let widths = [14usize, 10, 10, 10, 10, 12, 6];
    println!("\nTable I — Data Classification Accuracy (synthetic analogs)\n");
    print_row(
        &[
            "dataset".into(),
            "linear %".into(),
            "paper %".into(),
            "poly %".into(),
            "paper %".into(),
            "test size".into(),
            "dims".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    for spec in catalog() {
        let entry = train_entry(&spec);
        let lin = 100.0 * entry.linear.accuracy(&entry.test);
        let poly = 100.0 * entry.poly.accuracy(&entry.test);
        print_row(
            &[
                spec.name.into(),
                format!("{lin:.2}"),
                format!("{:.2}", spec.paper_linear_pct),
                format!("{poly:.2}"),
                format!("{:.2}", spec.paper_poly_pct),
                format!("{}", spec.test_size),
                format!("{}", spec.dim),
            ],
            &widths,
        );
    }
    println!(
        "\nShape check: linear ≪ poly on splice/madelon/german.numer, \
         linear ≈ poly on a1a–a9a/ionosphere/breast-cancer, linear ≫ poly on cod-rna."
    );
}
