//! **Related-work comparison** — the paper rejects the Paillier-based
//! approach of its comparator \[15\] as "too much complexity for the
//! computations … not practical to be used in the real application".
//! This harness quantifies that claim: per-classification wall-clock and
//! traffic for the OMPE scheme (various OT engines) vs the homomorphic
//! baseline (various key sizes), same linear model, same samples.
//!
//! ```text
//! cargo run -p ppcs-bench --bin baseline_compare --release
//! ```

use std::time::Instant;

use ppcs_bench::{print_row, print_rule};
use ppcs_core::{Client, ProtocolConfig, Trainer};
use ppcs_math::FixedFpAlgebra;
use ppcs_ot::{IknpOt, NaorPinkasOt, ObliviousTransfer, TrustedSimOt};
use ppcs_paillier::{baseline_classify, baseline_serve, BaselineParams};
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use ppcs_transport::run_pair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 8;
const SAMPLES: usize = 10;

fn model_and_samples_dim(dim: usize, samples: usize) -> (SvmModel, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut ds = Dataset::new(dim);
    for k in 0..120 {
        let pos = k % 2 == 0;
        let c = if pos { 0.5 } else { -0.5 };
        ds.push(
            (0..dim).map(|_| c + rng.gen_range(-0.4..0.4)).collect(),
            if pos {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
    let samples = (0..samples)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    (model, samples)
}

fn model_and_samples() -> (SvmModel, Vec<Vec<f64>>) {
    model_and_samples_dim(DIM, SAMPLES)
}

fn run_ompe(
    model: &SvmModel,
    samples: &[Vec<f64>],
    ot: &'static dyn ObliviousTransfer,
) -> (f64, u64, Vec<Label>) {
    let n_samples = samples.len();
    let cfg = ProtocolConfig::default();
    let trainer = Trainer::new(FixedFpAlgebra::new(16), model, cfg).expect("trainer");
    let client = Client::new(FixedFpAlgebra::new(16), cfg);
    let samples = samples.to_vec();
    let start = Instant::now();
    let ((_, bytes), labels) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(2);
            let n = trainer.serve(&ep, ot, &mut rng).expect("serve");
            (n, ep.stats().total_bytes())
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(3);
            client
                .classify_batch(&ep, ot, &mut rng, &samples)
                .expect("classify")
        },
    );
    (
        start.elapsed().as_secs_f64() * 1e3 / n_samples as f64,
        bytes / n_samples as u64,
        labels,
    )
}

fn run_paillier(
    model: &SvmModel,
    samples: &[Vec<f64>],
    modulus_bits: u64,
) -> (f64, u64, Vec<Label>) {
    let n_samples = samples.len();
    let params = BaselineParams {
        modulus_bits,
        frac_bits: 16,
    };
    let model = model.clone();
    let samples = samples.to_vec();
    let start = Instant::now();
    let ((_, bytes), labels) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(4);
            let n = baseline_serve(&model, &params, &ep, &mut rng).expect("serve");
            (n, ep.stats().total_bytes())
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(5);
            baseline_classify(&params, &ep, &mut rng, &samples).expect("classify")
        },
    );
    (
        start.elapsed().as_secs_f64() * 1e3 / n_samples as f64,
        bytes / n_samples as u64,
        labels,
    )
}

fn main() {
    let (model, samples) = model_and_samples();
    let expected: Vec<Label> = samples.iter().map(|s| model.predict(s)).collect();

    println!(
        "\nOMPE scheme vs Paillier baseline [15] — {DIM}-dim linear model,\n\
         per-classification cost averaged over {SAMPLES} samples\n\
         (Paillier time includes the client's one-time key generation).\n"
    );
    let widths = [28usize, 14, 14, 10];
    print_row(
        &[
            "scheme".into(),
            "ms / sample".into(),
            "bytes / sample".into(),
            "correct".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    use std::sync::OnceLock;
    static NP2048: OnceLock<NaorPinkasOt> = OnceLock::new();
    static NP768: OnceLock<NaorPinkasOt> = OnceLock::new();
    static IKNP: OnceLock<IknpOt> = OnceLock::new();
    static SIM: TrustedSimOt = TrustedSimOt;

    let engines: Vec<(&str, &'static dyn ObliviousTransfer)> = vec![
        (
            "ompe / naor-pinkas-2048",
            NP2048.get_or_init(NaorPinkasOt::new),
        ),
        (
            "ompe / naor-pinkas-768",
            NP768.get_or_init(NaorPinkasOt::fast_insecure),
        ),
        (
            "ompe / iknp-ext-768",
            IKNP.get_or_init(IknpOt::fast_insecure),
        ),
        ("ompe / ideal-ot", &SIM),
    ];
    for (name, ot) in engines {
        let (ms, bytes, labels) = run_ompe(&model, &samples, ot);
        print_row(
            &[
                name.into(),
                format!("{ms:.2}"),
                format!("{bytes}"),
                format!("{}", labels == expected),
            ],
            &widths,
        );
    }
    for bits in [2048u64, 1024, 512] {
        let (ms, bytes, labels) = run_paillier(&model, &samples, bits);
        print_row(
            &[
                format!("paillier-{bits} [15]"),
                format!("{ms:.2}"),
                format!("{bytes}"),
                format!("{}", labels == expected),
            ],
            &widths,
        );
    }
    // Part 2: the dimension axis. Paillier pays n public-key operations
    // per sample (one encryption per feature); OMPE's oblivious-transfer
    // count is independent of n — so the comparison crosses over as
    // dimensionality grows.
    println!("\nDimension sweep (speed-tier parameters: NP-768 vs Paillier-1024):\n");
    let widths2 = [6usize, 18, 20];
    print_row(
        &[
            "dims".into(),
            "ompe ms/sample".into(),
            "paillier ms/sample".into(),
        ],
        &widths2,
    );
    print_rule(&widths2);
    for dim in [4usize, 16, 64, 123] {
        let (model, samples) = model_and_samples_dim(dim, 5);
        let (ompe_ms, _, _) = run_ompe(
            &model,
            &samples,
            NP768.get_or_init(NaorPinkasOt::fast_insecure),
        );
        let (pail_ms, _, _) = run_paillier(&model, &samples, 1024);
        print_row(
            &[
                format!("{dim}"),
                format!("{ompe_ms:.2}"),
                format!("{pail_ms:.2}"),
            ],
            &widths2,
        );
    }
    println!(
        "\nThe paper's §II claim under test: the uniform-OMPE approach avoids the\n\
         homomorphic baseline's per-feature public-key work (n encryptions + n\n\
         constant-multiplications per sample, plus key management); OMPE's OT\n\
         count depends only on the masking parameters, not on n."
    );
}
