//! # ppcs-bench
//!
//! Shared harness code for the experiment binaries (`table1`, `table2`,
//! `fig5`–`fig10`) and the Criterion benches. Each binary regenerates
//! one table or figure of the ICDCS'16 evaluation; `EXPERIMENTS.md`
//! records paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use std::time::Instant;

use ppcs_core::{Client, ProtocolConfig, Trainer};
use ppcs_datasets::{generate, DatasetSpec};
use ppcs_math::F64Algebra;
use ppcs_ot::{ObliviousTransfer, TrustedSimOt};
use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
use ppcs_transport::{drive_blocking, duplex, duplex_pool, run_pair, Driver, Transcript};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trained (linear, polynomial) model pair plus its data.
pub struct TrainedEntry {
    /// The catalog spec that produced this entry.
    pub spec: DatasetSpec,
    /// Training split.
    pub train: Dataset,
    /// Testing split.
    pub test: Dataset,
    /// Linear-kernel model.
    pub linear: SvmModel,
    /// Paper-default polynomial-kernel model (`a₀ = 1/n, b₀ = 0, p = 3`).
    pub poly: SvmModel,
}

/// Generates the analog dataset for `spec` and trains both kernels with
/// the spec's `C`.
pub fn train_entry(spec: &DatasetSpec) -> TrainedEntry {
    let data = generate(spec);
    let linear_params = SmoParams {
        c: spec.c_param,
        max_iterations: 300_000,
        ..SmoParams::default()
    };
    let poly_params = SmoParams {
        c: spec.poly_c,
        max_iterations: 300_000,
        ..SmoParams::default()
    };
    let linear = SvmModel::train(&data.train, Kernel::Linear, &linear_params);
    let poly = SvmModel::train(
        &data.train,
        Kernel::paper_polynomial(spec.dim),
        &poly_params,
    );
    TrainedEntry {
        spec: spec.clone(),
        train: data.train,
        test: data.test,
        linear,
        poly,
    }
}

/// Runs the private classification protocol over `samples` and returns
/// the labels (functional mode by default via the supplied config).
pub fn private_classify(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    seed: u64,
) -> Vec<Label> {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let samples = samples.to_vec();
    let (_, labels) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(seed);
            trainer.serve(&ep, &TrustedSimOt, &mut rng).expect("serve")
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(seed + 1);
            client
                .classify_batch(&ep, &TrustedSimOt, &mut rng, &samples)
                .expect("classify")
        },
    );
    labels
}

/// Runs the private classification protocol over `samples` spread across
/// `lanes` independent transport lanes, trainer and client each fanning
/// out one thread per lane. With `lanes == 1` this measures the batched
/// single-session path (session reuse + coalesced point clouds) without
/// parallelism.
pub fn private_classify_parallel(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    lanes: usize,
    seed: u64,
) -> Vec<Label> {
    private_classify_parallel_with_ot(model, samples, cfg, lanes, seed, &TrustedSimOt)
}

/// [`private_classify_parallel`] with an explicit OT engine, so the
/// benches can measure lane scaling under the real (CPU-heavy)
/// Naor–Pinkas transfers as well as the ideal functionality.
pub fn private_classify_parallel_with_ot(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    lanes: usize,
    seed: u64,
    ot: &dyn ObliviousTransfer,
) -> Vec<Label> {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let (trainer_eps, client_eps) = duplex_pool(lanes);
    std::thread::scope(|scope| {
        let t = scope.spawn(|| {
            trainer
                .serve_parallel(&trainer_eps, ot, seed)
                .expect("serve_parallel")
        });
        let c = scope.spawn(|| {
            client
                .classify_batch_parallel(&client_eps, ot, seed + 1000, samples)
                .expect("classify_batch_parallel")
        });
        t.join().expect("trainer thread");
        c.join().expect("client thread")
    })
}

/// Runs one private-classification session over a duplex with the
/// client's [`Driver`] recording, and returns the labels plus the
/// session [`Transcript`].
///
/// The transcript's byte accounting is asserted against the endpoint's
/// own [`TrafficStats`](ppcs_transport::TrafficStats): every wire byte
/// the client moved must be attributed to a recorded frame, so the
/// communication-volume figures derived from transcripts are exact.
pub fn recorded_classification_session(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    seed: u64,
) -> (Vec<Label>, Transcript) {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let sel = TrustedSimOt.select();
    let (ep_t, ep_c) = duplex();
    let (_, (values, transcript)) = std::thread::scope(|scope| {
        let t = scope.spawn(|| {
            let mut eng = trainer.serve_engine(sel, seed);
            drive_blocking(&ep_t, &mut eng).expect("serve")
        });
        let c = scope.spawn(|| {
            let mut driver = Driver::new().with_recording();
            let mut eng = client.classify_engine(sel, seed + 1, samples);
            let values = driver.drive(&ep_c, &mut eng).expect("classify");
            let transcript = driver.take_transcript().expect("recording enabled");
            let stats = ep_c.stats();
            assert_eq!(
                transcript.total_wire_bytes() as u64,
                stats.bytes_sent + stats.bytes_received,
                "transcript byte accounting must match the endpoint's traffic counters"
            );
            (values, transcript)
        });
        (
            t.join().expect("trainer thread"),
            c.join().expect("client thread"),
        )
    });
    let labels = values.into_iter().map(|(label, _)| label).collect();
    (labels, transcript)
}

/// Accuracy of the private protocol on (a subsample of) the test split.
///
/// `max_samples` caps the protocol runs; because private and plain
/// predictions agree sample-by-sample (asserted throughout the test
/// suite), the subsample accuracy is reported alongside the subsample
/// size.
pub fn private_accuracy(
    model: &SvmModel,
    test: &Dataset,
    max_samples: usize,
    cfg: ProtocolConfig,
    seed: u64,
) -> (f64, usize) {
    let n = test.len().min(max_samples);
    let samples: Vec<Vec<f64>> = (0..n).map(|i| test.features(i).to_vec()).collect();
    let labels = private_classify(model, &samples, cfg, seed);
    let correct = labels
        .iter()
        .zip((0..n).map(|i| test.label(i)))
        .filter(|(a, b)| **a == *b)
        .count();
    (correct as f64 / n as f64, n)
}

/// Plain accuracy on (a subsample of) the test split, matching the
/// subsampling of [`private_accuracy`] for apples-to-apples columns.
pub fn plain_accuracy(model: &SvmModel, test: &Dataset, max_samples: usize) -> f64 {
    let n = test.len().min(max_samples);
    let correct = (0..n)
        .filter(|&i| model.predict(test.features(i)) == test.label(i))
        .count();
    correct as f64 / n as f64
}

/// Wall-clock time of `f`, in milliseconds.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Times a full private-classification batch; returns (labels, ms).
pub fn time_private_batch(
    model: &SvmModel,
    samples: &[Vec<f64>],
    cfg: ProtocolConfig,
    ot: &'static dyn ObliviousTransfer,
    seed: u64,
) -> (Vec<Label>, f64) {
    let trainer = Trainer::new(F64Algebra::new(), model, cfg).expect("trainer setup");
    let client = Client::new(F64Algebra::new(), cfg);
    let samples = samples.to_vec();
    let start = Instant::now();
    let (_, labels) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(seed);
            trainer.serve(&ep, ot, &mut rng).expect("serve")
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(seed + 1);
            client
                .classify_batch(&ep, ot, &mut rng, &samples)
                .expect("classify")
        },
    );
    (labels, start.elapsed().as_secs_f64() * 1e3)
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a rule of the combined table width.
pub fn print_rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_datasets::spec_by_name;

    #[test]
    fn train_entry_produces_working_models() {
        let spec = spec_by_name("breast-cancer").unwrap();
        let entry = train_entry(&spec);
        assert!(entry.linear.accuracy(&entry.test) > 0.8);
        assert_eq!(entry.test.len(), spec.test_size);
    }

    #[test]
    fn recorded_session_bytes_match_traffic_and_labels_match_plain_path() {
        let spec = spec_by_name("diabetes").unwrap();
        let entry = train_entry(&spec);
        let cfg = ProtocolConfig::functional();
        let samples: Vec<Vec<f64>> = (0..10).map(|i| entry.test.features(i).to_vec()).collect();
        let (labels, transcript) = recorded_classification_session(&entry.linear, &samples, cfg, 5);
        // Byte-for-byte agreement with the blocking path: same seeds,
        // same frames, same labels.
        assert_eq!(labels, private_classify(&entry.linear, &samples, cfg, 5));
        assert!(transcript.total_wire_bytes() > 0);
        assert!(transcript.total_frames() > 0);
        // The transcript serializes and round-trips.
        let restored = Transcript::from_bytes(&transcript.to_bytes()).unwrap();
        assert_eq!(restored.total_wire_bytes(), transcript.total_wire_bytes());
    }

    #[test]
    fn private_accuracy_matches_plain_on_subsample() {
        let spec = spec_by_name("diabetes").unwrap();
        let entry = train_entry(&spec);
        let (private, n) = private_accuracy(
            &entry.linear,
            &entry.test,
            50,
            ProtocolConfig::functional(),
            1,
        );
        let plain = plain_accuracy(&entry.linear, &entry.test, 50);
        assert_eq!(n, 50);
        assert!((private - plain).abs() < 1e-12);
    }
}
