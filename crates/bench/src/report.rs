//! Machine-readable bench artifacts.
//!
//! The `bench_classification` / `bench_similarity` binaries emit one
//! `BENCH_<name>.json` file each, built from a telemetry
//! [`SessionReport`] plus per-iteration wall-clock latencies. The schema
//! is versioned (`"ppcs-bench/v1"`) and [`validate_bench_json`] checks
//! it structurally, so CI can assert the artifacts stay well-formed
//! without parsing them ad hoc.

use ppcs_telemetry::json::{num, obj, Json};
use ppcs_telemetry::SessionReport;

/// Schema tag every artifact carries.
pub const BENCH_SCHEMA: &str = "ppcs-bench/v1";

/// Telemetry-on vs telemetry-off wall-clock comparison for the same
/// workload, quantifying the cost of the instrumentation itself.
#[derive(Clone, Copy, Debug)]
pub struct Overhead {
    /// Total wall time with a collector installed, milliseconds.
    pub telemetry_on_ms: f64,
    /// Total wall time with no collector (spans are no-ops), ms.
    pub telemetry_off_ms: f64,
}

impl Overhead {
    /// `on / off` ratio; 1.02 means 2% overhead.
    pub fn ratio(&self) -> f64 {
        if self.telemetry_off_ms <= 0.0 {
            1.0
        } else {
            self.telemetry_on_ms / self.telemetry_off_ms
        }
    }
}

/// One bench run: the workload label, per-iteration latencies, and the
/// accumulated client-side session report.
#[derive(Debug)]
pub struct BenchArtifact {
    /// Workload name: `"classification"` or `"similarity"`.
    pub bench: String,
    /// Number of protocol sessions measured.
    pub iterations: u64,
    /// Per-iteration wall time in milliseconds (unsorted).
    pub latency_ms: Vec<f64>,
    /// The client/requester registry report accumulated over all
    /// iterations.
    pub session: SessionReport,
    /// Optional on-vs-off overhead measurement.
    pub overhead: Option<Overhead>,
}

/// The `q`-quantile of `values` (nearest-rank on a sorted copy).
pub fn quantile_ms(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

impl BenchArtifact {
    /// Renders the artifact as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mean = if self.latency_ms.is_empty() {
            0.0
        } else {
            self.latency_ms.iter().sum::<f64>() / self.latency_ms.len() as f64
        };
        let min = self
            .latency_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self.latency_ms.iter().copied().fold(0.0, f64::max);
        let mut fields = vec![
            ("schema", Json::String(BENCH_SCHEMA.into())),
            ("bench", Json::String(self.bench.clone())),
            ("iterations", num(self.iterations)),
            (
                "latency_ms",
                obj(vec![
                    ("p50", Json::Number(quantile_ms(&self.latency_ms, 0.50))),
                    ("p95", Json::Number(quantile_ms(&self.latency_ms, 0.95))),
                    ("min", Json::Number(if min.is_finite() { min } else { 0.0 })),
                    ("max", Json::Number(max)),
                    ("mean", Json::Number(mean)),
                ]),
            ),
            ("rounds", num(self.session.rounds)),
            (
                "wire",
                obj(vec![
                    ("bytes_sent", num(self.session.bytes_sent())),
                    ("bytes_received", num(self.session.bytes_received())),
                    ("frames_sent", num(self.session.frames_sent())),
                    ("frames_received", num(self.session.frames_received())),
                ]),
            ),
            (
                "session",
                Json::parse(&self.session.to_json()).expect("SessionReport emits valid JSON"),
            ),
        ];
        if let Some(o) = &self.overhead {
            fields.push((
                "overhead",
                obj(vec![
                    ("telemetry_on_ms", Json::Number(o.telemetry_on_ms)),
                    ("telemetry_off_ms", Json::Number(o.telemetry_off_ms)),
                    ("ratio", Json::Number(o.ratio())),
                ]),
            ));
        }
        obj(fields).to_string()
    }
}

fn require<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn require_u64(json: &Json, key: &str) -> Result<u64, String> {
    require(json, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn require_f64(json: &Json, key: &str) -> Result<f64, String> {
    require(json, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

/// Structurally validates a `BENCH_*.json` document.
///
/// Checks the schema tag, the latency quantile block (present, numeric,
/// ordered `min ≤ p50 ≤ p95 ≤ max`), the wire-byte block, and that the
/// embedded `session` object round-trips through
/// [`SessionReport::from_json`] — which itself enforces the full
/// per-phase / per-kind report shape.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = require(&json, "schema")?
        .as_str()
        .ok_or("schema tag must be a string")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?}, expected {BENCH_SCHEMA:?}"
        ));
    }
    let bench = require(&json, "bench")?
        .as_str()
        .ok_or("bench name must be a string")?;
    if bench.is_empty() {
        return Err("bench name must be non-empty".into());
    }
    let iterations = require_u64(&json, "iterations")?;
    if iterations == 0 {
        return Err("iterations must be >= 1".into());
    }

    let latency = require(&json, "latency_ms")?;
    let p50 = require_f64(latency, "p50")?;
    let p95 = require_f64(latency, "p95")?;
    let min = require_f64(latency, "min")?;
    let max = require_f64(latency, "max")?;
    require_f64(latency, "mean")?;
    if !(min <= p50 && p50 <= p95 && p95 <= max) {
        return Err(format!(
            "latency quantiles out of order: min={min} p50={p50} p95={p95} max={max}"
        ));
    }

    require_u64(&json, "rounds")?;
    let wire = require(&json, "wire")?;
    let bytes_sent = require_u64(wire, "bytes_sent")?;
    let bytes_received = require_u64(wire, "bytes_received")?;
    require_u64(wire, "frames_sent")?;
    require_u64(wire, "frames_received")?;

    let session = require(&json, "session")?;
    let report = SessionReport::from_json(&session.to_string())
        .map_err(|e| format!("embedded session report is malformed: {e}"))?;
    if report.bytes_sent() != bytes_sent || report.bytes_received() != bytes_received {
        return Err(format!(
            "wire summary disagrees with session report: \
             summary sent/recv {bytes_sent}/{bytes_received}, \
             report {}/{}",
            report.bytes_sent(),
            report.bytes_received()
        ));
    }

    if let Some(overhead) = json.get("overhead") {
        require_f64(overhead, "telemetry_on_ms")?;
        require_f64(overhead, "telemetry_off_ms")?;
        require_f64(overhead, "ratio")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_telemetry::{MetricsRegistry, Phase, WireDir};

    fn sample_artifact() -> BenchArtifact {
        let reg = MetricsRegistry::new(1, "client");
        reg.record_rounds(3);
        reg.record_phase_ns(Phase::Classify, 1_000_000);
        reg.record_wire(0x0500, WireDir::Sent, 2, 128);
        reg.record_wire(0x0501, WireDir::Received, 2, 256);
        BenchArtifact {
            bench: "classification".into(),
            iterations: 4,
            latency_ms: vec![2.0, 1.0, 4.0, 3.0],
            session: reg.report(),
            overhead: Some(Overhead {
                telemetry_on_ms: 10.1,
                telemetry_off_ms: 10.0,
            }),
        }
    }

    #[test]
    fn artifact_json_passes_its_own_validator() {
        let text = sample_artifact().to_json();
        validate_bench_json(&text).unwrap();
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_ms(&v, 0.50), 2.0);
        assert_eq!(quantile_ms(&v, 0.95), 4.0);
        assert_eq!(quantile_ms(&v, 0.0), 1.0);
    }

    #[test]
    fn validator_rejects_missing_and_inconsistent_fields() {
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json("not json").is_err());

        // Flip the schema tag.
        let good = sample_artifact().to_json();
        let bad = good.replace("ppcs-bench/v1", "ppcs-bench/v0");
        assert!(validate_bench_json(&bad).unwrap_err().contains("schema"));

        // Break the wire-vs-session consistency check. The `wire` summary
        // block precedes the embedded `session`, so replacing only the
        // first occurrence desynchronizes the two.
        let bad = good.replacen("\"bytes_sent\":128", "\"bytes_sent\":129", 1);
        assert!(validate_bench_json(&bad).unwrap_err().contains("disagrees"));
    }
}
