//! Machine-readable bench artifacts.
//!
//! The `bench_classification` / `bench_similarity` / `bench_serving`
//! binaries emit one `BENCH_<name>.json` file each, built from a
//! telemetry [`SessionReport`] plus per-iteration wall-clock latencies.
//! The schema is versioned (`"ppcs-bench/v3"`, which added the optional
//! online-phase latency block; v1/v2 documents still validate and
//! compare) and [`validate_bench_json`] checks it structurally, so CI
//! can assert the artifacts stay well-formed without parsing them ad
//! hoc.

use ppcs_telemetry::json::{num, obj, Json};
use ppcs_telemetry::SessionReport;

/// Schema tag every artifact carries. v2 added the optional `reactor`
/// block (loop-lag / event-batch / drift quantiles); v3 added the
/// optional `latency_online_ms` block (online-phase-only latency over
/// precomputed offline material and a warm session).
pub const BENCH_SCHEMA: &str = "ppcs-bench/v3";

/// The v2 schema tag, still accepted by the validator and the baseline
/// side of [`compare_bench_json`] so committed v2 baselines keep gating
/// fresh v3 runs.
pub const BENCH_SCHEMA_V2: &str = "ppcs-bench/v2";

/// The original schema tag, accepted for the same reason.
pub const BENCH_SCHEMA_V1: &str = "ppcs-bench/v1";

/// Telemetry-on vs telemetry-off wall-clock comparison for the same
/// workload, quantifying the cost of the instrumentation itself.
#[derive(Clone, Copy, Debug)]
pub struct Overhead {
    /// Total wall time with a collector installed, milliseconds.
    pub telemetry_on_ms: f64,
    /// Total wall time with no collector (spans are no-ops), ms.
    pub telemetry_off_ms: f64,
}

impl Overhead {
    /// `on / off` ratio; 1.02 means 2% overhead.
    pub fn ratio(&self) -> f64 {
        if self.telemetry_off_ms <= 0.0 {
            1.0
        } else {
            self.telemetry_on_ms / self.telemetry_off_ms
        }
    }
}

/// One bench run: the workload label, per-iteration latencies, and the
/// accumulated client-side session report.
#[derive(Debug)]
pub struct BenchArtifact {
    /// Workload name: `"classification"` or `"similarity"`.
    pub bench: String,
    /// Number of protocol sessions measured.
    pub iterations: u64,
    /// Per-iteration wall time in milliseconds (unsorted).
    pub latency_ms: Vec<f64>,
    /// Per-iteration wall time of the *online phase only* — the same
    /// workload with all input-independent material precomputed outside
    /// the timed region and the session handshake warm. `None` when the
    /// bench did not measure a phase split (v3 block is omitted).
    pub latency_online_ms: Option<Vec<f64>>,
    /// The client/requester registry report accumulated over all
    /// iterations.
    pub session: SessionReport,
    /// Optional on-vs-off overhead measurement.
    pub overhead: Option<Overhead>,
}

/// The `q`-quantile of `values` (nearest-rank on a sorted copy).
pub fn quantile_ms(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// The p50/p95/min/max/mean summary block for one latency series.
fn latency_block(values: &[f64]) -> Json {
    let mean = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    };
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0, f64::max);
    obj(vec![
        ("p50", Json::Number(quantile_ms(values, 0.50))),
        ("p95", Json::Number(quantile_ms(values, 0.95))),
        ("min", Json::Number(if min.is_finite() { min } else { 0.0 })),
        ("max", Json::Number(max)),
        ("mean", Json::Number(mean)),
    ])
}

impl BenchArtifact {
    /// Renders the artifact as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema", Json::String(BENCH_SCHEMA.into())),
            ("bench", Json::String(self.bench.clone())),
            ("iterations", num(self.iterations)),
            ("latency_ms", latency_block(&self.latency_ms)),
            ("rounds", num(self.session.rounds)),
            (
                "wire",
                obj(vec![
                    ("bytes_sent", num(self.session.bytes_sent())),
                    ("bytes_received", num(self.session.bytes_received())),
                    ("frames_sent", num(self.session.frames_sent())),
                    ("frames_received", num(self.session.frames_received())),
                ]),
            ),
            (
                "session",
                Json::parse(&self.session.to_json()).expect("SessionReport emits valid JSON"),
            ),
        ];
        if let Some(online) = &self.latency_online_ms {
            // Online-phase-only latencies (v3): emitted right after the
            // end-to-end block so the two read side by side.
            fields.insert(4, ("latency_online_ms", latency_block(online)));
        }
        if !self.session.reactor_health.is_empty() {
            // Reactor-health quantiles (v2): one entry per recorded
            // metric, e.g. loop_lag_ns / event_batch / timer_drift_ns.
            fields.push((
                "reactor",
                obj(self
                    .session
                    .reactor_health
                    .iter()
                    .map(|h| {
                        (
                            h.name.as_str(),
                            obj(vec![
                                ("count", num(h.count)),
                                ("p50", num(h.p50)),
                                ("p95", num(h.p95)),
                                ("max", num(h.max)),
                            ]),
                        )
                    })
                    .collect()),
            ));
        }
        if let Some(o) = &self.overhead {
            fields.push((
                "overhead",
                obj(vec![
                    ("telemetry_on_ms", Json::Number(o.telemetry_on_ms)),
                    ("telemetry_off_ms", Json::Number(o.telemetry_off_ms)),
                    ("ratio", Json::Number(o.ratio())),
                ]),
            ));
        }
        obj(fields).to_string()
    }
}

fn require<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn require_u64(json: &Json, key: &str) -> Result<u64, String> {
    require(json, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn require_f64(json: &Json, key: &str) -> Result<f64, String> {
    require(json, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

/// Structurally validates a `BENCH_*.json` document.
///
/// Checks the schema tag, the latency quantile block (present, numeric,
/// ordered `min ≤ p50 ≤ p95 ≤ max`), the wire-byte block, and that the
/// embedded `session` object round-trips through
/// [`SessionReport::from_json`] — which itself enforces the full
/// per-phase / per-kind report shape.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = require(&json, "schema")?
        .as_str()
        .ok_or("schema tag must be a string")?;
    if schema != BENCH_SCHEMA && schema != BENCH_SCHEMA_V2 && schema != BENCH_SCHEMA_V1 {
        return Err(format!(
            "unknown schema {schema:?}, expected {BENCH_SCHEMA:?} \
             (or legacy {BENCH_SCHEMA_V2:?} / {BENCH_SCHEMA_V1:?})"
        ));
    }
    let bench = require(&json, "bench")?
        .as_str()
        .ok_or("bench name must be a string")?;
    if bench.is_empty() {
        return Err("bench name must be non-empty".into());
    }
    let iterations = require_u64(&json, "iterations")?;
    if iterations == 0 {
        return Err("iterations must be >= 1".into());
    }

    let check_latency_block = |block: &Json, name: &str| -> Result<(), String> {
        let p50 = require_f64(block, "p50")?;
        let p95 = require_f64(block, "p95")?;
        let min = require_f64(block, "min")?;
        let max = require_f64(block, "max")?;
        require_f64(block, "mean")?;
        if !(min <= p50 && p50 <= p95 && p95 <= max) {
            return Err(format!(
                "{name} quantiles out of order: min={min} p50={p50} p95={p95} max={max}"
            ));
        }
        Ok(())
    };
    check_latency_block(require(&json, "latency_ms")?, "latency")?;
    if let Some(online) = json.get("latency_online_ms") {
        // Optional v3 block: online-phase-only latency over precomputed
        // material. Same shape and ordering rules as the e2e block.
        check_latency_block(online, "online latency")?;
    }

    require_u64(&json, "rounds")?;
    let wire = require(&json, "wire")?;
    let bytes_sent = require_u64(wire, "bytes_sent")?;
    let bytes_received = require_u64(wire, "bytes_received")?;
    require_u64(wire, "frames_sent")?;
    require_u64(wire, "frames_received")?;

    let session = require(&json, "session")?;
    let report = SessionReport::from_json(&session.to_string())
        .map_err(|e| format!("embedded session report is malformed: {e}"))?;
    if report.bytes_sent() != bytes_sent || report.bytes_received() != bytes_received {
        return Err(format!(
            "wire summary disagrees with session report: \
             summary sent/recv {bytes_sent}/{bytes_received}, \
             report {}/{}",
            report.bytes_sent(),
            report.bytes_received()
        ));
    }

    if let Some(reactor) = json.get("reactor") {
        let entries = reactor
            .as_object()
            .ok_or("reactor block must be an object")?;
        for (name, entry) in entries {
            require_u64(entry, "count").map_err(|e| format!("reactor {name:?}: {e}"))?;
            let p50 = require_u64(entry, "p50").map_err(|e| format!("reactor {name:?}: {e}"))?;
            let p95 = require_u64(entry, "p95").map_err(|e| format!("reactor {name:?}: {e}"))?;
            if p50 > p95 {
                return Err(format!(
                    "reactor {name:?} quantiles out of order: p50={p50} p95={p95}"
                ));
            }
        }
    }

    if let Some(overhead) = json.get("overhead") {
        require_f64(overhead, "telemetry_on_ms")?;
        require_f64(overhead, "telemetry_off_ms")?;
        require_f64(overhead, "ratio")?;
    }
    Ok(())
}

/// Compares a fresh bench artifact against a committed baseline and
/// decides whether the run regressed.
///
/// Two gates, mirroring the CI perf policy:
///
/// * **Latency**: the fresh p50 must satisfy
///   `fresh_p50 <= baseline_p50 * (1 + p50_tol)`. Quantiles above p50
///   are too noisy on shared runners to gate on.
/// * **Online-phase latency**: when *both* artifacts carry the v3
///   `latency_online_ms` block, the fresh online p50 is gated exactly
///   like the end-to-end p50. A baseline without the block gates only
///   end-to-end latency (a fresh run cannot lose a gate by being the
///   first to measure the phase split).
/// * **Wire bytes**: total bytes on the wire (sent + received),
///   normalized *per iteration*, must not grow at all. Each bench
///   iteration is a complete protocol session, so wire traffic scales
///   linearly with the iteration count and the baseline and fresh runs
///   may use different counts. The comparison cross-multiplies in
///   integers (`fresh_bytes * baseline_iters <= baseline_bytes *
///   fresh_iters`), so it is exact — protocol traffic is deterministic
///   per session and any growth is a real wire-format regression.
///
/// Both documents are structurally validated first and must describe
/// the same workload (`bench` name).
///
/// # Errors
///
/// A human-readable description of every gate that failed, or of the
/// first structural problem.
pub fn compare_bench_json(baseline: &str, fresh: &str, p50_tol: f64) -> Result<String, String> {
    validate_bench_json(baseline).map_err(|e| format!("baseline artifact invalid: {e}"))?;
    validate_bench_json(fresh).map_err(|e| format!("fresh artifact invalid: {e}"))?;
    if !(0.0..=10.0).contains(&p50_tol) {
        return Err(format!("p50 tolerance {p50_tol} out of range [0, 10]"));
    }

    let base = Json::parse(baseline).expect("validated above");
    let new = Json::parse(fresh).expect("validated above");

    let base_bench = require(&base, "bench")?.as_str().expect("validated");
    let new_bench = require(&new, "bench")?.as_str().expect("validated");
    if base_bench != new_bench {
        return Err(format!(
            "bench mismatch: baseline is {base_bench:?}, fresh is {new_bench:?}"
        ));
    }

    let wire_total = |doc: &Json| -> u64 {
        let wire = doc.get("wire").expect("validated");
        wire.get("bytes_sent")
            .and_then(|j| j.as_u64())
            .expect("validated")
            + wire
                .get("bytes_received")
                .and_then(|j| j.as_u64())
                .expect("validated")
    };
    let p50_of = |doc: &Json| -> f64 {
        doc.get("latency_ms")
            .and_then(|l| l.get("p50"))
            .and_then(|j| j.as_f64())
            .expect("validated")
    };

    let base_iters = require_u64(&base, "iterations")?;
    let new_iters = require_u64(&new, "iterations")?;
    let base_p50 = p50_of(&base);
    let new_p50 = p50_of(&new);
    let base_bytes = wire_total(&base);
    let new_bytes = wire_total(&new);
    let base_bpi = base_bytes as f64 / base_iters as f64;
    let new_bpi = new_bytes as f64 / new_iters as f64;

    let online_p50_of = |doc: &Json| -> Option<f64> {
        doc.get("latency_online_ms")
            .and_then(|l| l.get("p50"))
            .and_then(|j| j.as_f64())
    };

    let mut failures = Vec::new();
    let p50_limit = base_p50 * (1.0 + p50_tol);
    if new_p50 > p50_limit {
        failures.push(format!(
            "p50 regression: {new_p50:.3} ms > limit {p50_limit:.3} ms \
             (baseline {base_p50:.3} ms, tolerance {:.0}%)",
            p50_tol * 100.0
        ));
    }
    let mut online_note = String::new();
    if let (Some(base_online), Some(new_online)) = (online_p50_of(&base), online_p50_of(&new)) {
        let online_limit = base_online * (1.0 + p50_tol);
        if new_online > online_limit {
            failures.push(format!(
                "online-phase p50 regression: {new_online:.3} ms > limit {online_limit:.3} ms \
                 (baseline {base_online:.3} ms, tolerance {:.0}%)",
                p50_tol * 100.0
            ));
        } else {
            online_note = format!(
                "; online p50 {new_online:.3} ms vs baseline {base_online:.3} ms \
                 (limit {online_limit:.3} ms)"
            );
        }
    }
    // Exact per-iteration comparison via integer cross-multiplication.
    if (new_bytes as u128) * (base_iters as u128) > (base_bytes as u128) * (new_iters as u128) {
        failures.push(format!(
            "wire growth: {new_bpi:.1} bytes/iter > baseline {base_bpi:.1} bytes/iter"
        ));
    }

    if failures.is_empty() {
        Ok(format!(
            "{base_bench}: p50 {new_p50:.3} ms vs baseline {base_p50:.3} ms \
             (limit {p50_limit:.3} ms){online_note}; wire {new_bpi:.1} bytes/iter vs \
             baseline {base_bpi:.1} bytes/iter — OK"
        ))
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_telemetry::{MetricsRegistry, Phase, WireDir};

    fn sample_artifact() -> BenchArtifact {
        let reg = MetricsRegistry::new(1, "client");
        reg.record_rounds(3);
        reg.record_phase_ns(Phase::Classify, 1_000_000);
        reg.record_wire(0x0500, WireDir::Sent, 2, 128);
        reg.record_wire(0x0501, WireDir::Received, 2, 256);
        BenchArtifact {
            bench: "classification".into(),
            iterations: 4,
            latency_ms: vec![2.0, 1.0, 4.0, 3.0],
            latency_online_ms: Some(vec![0.2, 0.1, 0.4, 0.3]),
            session: reg.report(),
            overhead: Some(Overhead {
                telemetry_on_ms: 10.1,
                telemetry_off_ms: 10.0,
            }),
        }
    }

    #[test]
    fn artifact_json_passes_its_own_validator() {
        let text = sample_artifact().to_json();
        validate_bench_json(&text).unwrap();
    }

    #[test]
    fn legacy_v1_and_v2_documents_still_validate_and_gate() {
        let v3 = sample_artifact().to_json();
        for legacy_tag in [BENCH_SCHEMA_V1, BENCH_SCHEMA_V2] {
            let legacy = v3.replace(BENCH_SCHEMA, legacy_tag);
            validate_bench_json(&legacy).unwrap();
            // A committed legacy baseline gates a fresh v3 run.
            compare_bench_json(&legacy, &v3, 0.15).unwrap();
        }
    }

    #[test]
    fn reactor_health_lands_in_the_artifact_and_is_checked() {
        use ppcs_telemetry::ReactorMetric;
        let reg = MetricsRegistry::new(1, "trainer-server");
        reg.record_rounds(1);
        reg.record_wire(0x0500, WireDir::Sent, 1, 64);
        reg.record_reactor(ReactorMetric::LoopLagNs, 1_000);
        reg.record_reactor(ReactorMetric::EventBatch, 8);
        let artifact = BenchArtifact {
            bench: "serving".into(),
            iterations: 1,
            latency_ms: vec![5.0],
            latency_online_ms: None,
            session: reg.report(),
            overhead: None,
        };
        let text = artifact.to_json();
        validate_bench_json(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        let reactor = doc.get("reactor").expect("reactor block present");
        let lag = reactor.get("loop_lag_ns").expect("loop lag entry");
        assert_eq!(lag.get("count").and_then(Json::as_u64), Some(1));
        assert!(reactor.get("event_batch").is_some());
        // Disordered quantiles are rejected.
        let bad = text.replace(
            "\"reactor\":{",
            "\"reactor\":{\"x\":{\"count\":1,\"p50\":9,\"p95\":1},",
        );
        assert!(validate_bench_json(&bad)
            .unwrap_err()
            .contains("out of order"));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_ms(&v, 0.50), 2.0);
        assert_eq!(quantile_ms(&v, 0.95), 4.0);
        assert_eq!(quantile_ms(&v, 0.0), 1.0);
    }

    #[test]
    fn validator_rejects_missing_and_inconsistent_fields() {
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json("not json").is_err());

        // Flip the schema tag.
        let good = sample_artifact().to_json();
        let bad = good.replace(BENCH_SCHEMA, "ppcs-bench/v0");
        assert!(validate_bench_json(&bad).unwrap_err().contains("schema"));

        // Break the wire-vs-session consistency check. The `wire` summary
        // block precedes the embedded `session`, so replacing only the
        // first occurrence desynchronizes the two.
        let bad = good.replacen("\"bytes_sent\":128", "\"bytes_sent\":129", 1);
        assert!(validate_bench_json(&bad).unwrap_err().contains("disagrees"));
    }

    /// Artifact with a given iteration count, a flat latency profile at
    /// `lat_ms`, and `sent`/`recv` wire bytes in one message kind each.
    fn artifact_with(iterations: u64, lat_ms: f64, sent: u64, recv: u64) -> BenchArtifact {
        let reg = MetricsRegistry::new(1, "client");
        reg.record_rounds(3);
        reg.record_phase_ns(Phase::Classify, 1_000_000);
        reg.record_wire(0x0500, WireDir::Sent, 2, sent);
        reg.record_wire(0x0501, WireDir::Received, 2, recv);
        BenchArtifact {
            bench: "classification".into(),
            iterations,
            latency_ms: vec![lat_ms; iterations as usize],
            latency_online_ms: None,
            session: reg.report(),
            overhead: None,
        }
    }

    /// [`artifact_with`] plus a flat online-phase latency profile.
    fn artifact_with_online(iterations: u64, lat_ms: f64, online_ms: f64) -> BenchArtifact {
        let mut a = artifact_with(iterations, lat_ms, 1000, 2000);
        a.latency_online_ms = Some(vec![online_ms; iterations as usize]);
        a
    }

    #[test]
    fn compare_gates_the_online_phase_when_both_measure_it() {
        let base = artifact_with_online(4, 10.0, 1.0).to_json();
        // Online within tolerance passes and is reported.
        let ok = artifact_with_online(4, 10.0, 1.1).to_json();
        let msg = compare_bench_json(&base, &ok, 0.15).unwrap();
        assert!(msg.contains("online p50"), "{msg}");
        // Online regression fails even with e2e p50 flat.
        let slow = artifact_with_online(4, 10.0, 1.3).to_json();
        let err = compare_bench_json(&base, &slow, 0.15).unwrap_err();
        assert!(err.contains("online-phase p50 regression"), "{err}");
        // A baseline without the block never gates the online phase.
        let v2_base = artifact_with(4, 10.0, 1000, 2000).to_json();
        compare_bench_json(&v2_base, &slow, 0.15).unwrap();
        // A disordered online block is rejected structurally.
        let mut bad = artifact_with_online(4, 10.0, 1.0);
        bad.latency_online_ms = Some(vec![1.0, 2.0]);
        let text = bad.to_json().replace(
            "\"latency_online_ms\":{\"p50\":1",
            "\"latency_online_ms\":{\"p50\":9",
        );
        assert!(validate_bench_json(&text)
            .unwrap_err()
            .contains("online latency quantiles out of order"));
    }

    #[test]
    fn compare_accepts_within_tolerance_and_improvements() {
        let base = artifact_with(4, 10.0, 1000, 2000).to_json();
        // 14% slower: inside the 15% gate.
        let ok = artifact_with(4, 11.4, 1000, 2000).to_json();
        let msg = compare_bench_json(&base, &ok, 0.15).unwrap();
        assert!(msg.contains("OK"), "{msg}");
        // Outright faster and lighter is fine too.
        let better = artifact_with(4, 6.0, 900, 1800).to_json();
        compare_bench_json(&base, &better, 0.15).unwrap();
    }

    #[test]
    fn compare_rejects_p50_and_byte_regressions() {
        let base = artifact_with(4, 10.0, 1000, 2000).to_json();
        let slow = artifact_with(4, 11.6, 1000, 2000).to_json();
        let err = compare_bench_json(&base, &slow, 0.15).unwrap_err();
        assert!(err.contains("p50 regression"), "{err}");

        let fat = artifact_with(4, 10.0, 1001, 2000).to_json();
        let err = compare_bench_json(&base, &fat, 0.15).unwrap_err();
        assert!(err.contains("wire growth"), "{err}");
    }

    #[test]
    fn compare_normalizes_wire_bytes_per_iteration() {
        // Baseline ran 4 sessions; fresh ran 2 with exactly half the
        // total traffic — identical per-iteration cost, so it passes.
        let base = artifact_with(4, 10.0, 1000, 2000).to_json();
        let fresh = artifact_with(2, 10.0, 500, 1000).to_json();
        compare_bench_json(&base, &fresh, 0.15).unwrap();
        // One extra byte per the same 2 iterations fails.
        let fresh = artifact_with(2, 10.0, 501, 1000).to_json();
        assert!(compare_bench_json(&base, &fresh, 0.15).is_err());
    }

    #[test]
    fn compare_rejects_mismatched_workloads_and_bad_inputs() {
        let base = artifact_with(4, 10.0, 1000, 2000).to_json();
        let mut other = artifact_with(4, 10.0, 1000, 2000);
        other.bench = "similarity".into();
        let err = compare_bench_json(&base, &other.to_json(), 0.15).unwrap_err();
        assert!(err.contains("bench mismatch"), "{err}");
        assert!(compare_bench_json("{}", &base, 0.15)
            .unwrap_err()
            .contains("baseline artifact invalid"));
        assert!(compare_bench_json(&base, "{}", 0.15)
            .unwrap_err()
            .contains("fresh artifact invalid"));
        assert!(compare_bench_json(&base, &base, -0.1).is_err());
    }
}
