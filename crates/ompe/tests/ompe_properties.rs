//! Property tests for OMPE: correctness must hold for arbitrary secret
//! polynomials, inputs, and parameter choices.

use ppcs_math::{Algebra, F64Algebra, FixedFpAlgebra, MvPolynomial};
use ppcs_ompe::{ompe_receive, ompe_send, OmpeParams};
use ppcs_ot::TrustedSimOt;
use ppcs_transport::run_pair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

static SIM: TrustedSimOt = TrustedSimOt;

fn run_f64(
    weights: Vec<f64>,
    bias: f64,
    alpha: Vec<f64>,
    sigma: usize,
    decoys: usize,
    seed: u64,
) -> f64 {
    let alg = F64Algebra::new();
    let secret = MvPolynomial::affine(&alg, &weights, bias);
    let params = OmpeParams::new(1, sigma, decoys).expect("valid params");
    let (send, value) = run_pair(
        move |ep| {
            let mut rng = StdRng::seed_from_u64(seed);
            ompe_send(&F64Algebra::new(), &ep, &SIM, &mut rng, &secret, &params)
        },
        move |ep| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5555);
            ompe_receive(&F64Algebra::new(), &ep, &SIM, &mut rng, &alpha, &params)
        },
    );
    send.expect("send");
    value.expect("receive")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn affine_ompe_is_correct_over_f64(
        weights in prop::collection::vec(-3.0f64..3.0, 1..6),
        bias in -2.0f64..2.0,
        alpha_raw in prop::collection::vec(-1.0f64..1.0, 6),
        sigma in 1usize..5,
        decoys in 1usize..4,
        seed in 0u64..1000,
    ) {
        let alpha = alpha_raw[..weights.len()].to_vec();
        let want: f64 = weights.iter().zip(&alpha).map(|(w, a)| w * a).sum::<f64>() + bias;
        let got = run_f64(weights, bias, alpha, sigma, decoys, seed);
        prop_assert!(
            (got - want).abs() < 1e-5 * want.abs().max(1.0),
            "got {got}, want {want}"
        );
    }

    #[test]
    fn affine_ompe_is_exact_over_fixed_point(
        weights in prop::collection::vec(-3.0f64..3.0, 1..5),
        bias in -2.0f64..2.0,
        alpha_raw in prop::collection::vec(-1.0f64..1.0, 5),
        seed in 0u64..1000,
    ) {
        let alg = FixedFpAlgebra::new(16);
        let alpha: Vec<f64> = alpha_raw[..weights.len()].to_vec();
        let want: f64 = weights.iter().zip(&alpha).map(|(w, a)| w * a).sum::<f64>() + bias;

        let enc_weights: Vec<_> = weights.iter().map(|w| alg.encode(*w, 1)).collect();
        let secret = MvPolynomial::affine(&alg, &enc_weights, alg.encode(bias, 2));
        let enc_alpha: Vec<_> = alpha.iter().map(|a| alg.encode(*a, 1)).collect();
        let params = OmpeParams::new(1, 3, 2).expect("valid params");

        let (send, value) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed);
                ompe_send(&FixedFpAlgebra::new(16), &ep, &SIM, &mut rng, &secret, &params)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xAAAA);
                ompe_receive(&FixedFpAlgebra::new(16), &ep, &SIM, &mut rng, &enc_alpha, &params)
            },
        );
        send.expect("send");
        let got = alg.decode(&value.expect("receive"), 2);
        // Quantization error only: inputs and weights each quantized at
        // 2^-16, products bounded by dim · 3 · 2^-16 · 2.
        prop_assert!(
            (got - want).abs() < 1e-3,
            "got {got}, want {want}"
        );
    }

    #[test]
    fn quadratic_two_variate_ompe(
        c0 in -1.0f64..1.0,
        c1 in -1.0f64..1.0,
        c2 in -1.0f64..1.0,
        x in -1.0f64..1.0,
        y in -1.0f64..1.0,
        seed in 0u64..500,
    ) {
        // P(x, y) = c2·x·y + c1·x + c0
        let alg = F64Algebra::new();
        let secret = MvPolynomial::from_terms(
            2,
            vec![(c2, vec![1, 1]), (c1, vec![1, 0]), (c0, vec![0, 0])],
        );
        let want = c2 * x * y + c1 * x + c0;
        let params = OmpeParams::new(2, 2, 2).expect("valid params");
        let alpha = vec![x, y];
        let (send, value) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed);
                ompe_send(&F64Algebra::new(), &ep, &SIM, &mut rng, &secret, &params)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
                ompe_receive(&F64Algebra::new(), &ep, &SIM, &mut rng, &alpha, &params)
            },
        );
        send.expect("send");
        let got = value.expect("receive");
        prop_assert!(
            (got - want).abs() < 1e-5,
            "got {got}, want {want}"
        );
        let _ = alg;
    }
}
