//! Batch OMPE sessions: per-batch state reuse and coalesced transport.
//!
//! A classification batch runs one OMPE round per sample over the same
//! channel and parameter set. The session types here hoist everything a
//! round does not need to redo out of the per-round loop:
//!
//! * the sender's masking-polynomial storage is allocated once and
//!   refreshed in place each round (fresh randomness, no reallocation);
//! * the receiver's cover-polynomial storage is reused the same way;
//! * the OT engine's base-phase material (the Naor–Pinkas commitment
//!   `C = g^c`) is drawn and transmitted once per batch instead of once
//!   per base transfer;
//! * the receiver's point clouds for a whole batch travel in a single
//!   coalesced frame — one framed write instead of one per round.
//!
//! The role logic lives in the `*_io` methods, written sans-I/O against a
//! [`FrameIo`] mailbox and an [`OtSelect`] engine selector — no
//! `Endpoint` appears in their signatures, so any driver (in-memory,
//! TCP, transcript replay) can pump them. The blocking methods and
//! [`ompe_send_batch`] / [`ompe_receive_batch`] are thin wrappers that
//! drive the same logic over an `Endpoint`; the single-round entry
//! points in [`crate::protocol`] wrap one-round sessions with no batch
//! state.

use std::collections::VecDeque;

use bytes::{Bytes, BytesMut};
use ppcs_math::{interp_batch, interpolate_at_zero, Algebra, PolyEval, Polynomial};
use ppcs_ot::{ot_begin_receive_io, ot_begin_send_io, ot_begin_send_precomputed_io};
use ppcs_ot::{ot_receive_io, ot_send_io};
use ppcs_ot::{ObliviousTransfer, OtBatchState, OtSelect};
use ppcs_telemetry::Phase;
use ppcs_transport::{
    decode_seq, drive_blocking, encode_seq, Encodable, Endpoint, Frame, FrameIo, ProtocolEngine,
};
use rand::seq::index::sample;
use rand::RngCore;

use crate::error::OmpeError;
use crate::offline::{params_fingerprint, OmpeSenderOffline};
use crate::protocol::{OmpeParams, KIND_OMPE_POINTS};

fn encode_elems<E: Encodable>(elems: &[E]) -> Bytes {
    let mut out = BytesMut::new();
    encode_seq(elems, &mut out);
    out.freeze()
}

/// One received point cloud: the `N` abscissae and the `N·r` flattened
/// input coordinates (row-major).
pub(crate) type PointCloud<A> = (Vec<<A as Algebra>::Elem>, Vec<<A as Algebra>::Elem>);

/// Sender-side batch session: owns the per-batch state reused by every
/// [`send_round`](OmpeSenderSession::send_round).
#[derive(Debug)]
pub struct OmpeSenderSession<A: Algebra> {
    params: OmpeParams,
    /// Masking-polynomial storage, refreshed in place each round.
    mask: Polynomial<A>,
    /// Masking polynomials drawn offline; each round consumes one before
    /// falling back to an inline refresh.
    prepared_masks: VecDeque<Polynomial<A>>,
    ot_state: OtBatchState,
}

impl<A> OmpeSenderSession<A>
where
    A: Algebra,
    A::Elem: Encodable,
{
    /// Sets up the per-batch state: masking-polynomial storage plus the
    /// OT engine's base-phase material (transmitted to the peer, which
    /// must construct an [`OmpeReceiverSession`] symmetrically).
    ///
    /// # Errors
    ///
    /// Transport failures during the OT base phase.
    pub fn new(
        ep: &Endpoint,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        params: OmpeParams,
    ) -> Result<Self, OmpeError> {
        let sel = ot.select();
        let mut engine =
            ProtocolEngine::new(|io| async move { Self::new_io(&io, sel, rng, params).await });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O variant of [`new`](OmpeSenderSession::new): sets up the
    /// per-batch state over a [`FrameIo`] mailbox.
    ///
    /// # Errors
    ///
    /// Transport failures during the OT base phase.
    pub async fn new_io(
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        params: OmpeParams,
    ) -> Result<Self, OmpeError> {
        let ot_state = ot_begin_send_io(sel, io, rng).await?;
        Ok(Self {
            params,
            mask: Polynomial::zero(),
            prepared_masks: VecDeque::new(),
            ot_state,
        })
    }

    /// Sets up the per-batch state from precomputed offline material: the
    /// OT base-phase commitment goes out without a single exponentiation
    /// and the offline masking polynomials are moved into the session,
    /// where each round consumes one before falling back to an inline
    /// refresh. Synchronous — the offline split leaves the sender's base
    /// phase with nothing to await.
    ///
    /// # Errors
    ///
    /// [`OmpeError::ConfigMismatch`] if `offline` was produced under a
    /// different OT engine, group, or parameter set; transport failures.
    pub fn new_precomputed_io(
        io: &FrameIo,
        sel: OtSelect,
        params: OmpeParams,
        offline: OmpeSenderOffline<A>,
    ) -> Result<Self, OmpeError> {
        let expected = params_fingerprint(sel, &params);
        if offline.fingerprint != expected {
            return Err(OmpeError::ConfigMismatch {
                expected,
                actual: offline.fingerprint,
            });
        }
        let ot_state = ot_begin_send_precomputed_io(sel, io, &offline.commitment)?;
        Ok(Self {
            params,
            mask: Polynomial::zero(),
            prepared_masks: offline.masks,
            ot_state,
        })
    }

    /// A one-round session with no batch state; backs the single-shot
    /// [`ompe_send`](crate::protocol::ompe_send).
    pub(crate) fn single_shot(params: OmpeParams) -> Self {
        Self {
            params,
            mask: Polynomial::zero(),
            prepared_masks: VecDeque::new(),
            ot_state: OtBatchState::default(),
        }
    }

    /// Obliviously evaluates `secret` on the receiver's next hidden
    /// input (one OMPE round within the batch).
    ///
    /// # Errors
    ///
    /// [`OmpeError::SecretMismatch`] if `secret` exceeds the agreed
    /// degree bound, plus transport/OT/protocol failures.
    pub fn send_round<P>(
        &mut self,
        alg: &A,
        ep: &Endpoint,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        secret: &P,
    ) -> Result<(), OmpeError>
    where
        P: PolyEval<A> + ?Sized,
    {
        let sel = ot.select();
        let mut engine = ProtocolEngine::new(|io| async move {
            self.send_round_io(alg, &io, sel, rng, secret).await
        });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O variant of [`send_round`](OmpeSenderSession::send_round).
    ///
    /// # Errors
    ///
    /// Same as [`send_round`](OmpeSenderSession::send_round).
    pub async fn send_round_io<P>(
        &mut self,
        alg: &A,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        secret: &P,
    ) -> Result<(), OmpeError>
    where
        P: PolyEval<A> + ?Sized,
    {
        self.check_degree(secret)?;
        let cloud = self.recv_cloud_io(io, secret.num_vars()).await?;
        self.answer_cloud_io(alg, io, sel, rng, secret, &cloud)
            .await
    }

    pub(crate) fn check_degree<P>(&self, secret: &P) -> Result<(), OmpeError>
    where
        P: PolyEval<A> + ?Sized,
    {
        if secret.total_degree() > self.params.degree_bound {
            return Err(OmpeError::SecretMismatch(format!(
                "secret has total degree {}, agreed bound is {}",
                secret.total_degree(),
                self.params.degree_bound
            )));
        }
        Ok(())
    }

    /// Receives and validates one round's point cloud: `N` abscissae and
    /// `N` `r`-dimensional input vectors. In batch mode every cloud of
    /// the batch arrives in one coalesced frame, so these must all be
    /// drained before the per-round oblivious transfers begin.
    pub(crate) async fn recv_cloud_io(
        &self,
        io: &FrameIo,
        r: usize,
    ) -> Result<PointCloud<A>, OmpeError> {
        let _span = ppcs_telemetry::span(Phase::OmpePointCloud);
        let n_points = self.params.num_points();
        let mut payload: Bytes = {
            let blob: Vec<u8> = io.recv_msg(KIND_OMPE_POINTS).await?;
            Bytes::from(blob)
        };
        let xs: Vec<A::Elem> = decode_seq(&mut payload)?;
        // Validate the abscissa count before decoding the (much larger)
        // coordinate block: an oversized cloud is rejected on the first
        // sequence instead of being fully materialized first.
        if xs.len() != n_points {
            return Err(OmpeError::Protocol(format!(
                "receiver submitted {} points, parameters require {n_points}",
                xs.len()
            )));
        }
        let ys_flat: Vec<A::Elem> = decode_seq(&mut payload)?;
        if ys_flat.len() != n_points * r {
            return Err(OmpeError::Protocol(format!(
                "receiver submitted {} input coordinates, expected {}",
                ys_flat.len(),
                n_points * r
            )));
        }
        Ok((xs, ys_flat))
    }

    /// Masks, evaluates, and obliviously transfers the answers for one
    /// received point cloud.
    pub(crate) async fn answer_cloud_io<P>(
        &mut self,
        alg: &A,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        secret: &P,
        (xs, ys_flat): &PointCloud<A>,
    ) -> Result<(), OmpeError>
    where
        P: PolyEval<A> + ?Sized,
    {
        let params = &self.params;
        let n_points = params.num_points();
        let r = secret.num_vars();

        let answers = {
            let _span = ppcs_telemetry::span(Phase::OmpeMask);

            // Fresh masking polynomial M with M(0) = 0 and degree exactly
            // D: one drawn offline if the session was precomputed, else
            // drawn inline into the storage set up at session creation.
            match self.prepared_masks.pop_front() {
                Some(mask) => self.mask = mask,
                None => self.mask.refresh_random_with_constant(
                    alg,
                    params.composite_degree(),
                    alg.zero(),
                    rng,
                ),
            }

            // Q(x_i, y_i) = M(x_i) + P(y_i) for every submitted point.
            // M is evaluated over the whole cloud in one batched pass so
            // the fixed-point backend can run the SIMD Horner kernel.
            let mask_values = self.mask.eval_many(alg, xs);
            let mut answers = Vec::with_capacity(n_points);
            for (i, m) in mask_values.iter().enumerate() {
                let y = &ys_flat[i * r..(i + 1) * r];
                let q = alg.add(m, &secret.eval(alg, y));
                answers.push(encode_elems(std::slice::from_ref(&q)).to_vec());
            }
            answers
        };

        // n-out-of-N oblivious transfer of the answers.
        ot_send_io(sel, &self.ot_state, io, rng, &answers, params.num_covers()).await?;
        Ok(())
    }
}

/// One receiver round built by
/// [`prepare_round`](OmpeReceiverSession::prepare_round) but not yet
/// transmitted: the point-cloud frame plus the local state needed to
/// finish after the oblivious transfer.
#[derive(Debug)]
pub struct PreparedRound<A: Algebra> {
    frame: Frame,
    xs: Vec<A::Elem>,
    cover_positions: Vec<usize>,
}

impl<A: Algebra> PreparedRound<A> {
    /// Assembles a round from parts built elsewhere (the offline path
    /// binds precomputed blind rounds into exactly this shape).
    pub(crate) fn from_parts(frame: Frame, xs: Vec<A::Elem>, cover_positions: Vec<usize>) -> Self {
        Self {
            frame,
            xs,
            cover_positions,
        }
    }

    /// The point-cloud frame to transmit (cheap to clone; the payload is
    /// reference-counted).
    pub fn frame(&self) -> Frame {
        self.frame.clone()
    }
}

/// Receiver-side batch session: owns the per-batch state reused by every
/// round.
#[derive(Debug)]
pub struct OmpeReceiverSession<A: Algebra> {
    params: OmpeParams,
    /// Cover-polynomial storage, refreshed in place each round.
    cover_polys: Vec<Polynomial<A>>,
    ot_state: OtBatchState,
}

impl<A> OmpeReceiverSession<A>
where
    A: Algebra,
    A::Elem: Encodable,
{
    /// Sets up the per-batch state, consuming the sender's OT base-phase
    /// material from the channel.
    ///
    /// # Errors
    ///
    /// Transport failures during the OT base phase.
    pub fn new(
        ep: &Endpoint,
        ot: &dyn ObliviousTransfer,
        params: OmpeParams,
    ) -> Result<Self, OmpeError> {
        let sel = ot.select();
        let mut engine =
            ProtocolEngine::new(|io| async move { Self::new_io(&io, sel, params).await });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O variant of [`new`](OmpeReceiverSession::new).
    ///
    /// # Errors
    ///
    /// Transport failures during the OT base phase.
    pub async fn new_io(
        io: &FrameIo,
        sel: OtSelect,
        params: OmpeParams,
    ) -> Result<Self, OmpeError> {
        let ot_state = ot_begin_receive_io(sel, io).await?;
        Ok(Self {
            params,
            cover_polys: Vec::new(),
            ot_state,
        })
    }

    /// A one-round session with no batch state; backs the single-shot
    /// [`ompe_receive`](crate::protocol::ompe_receive).
    pub(crate) fn single_shot(params: OmpeParams) -> Self {
        Self {
            params,
            cover_polys: Vec::new(),
            ot_state: OtBatchState::default(),
        }
    }

    /// Builds one round's point cloud without transmitting it, so that a
    /// whole batch of rounds can go out in one coalesced write.
    ///
    /// # Errors
    ///
    /// [`OmpeError::Params`] on an empty input vector.
    pub fn prepare_round(
        &mut self,
        alg: &A,
        rng: &mut dyn RngCore,
        alpha: &[A::Elem],
    ) -> Result<PreparedRound<A>, OmpeError> {
        if alpha.is_empty() {
            return Err(OmpeError::Params("input vector must be non-empty".into()));
        }
        let _span = ppcs_telemetry::span(Phase::OmpePointCloud);
        let params = &self.params;
        let r = alpha.len();
        let n_covers = params.num_covers();
        let n_points = params.num_points();

        // Hide each input coordinate as the constant term of a random
        // degree-σ polynomial, refreshing the session's storage.
        self.cover_polys.truncate(r);
        while self.cover_polys.len() < r {
            self.cover_polys.push(Polynomial::zero());
        }
        for (poly, a) in self.cover_polys.iter_mut().zip(alpha) {
            poly.refresh_random_with_constant(alg, params.sigma, a.clone(), rng);
        }

        // Distinct nonzero abscissae for all N points.
        let xs = draw_distinct_points(alg, n_points, rng);

        // Choose which positions are genuine covers.
        let cover_positions: Vec<usize> = sample(rng, n_points, n_covers).into_vec();
        let mut is_cover = vec![false; n_points];
        for &pos in &cover_positions {
            is_cover[pos] = true;
        }

        // Build the submitted input vectors: S(x) at covers, disguises
        // elsewhere. Each cover polynomial is evaluated over all genuine
        // cover abscissae in one batched pass (the SIMD Horner kernel on
        // the fixed-point backend); the disguise draws stay interleaved
        // in position order so the RNG stream is identical to the
        // point-at-a-time construction.
        let cover_xs: Vec<A::Elem> = (0..n_points)
            .filter(|&i| is_cover[i])
            .map(|i| xs[i].clone())
            .collect();
        let cover_evals: Vec<Vec<A::Elem>> = self
            .cover_polys
            .iter()
            .map(|poly| poly.eval_many(alg, &cover_xs))
            .collect();
        let mut ys_flat = Vec::with_capacity(n_points * r);
        let mut cover_rank = 0usize;
        for &cover in is_cover.iter().take(n_points) {
            if cover {
                for evals in &cover_evals {
                    ys_flat.push(evals[cover_rank].clone());
                }
                cover_rank += 1;
            } else {
                for _ in 0..r {
                    ys_flat.push(alg.random_disguise(rng));
                }
            }
        }

        let mut payload = BytesMut::new();
        encode_seq(&xs, &mut payload);
        encode_seq(&ys_flat, &mut payload);
        let frame = Frame::encode(KIND_OMPE_POINTS, &payload.to_vec());
        Ok(PreparedRound {
            frame,
            xs,
            cover_positions,
        })
    }

    /// Runs the oblivious transfer and interpolation for a prepared
    /// round whose point-cloud frame has already been transmitted;
    /// returns `P(α)`.
    ///
    /// # Errors
    ///
    /// Transport/OT/interpolation failures.
    pub fn finish_round(
        &self,
        alg: &A,
        ep: &Endpoint,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        round: &PreparedRound<A>,
    ) -> Result<A::Elem, OmpeError> {
        let sel = ot.select();
        let mut engine = ProtocolEngine::new(|io| async move {
            self.finish_round_io(alg, &io, sel, rng, round).await
        });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O variant of [`finish_round`](OmpeReceiverSession::finish_round).
    ///
    /// # Errors
    ///
    /// Transport/OT/interpolation failures.
    pub async fn finish_round_io(
        &self,
        alg: &A,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        round: &PreparedRound<A>,
    ) -> Result<A::Elem, OmpeError> {
        let points = self.finish_round_points_io(io, sel, rng, round).await?;
        // Interpolate R(v) = M(v) + P(S(v)) and evaluate at zero:
        // R(0) = M(0) + P(S(0)) = P(α).
        let _span = ppcs_telemetry::span(Phase::OmpeInterpolate);
        Ok(interpolate_at_zero(alg, &points)?)
    }

    /// The oblivious-transfer half of
    /// [`finish_round_io`](OmpeReceiverSession::finish_round_io): fetches
    /// and decodes the masked answers at the cover positions, returning
    /// the interpolation points without interpolating. Batch drivers
    /// collect the points of every round and retrieve them all through
    /// one [`interp_batch`] call.
    pub(crate) async fn finish_round_points_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        round: &PreparedRound<A>,
    ) -> Result<Vec<(A::Elem, A::Elem)>, OmpeError> {
        let n_covers = self.params.num_covers();
        let n_points = self.params.num_points();

        // Obliviously fetch the answers at the cover positions.
        let raw = ot_receive_io(
            sel,
            &self.ot_state,
            io,
            rng,
            n_points,
            &round.cover_positions,
        )
        .await?;
        let mut points = Vec::with_capacity(n_covers);
        for (raw_value, &pos) in raw.iter().zip(&round.cover_positions) {
            let mut input = Bytes::from(raw_value.clone());
            let values: Vec<A::Elem> = decode_seq(&mut input)
                .map_err(|e| OmpeError::Protocol(format!("bad OT payload: {e}")))?;
            let [value] = <[A::Elem; 1]>::try_from(values)
                .map_err(|_| OmpeError::Protocol("OT payload is not a single element".into()))?;
            points.push((round.xs[pos].clone(), value));
        }
        Ok(points)
    }

    /// Prepares, transmits, and finishes one round (the non-coalesced
    /// path).
    ///
    /// # Errors
    ///
    /// Any error from [`prepare_round`](OmpeReceiverSession::prepare_round)
    /// or [`finish_round`](OmpeReceiverSession::finish_round).
    pub fn receive_round(
        &mut self,
        alg: &A,
        ep: &Endpoint,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        alpha: &[A::Elem],
    ) -> Result<A::Elem, OmpeError> {
        let sel = ot.select();
        let mut engine = ProtocolEngine::new(|io| async move {
            self.receive_round_io(alg, &io, sel, rng, alpha).await
        });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O variant of [`receive_round`](OmpeReceiverSession::receive_round).
    ///
    /// # Errors
    ///
    /// Same as [`receive_round`](OmpeReceiverSession::receive_round).
    pub async fn receive_round_io(
        &mut self,
        alg: &A,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        alpha: &[A::Elem],
    ) -> Result<A::Elem, OmpeError> {
        let round = self.prepare_round(alg, rng, alpha)?;
        io.send(round.frame())?;
        self.finish_round_io(alg, io, sel, rng, &round).await
    }
}

/// Sender side of a batch of OMPE rounds: evaluates `secrets[i]` on the
/// receiver's `i`-th hidden input, reusing per-batch state throughout.
///
/// # Errors
///
/// Any per-round error of
/// [`OmpeSenderSession::send_round`]; the batch stops at the first
/// failure.
pub fn ompe_send_batch<A, P>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    secrets: &[P],
    params: &OmpeParams,
) -> Result<(), OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
    P: PolyEval<A>,
{
    let sel = ot.select();
    let mut engine = ProtocolEngine::new(|io| async move {
        ompe_send_batch_io(alg, &io, sel, rng, secrets, params).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O variant of [`ompe_send_batch`]: the sender role of a whole
/// batch as one engine.
///
/// # Errors
///
/// Same as [`ompe_send_batch`].
pub async fn ompe_send_batch_io<A, P>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    secrets: &[P],
    params: &OmpeParams,
) -> Result<(), OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
    P: PolyEval<A>,
{
    if secrets.is_empty() {
        return Ok(());
    }
    let mut session = OmpeSenderSession::new_io(io, sel, rng, *params).await?;
    for secret in secrets {
        session.check_degree(secret)?;
    }
    // The receiver ships every round's point cloud in one coalesced
    // frame, so drain them all before any per-round OT traffic starts —
    // otherwise an OT receive would pop a queued point cloud instead of
    // the frame it expects.
    let mut clouds = Vec::with_capacity(secrets.len());
    for secret in secrets {
        clouds.push(session.recv_cloud_io(io, secret.num_vars()).await?);
    }
    for (secret, cloud) in secrets.iter().zip(&clouds) {
        session
            .answer_cloud_io(alg, io, sel, rng, secret, cloud)
            .await?;
    }
    Ok(())
}

/// Receiver side of a batch of OMPE rounds: learns `P_i(α_i)` for every
/// private input, transmitting all point clouds in one coalesced frame.
///
/// # Errors
///
/// Any per-round error; the batch stops at the first failure.
pub fn ompe_receive_batch<A>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    alphas: &[Vec<A::Elem>],
    params: &OmpeParams,
) -> Result<Vec<A::Elem>, OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let sel = ot.select();
    let mut engine = ProtocolEngine::new(|io| async move {
        ompe_receive_batch_io(alg, &io, sel, rng, alphas, params).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O variant of [`ompe_receive_batch`]: the receiver role of a
/// whole batch as one engine. All point clouds leave in one coalesced
/// write, exactly as on the blocking path.
///
/// # Errors
///
/// Same as [`ompe_receive_batch`].
pub async fn ompe_receive_batch_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    alphas: &[Vec<A::Elem>],
    params: &OmpeParams,
) -> Result<Vec<A::Elem>, OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    if alphas.is_empty() {
        return Ok(Vec::new());
    }
    let mut session = OmpeReceiverSession::new_io(io, sel, *params).await?;
    let rounds: Vec<PreparedRound<A>> = alphas
        .iter()
        .map(|alpha| session.prepare_round(alg, rng, alpha))
        .collect::<Result<_, _>>()?;
    // One framed write carries every round's point cloud.
    let frames: Vec<Frame> = rounds.iter().map(PreparedRound::frame).collect();
    io.send_coalesced(&frames)?;
    // Collect every round's interpolation points first, then retrieve
    // all the constant terms through one batched interpolation: a single
    // Fermat inversion serves the whole batch on the fixed-point backend.
    let mut systems = Vec::with_capacity(rounds.len());
    for round in &rounds {
        systems.push(session.finish_round_points_io(io, sel, rng, round).await?);
    }
    let _span = ppcs_telemetry::span(Phase::OmpeInterpolate);
    Ok(interp_batch(alg, &systems)?)
}

/// Draws `count` pairwise-distinct nonzero evaluation points.
pub(crate) fn draw_distinct_points<A: Algebra>(
    alg: &A,
    count: usize,
    rng: &mut dyn RngCore,
) -> Vec<A::Elem> {
    let mut xs: Vec<A::Elem> = Vec::with_capacity(count);
    while xs.len() < count {
        let candidate = alg.random_point(rng);
        if xs.contains(&candidate) {
            continue;
        }
        xs.push(candidate);
    }
    xs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_math::{F64Algebra, FixedFpAlgebra, MvPolynomial};
    use ppcs_ot::{NaorPinkasOt, TrustedSimOt};
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    static SIM: TrustedSimOt = TrustedSimOt;

    #[test]
    fn batch_matches_sequential_over_field() {
        let alg = FixedFpAlgebra::new(16);
        let weights = vec![alg.encode(1.5, 1), alg.encode(-2.0, 1)];
        let secret = MvPolynomial::affine(&alg, &weights, alg.encode(3.0, 2));
        let params = OmpeParams::new(1, 5, 4).unwrap();
        let inputs: Vec<Vec<_>> = (0..8)
            .map(|i| {
                let v = f64::from(i) * 0.25 - 1.0;
                vec![alg.encode(v, 1), alg.encode(-v, 1)]
            })
            .collect();
        let secrets = vec![secret; inputs.len()];
        let alg_s = alg;
        let secrets_s = secrets.clone();
        let alphas = inputs.clone();
        let (send_res, values) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(21);
                ompe_send_batch(&alg_s, &ep, &SIM, &mut rng, &secrets_s, &params)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(22);
                ompe_receive_batch(&alg, &ep, &SIM, &mut rng, &alphas, &params).unwrap()
            },
        );
        send_res.unwrap();
        for (input, got) in inputs.iter().zip(&values) {
            let a = alg.decode(&input[0], 1);
            let b = alg.decode(&input[1], 1);
            let want = 1.5 * a - 2.0 * b + 3.0;
            assert!(
                (alg.decode(got, 2) - want).abs() < 1e-3,
                "{} vs {want}",
                alg.decode(got, 2)
            );
        }
    }

    #[test]
    fn batch_point_clouds_travel_in_one_frame() {
        let alg = F64Algebra::new();
        let secret = MvPolynomial::affine(&alg, &[2.0], 1.0);
        let params = OmpeParams::new(1, 3, 2).unwrap();
        let secrets = vec![secret; 4];
        let alphas: Vec<Vec<f64>> = (0..4).map(|i| vec![f64::from(i)]).collect();
        let (send_res, (values, frames_sent)) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(31);
                ompe_send_batch(&alg, &ep, &SIM, &mut rng, &secrets, &params)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(32);
                let vals = ompe_receive_batch(&alg, &ep, &SIM, &mut rng, &alphas, &params).unwrap();
                // The sim OT sends one index frame per round; only ONE
                // frame beyond those carries all four point clouds.
                (vals, ep.stats().frames_sent)
            },
        );
        send_res.unwrap();
        assert_eq!(
            frames_sent,
            1 + 4,
            "one coalesced frame + 4 OT index frames"
        );
        for (i, v) in values.iter().enumerate() {
            assert!((v - (2.0 * f64::from(i as u32) + 1.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn batch_works_over_naor_pinkas_with_shared_commitment() {
        static CELL: std::sync::OnceLock<NaorPinkasOt> = std::sync::OnceLock::new();
        let ot: &'static dyn ObliviousTransfer = CELL.get_or_init(NaorPinkasOt::fast_insecure);
        let alg = F64Algebra::new();
        let secret = MvPolynomial::affine(&alg, &[1.0, -1.0], 0.5);
        let params = OmpeParams::new(1, 2, 2).unwrap();
        let secrets = vec![secret; 3];
        let alphas: Vec<Vec<f64>> = vec![vec![1.0, 0.5], vec![-0.5, 0.25], vec![2.0, 2.0]];
        let expected: Vec<f64> = alphas.iter().map(|a| a[0] - a[1] + 0.5).collect();
        let (send_res, values) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(41);
                ompe_send_batch(&alg, &ep, ot, &mut rng, &secrets, &params)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(42);
                ompe_receive_batch(&alg, &ep, ot, &mut rng, &alphas, &params).unwrap()
            },
        );
        send_res.unwrap();
        for (got, want) in values.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let alg = F64Algebra::new();
        let params = OmpeParams::new(1, 2, 2).unwrap();
        let (_, values) = run_pair(
            move |_ep| {},
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                ompe_receive_batch::<F64Algebra>(&alg, &ep, &SIM, &mut rng, &[], &params).unwrap()
            },
        );
        assert!(values.is_empty());
    }

    #[test]
    fn engine_batch_matches_blocking_batch() {
        // The same batch, run once over threads + duplex and once as an
        // engine pair with no transport, must produce identical values.
        let alg = F64Algebra::new();
        let secret = MvPolynomial::affine(&alg, &[2.0, -1.0], 0.25);
        let params = OmpeParams::new(1, 3, 2).unwrap();
        let secrets = vec![secret.clone(); 3];
        let alphas: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![-0.5, 0.5], vec![3.0, 0.0]];

        let secrets_b = secrets.clone();
        let alphas_b = alphas.clone();
        let alg_b = alg;
        let (send_res, blocking_values) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(51);
                ompe_send_batch(&alg_b, &ep, &SIM, &mut rng, &secrets_b, &params)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(52);
                ompe_receive_batch(&alg, &ep, &SIM, &mut rng, &alphas_b, &params).unwrap()
            },
        );
        send_res.unwrap();

        let sel = SIM.select();
        let mut rng_s = StdRng::seed_from_u64(51);
        let mut rng_r = StdRng::seed_from_u64(52);
        let secrets_e = secrets.clone();
        let alphas_e = alphas.clone();
        let mut sender = ProtocolEngine::new(|io| async move {
            ompe_send_batch_io(&alg, &io, sel, &mut rng_s, &secrets_e, &params).await
        });
        let mut receiver = ProtocolEngine::new(|io| async move {
            ompe_receive_batch_io(&alg, &io, sel, &mut rng_r, &alphas_e, &params).await
        });
        let (sent, received) =
            ppcs_transport::run_engine_pair(&mut sender, &mut receiver).expect("pump");
        sent.expect("send ok");
        let engine_values = received.expect("receive ok");
        assert_eq!(engine_values, blocking_values);
    }
}
