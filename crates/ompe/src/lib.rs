//! # ppcs-ompe
//!
//! Oblivious Multivariate Polynomial Evaluation (Tassa, Jarrous,
//! Ben-Ya'akov — J. Math. Cryptol. 2013), the protocol every ppcs scheme
//! is built on (Section III-C of the ICDCS'16 paper).
//!
//! The **sender** holds a secret `r`-variate polynomial `P` of public
//! total degree ≤ `degree_bound`; the **receiver** holds a private input
//! vector `α ∈ Aʳ`. After the protocol the receiver knows `P(α)` and
//! nothing else about `P`; the sender learns nothing about `α`.
//!
//! Construction: the receiver hides each `α_i` as the constant term of a
//! random degree-`σ` polynomial `S_i`, submits `N = n·m` evaluation
//! points of which only `n = σ·degree_bound + 1` are genuine covers
//! `(x, S(x))`, and the sender answers with `Q(x, y) = M(x) + P(y)` where
//! `M` is a random masking polynomial with `M(0) = 0`. An n-out-of-N
//! oblivious transfer delivers the cover values; Lagrange interpolation
//! at zero strips the mask: `R(0) = M(0) + P(S(0)) = P(α)`.
//!
//! The protocol is generic over the [`Algebra`](ppcs_math::Algebra)
//! backend (floats as in the paper's experiments, or fixed-point field
//! elements for the cryptographically sound instantiation) and over the
//! [`ObliviousTransfer`](ppcs_ot::ObliviousTransfer) engine.
//!
//! ## Example
//!
//! ```
//! use ppcs_math::{F64Algebra, MvPolynomial};
//! use ppcs_ompe::{ompe_receive, ompe_send, OmpeParams};
//! use ppcs_ot::TrustedSimOt;
//! use ppcs_transport::run_pair;
//! use rand::SeedableRng;
//!
//! let alg = F64Algebra::new();
//! // Sender's secret: P(y1, y2) = 2·y1 - 3·y2 + 0.5
//! let secret = MvPolynomial::affine(&alg, &[2.0, -3.0], 0.5);
//! let params = OmpeParams::new(1, 4, 3).unwrap();
//!
//! let (send_res, value) = run_pair(
//!     move |ep| {
//!         let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!         ompe_send(&F64Algebra::new(), &ep, &TrustedSimOt, &mut rng, &secret, &params)
//!     },
//!     move |ep| {
//!         let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//!         ompe_receive(&F64Algebra::new(), &ep, &TrustedSimOt, &mut rng, &[1.0, 2.0], &params)
//!             .unwrap()
//!     },
//! );
//! send_res.unwrap();
//! assert!((value - (2.0 - 6.0 + 0.5)).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod offline;
mod protocol;
mod session;

pub use error::OmpeError;
pub use offline::{
    ompe_receive_batch_offline_io, ompe_send_batch_offline_io, ompe_send_offline_io,
    params_fingerprint, OmpeReceiverOffline, OmpeSenderOffline,
};
pub use protocol::{ompe_receive, ompe_receive_io, ompe_send, ompe_send_io, OmpeParams};
pub use session::{
    ompe_receive_batch, ompe_receive_batch_io, ompe_send_batch, ompe_send_batch_io,
    OmpeReceiverSession, OmpeSenderSession, PreparedRound,
};
