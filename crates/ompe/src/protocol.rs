//! The OMPE sender and receiver.

use ppcs_math::{Algebra, PolyEval};
use ppcs_ot::{ObliviousTransfer, OtSelect};
use ppcs_transport::{Encodable, Endpoint, FrameIo};
use rand::RngCore;

use crate::error::OmpeError;
use crate::session::{OmpeReceiverSession, OmpeSenderSession};

pub(crate) const KIND_OMPE_POINTS: u16 = 0x0400;

/// Public parameters both parties must agree on before running OMPE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OmpeParams {
    /// Public upper bound on the total degree of the sender's secret
    /// polynomial (`p` in the paper's nonlinear protocol, 1 for linear).
    pub degree_bound: usize,
    /// Degree of the receiver's input-masking polynomials (`q` in the
    /// paper). Larger values raise the interpolation threshold an
    /// eavesdropper would need.
    pub sigma: usize,
    /// Decoy multiplier (`m` such that `N = n·m` points are submitted,
    /// `k` in the paper's notation for the classification scheme).
    /// A factor of 1 disables decoys — only meaningful together with the
    /// ideal-functionality OT in functional-benchmark mode.
    pub decoy_factor: usize,
}

impl OmpeParams {
    /// Largest accepted composite degree `degree_bound · sigma`.
    ///
    /// Parameter sets are often decoded from peer-supplied bytes, so the
    /// constructor bounds them above as well as below: the interpolation
    /// work and point-cloud size are polynomial in these values, and an
    /// unchecked peer-chosen degree is a resource-exhaustion vector. The
    /// largest parameter sets in the paper's experiments are two orders
    /// of magnitude below these caps.
    pub const MAX_COMPOSITE_DEGREE: usize = 4096;
    /// Largest accepted total point count `(D + 1) · decoy_factor`.
    pub const MAX_POINTS: usize = 65536;

    /// Validates and builds a parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`OmpeError::Params`] if any parameter is zero, or if the
    /// composite degree or total point count exceeds its cap.
    pub fn new(degree_bound: usize, sigma: usize, decoy_factor: usize) -> Result<Self, OmpeError> {
        if degree_bound == 0 {
            return Err(OmpeError::Params("degree_bound must be ≥ 1".into()));
        }
        if sigma == 0 {
            return Err(OmpeError::Params("sigma must be ≥ 1".into()));
        }
        if decoy_factor == 0 {
            return Err(OmpeError::Params("decoy_factor must be ≥ 1".into()));
        }
        let composite = degree_bound
            .checked_mul(sigma)
            .filter(|&d| d <= Self::MAX_COMPOSITE_DEGREE)
            .ok_or_else(|| {
                OmpeError::Params(format!(
                    "composite degree {degree_bound}·{sigma} exceeds cap {}",
                    Self::MAX_COMPOSITE_DEGREE
                ))
            })?;
        (composite + 1)
            .checked_mul(decoy_factor)
            .filter(|&n| n <= Self::MAX_POINTS)
            .ok_or_else(|| {
                OmpeError::Params(format!(
                    "point count ({composite}+1)·{decoy_factor} exceeds cap {}",
                    Self::MAX_POINTS
                ))
            })?;
        Ok(Self {
            degree_bound,
            sigma,
            decoy_factor,
        })
    }

    /// The composite degree `D = degree_bound · sigma` of the masked
    /// univariate polynomial the receiver reconstructs.
    pub fn composite_degree(&self) -> usize {
        self.degree_bound * self.sigma
    }

    /// The number of genuine cover points, `n = D + 1`.
    pub fn num_covers(&self) -> usize {
        self.composite_degree() + 1
    }

    /// The total number of submitted points, `N = n · decoy_factor`.
    pub fn num_points(&self) -> usize {
        self.num_covers() * self.decoy_factor
    }
}

/// Sender side of OMPE: obliviously evaluates `secret` on the receiver's
/// hidden input.
///
/// # Errors
///
/// [`OmpeError::SecretMismatch`] if `secret` exceeds the agreed degree
/// bound, plus transport/OT/protocol failures.
pub fn ompe_send<A, P>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    secret: &P,
    params: &OmpeParams,
) -> Result<(), OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
    P: PolyEval<A> + ?Sized,
{
    OmpeSenderSession::single_shot(*params).send_round(alg, ep, ot, rng, secret)
}

/// Receiver side of OMPE: learns `P(α)` for the private input `alpha`.
///
/// # Errors
///
/// [`OmpeError::Params`] on empty input, plus transport/OT/interpolation
/// failures.
pub fn ompe_receive<A>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    alpha: &[A::Elem],
    params: &OmpeParams,
) -> Result<A::Elem, OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    OmpeReceiverSession::single_shot(*params).receive_round(alg, ep, ot, rng, alpha)
}

/// Sans-I/O variant of [`ompe_send`]: the sender role over a [`FrameIo`]
/// mailbox and an [`OtSelect`] engine selector.
///
/// # Errors
///
/// Same as [`ompe_send`].
pub async fn ompe_send_io<A, P>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    secret: &P,
    params: &OmpeParams,
) -> Result<(), OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
    P: PolyEval<A> + ?Sized,
{
    OmpeSenderSession::single_shot(*params)
        .send_round_io(alg, io, sel, rng, secret)
        .await
}

/// Sans-I/O variant of [`ompe_receive`].
///
/// # Errors
///
/// Same as [`ompe_receive`].
pub async fn ompe_receive_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    alpha: &[A::Elem],
    params: &OmpeParams,
) -> Result<A::Elem, OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    OmpeReceiverSession::single_shot(*params)
        .receive_round_io(alg, io, sel, rng, alpha)
        .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_math::{F64Algebra, FixedFpAlgebra, MvPolynomial};
    use ppcs_ot::{NaorPinkasOt, TrustedSimOt};
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_ompe<A>(
        alg: A,
        secret: MvPolynomial<A>,
        alpha: Vec<A::Elem>,
        params: OmpeParams,
        ot_engine: &'static dyn ObliviousTransfer,
        seed: u64,
    ) -> A::Elem
    where
        A: Algebra,
        A::Elem: Encodable,
    {
        let alg2 = alg.clone();
        let (send_res, value) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed);
                ompe_send(&alg, &ep, ot_engine, &mut rng, &secret, &params)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                ompe_receive(&alg2, &ep, ot_engine, &mut rng, &alpha, &params)
            },
        );
        send_res.unwrap();
        value.unwrap()
    }

    static SIM: TrustedSimOt = TrustedSimOt;

    #[test]
    fn linear_polynomial_over_f64() {
        let alg = F64Algebra::new();
        let secret = MvPolynomial::affine(&alg, &[1.5, -2.0, 0.25], 3.0);
        let alpha = vec![2.0, 1.0, 4.0];
        let want = 1.5 * 2.0 - 2.0 + 0.25 * 4.0 + 3.0;
        let params = OmpeParams::new(1, 5, 4).unwrap();
        for seed in 0..5 {
            let got = run_ompe(alg, secret.clone(), alpha.clone(), params, &SIM, seed * 17);
            assert!((got - want).abs() < 1e-6, "seed {seed}: {got} vs {want}");
        }
    }

    #[test]
    fn linear_polynomial_over_field_is_exact() {
        let alg = FixedFpAlgebra::new(16);
        let weights = vec![alg.encode(1.5, 1), alg.encode(-2.0, 1)];
        let bias = alg.encode(3.0, 2);
        let secret = MvPolynomial::affine(&alg, &weights, bias);
        let alpha = vec![alg.encode(0.5, 1), alg.encode(-0.25, 1)];
        let params = OmpeParams::new(1, 5, 4).unwrap();
        let got = run_ompe(alg, secret, alpha, params, &SIM, 3);
        let want = 1.5 * 0.5 - 2.0 * -0.25 + 3.0;
        assert!(
            (alg.decode(&got, 2) - want).abs() < 1e-3,
            "{} vs {want}",
            alg.decode(&got, 2)
        );
    }

    #[test]
    fn degree_four_two_variate_over_field() {
        // The similarity polynomial shape: degree 4 in 2 variables.
        let alg = FixedFpAlgebra::new(12);
        // P(y1,y2) = (y1 - 1)^2 · y2^2, expanded; inputs at scale 1, so a
        // degree-k term needs its coefficient at scale (4-k) for a
        // uniform output scale of 4.
        let terms = vec![
            (alg.encode(1.0, 0), vec![2, 2]),
            (alg.encode(-2.0, 1), vec![1, 2]),
            (alg.encode(1.0, 2), vec![0, 2]),
        ];
        let secret = MvPolynomial::from_terms(2, terms);
        let alpha = vec![alg.encode(3.0, 1), alg.encode(-2.0, 1)];
        let params = OmpeParams::new(4, 2, 3).unwrap();
        let got = run_ompe(alg, secret, alpha, params, &SIM, 4);
        let want = (3.0f64 - 1.0).powi(2) * 4.0;
        assert!(
            (alg.decode(&got, 4) - want).abs() < 1e-2,
            "{} vs {want}",
            alg.decode(&got, 4)
        );
    }

    #[test]
    fn works_over_real_naor_pinkas_ot() {
        static NP: once_fast::Lazy = once_fast::Lazy;
        let alg = F64Algebra::new();
        let secret = MvPolynomial::affine(&alg, &[2.0, 1.0], -0.5);
        let params = OmpeParams::new(1, 3, 2).unwrap();
        let got = run_ompe(alg, secret, vec![0.5, 0.5], params, NP.get(), 9);
        assert!((got - (1.0 + 0.5 - 0.5)).abs() < 1e-6);
    }

    /// Small helper to get a `&'static dyn ObliviousTransfer` for the
    /// Naor–Pinkas engine.
    mod once_fast {
        use super::*;
        use std::sync::OnceLock;
        pub struct Lazy;
        impl Lazy {
            pub fn get(&self) -> &'static dyn ObliviousTransfer {
                static CELL: OnceLock<NaorPinkasOt> = OnceLock::new();
                CELL.get_or_init(NaorPinkasOt::fast_insecure)
            }
        }
    }

    #[test]
    fn sender_rejects_overdegree_secret() {
        let alg = F64Algebra::new();
        let secret = MvPolynomial::from_terms(1, vec![(1.0, vec![3])]);
        let params = OmpeParams::new(2, 2, 2).unwrap();
        let (send_res, _) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                ompe_send(&F64Algebra::new(), &ep, &SIM, &mut rng, &secret, &params)
            },
            move |_ep| {},
        );
        assert!(matches!(
            send_res.unwrap_err(),
            OmpeError::SecretMismatch(_)
        ));
        let _ = alg;
    }

    #[test]
    fn params_reject_zeroes() {
        assert!(OmpeParams::new(0, 1, 1).is_err());
        assert!(OmpeParams::new(1, 0, 1).is_err());
        assert!(OmpeParams::new(1, 1, 0).is_err());
        let p = OmpeParams::new(3, 4, 5).unwrap();
        assert_eq!(p.composite_degree(), 12);
        assert_eq!(p.num_covers(), 13);
        assert_eq!(p.num_points(), 65);
    }

    #[test]
    fn params_reject_resource_exhausting_values() {
        // Composite degree beyond the cap, with and without overflow.
        assert!(OmpeParams::new(OmpeParams::MAX_COMPOSITE_DEGREE + 1, 1, 1).is_err());
        assert!(OmpeParams::new(usize::MAX, usize::MAX, 1).is_err());
        // Degree within cap but the decoy blow-up exceeds MAX_POINTS.
        assert!(OmpeParams::new(64, 64, 1).is_ok());
        assert!(OmpeParams::new(64, 64, usize::MAX).is_err());
        assert!(OmpeParams::new(64, 64, 1000).is_err());
        // The largest experiment-scale parameters still pass.
        assert!(OmpeParams::new(6, 16, 5).is_ok());
    }

    #[test]
    fn point_count_mismatch_is_detected() {
        // Receiver and sender disagree on the decoy factor.
        let alg = F64Algebra::new();
        let secret = MvPolynomial::affine(&alg, &[1.0], 0.0);
        let params_s = OmpeParams::new(1, 2, 4).unwrap();
        let params_r = OmpeParams::new(1, 2, 3).unwrap();
        let (send_res, _) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                ompe_send(&F64Algebra::new(), &ep, &SIM, &mut rng, &secret, &params_s)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                let _ = ompe_receive(&F64Algebra::new(), &ep, &SIM, &mut rng, &[1.0], &params_r);
            },
        );
        assert!(matches!(send_res.unwrap_err(), OmpeError::Protocol(_)));
    }

    #[test]
    fn distinct_points_are_distinct() {
        let alg = F64Algebra::new();
        let mut rng = StdRng::seed_from_u64(7);
        let xs = crate::session::draw_distinct_points(&alg, 200, &mut rng);
        for (i, a) in xs.iter().enumerate() {
            assert!(*a != 0.0);
            for b in xs.iter().skip(i + 1) {
                assert!(a != b);
            }
        }
    }
}
