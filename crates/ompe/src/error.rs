//! OMPE errors.

use core::fmt;

use ppcs_math::InterpolationError;
use ppcs_ot::OtError;
use ppcs_transport::{ErrorLayer, ProtocolError, TransportError};

/// Errors raised by the OMPE protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum OmpeError {
    /// Invalid protocol parameters.
    Params(String),
    /// The sender's secret polynomial exceeds the agreed degree bound or
    /// arity.
    SecretMismatch(String),
    /// Underlying oblivious-transfer failure.
    Ot(OtError),
    /// Underlying transport failure.
    Transport(TransportError),
    /// The retrieval interpolation failed (duplicate or zero abscissae —
    /// indicates a protocol violation by the peer).
    Interpolation(InterpolationError),
    /// Precomputed offline material was produced under a different
    /// configuration (OT engine, group, or OMPE parameters) than the
    /// session trying to consume it.
    ConfigMismatch {
        /// Fingerprint of the consuming session's configuration.
        expected: u64,
        /// Fingerprint the offline material was produced under.
        actual: u64,
    },
    /// The peer deviated from the protocol.
    Protocol(String),
}

impl fmt::Display for OmpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Params(msg) => write!(f, "invalid OMPE parameters: {msg}"),
            Self::SecretMismatch(msg) => write!(f, "secret polynomial mismatch: {msg}"),
            Self::Ot(e) => write!(f, "oblivious transfer failed: {e}"),
            Self::Transport(e) => write!(f, "transport failed: {e}"),
            Self::Interpolation(e) => write!(f, "retrieval interpolation failed: {e}"),
            Self::ConfigMismatch { expected, actual } => write!(
                f,
                "offline material config {actual:#018x} does not match session config {expected:#018x}"
            ),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for OmpeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ot(e) => Some(e),
            Self::Transport(e) => Some(e),
            Self::Interpolation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OtError> for OmpeError {
    fn from(e: OtError) -> Self {
        Self::Ot(e)
    }
}

impl From<TransportError> for OmpeError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<InterpolationError> for OmpeError {
    fn from(e: InterpolationError) -> Self {
        Self::Interpolation(e)
    }
}

impl From<OmpeError> for ProtocolError {
    fn from(e: OmpeError) -> Self {
        match e {
            // Delegate to the inner layering so transport and OT causes
            // land on their own layers instead of a blanket "protocol".
            OmpeError::Transport(t) => Self::from(t),
            OmpeError::Ot(o) => Self::from(o),
            OmpeError::Interpolation(_) => Self::new(ErrorLayer::Crypto, e),
            OmpeError::Params(_)
            | OmpeError::SecretMismatch(_)
            | OmpeError::ConfigMismatch { .. }
            | OmpeError::Protocol(_) => Self::new(ErrorLayer::Protocol, e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ompe_errors_map_to_layers() {
        let t: ProtocolError = OmpeError::Transport(TransportError::Disconnected).into();
        assert_eq!(t.layer(), ErrorLayer::Transport);
        let o: ProtocolError = OmpeError::Ot(OtError::UnequalMessageLengths).into();
        assert_eq!(o.layer(), ErrorLayer::Crypto);
        let p: ProtocolError = OmpeError::Protocol("bad cloud".into()).into();
        assert_eq!(p.layer(), ErrorLayer::Protocol);
        assert!(matches!(
            p.downcast_ref::<OmpeError>(),
            Some(OmpeError::Protocol(_))
        ));
    }
}
