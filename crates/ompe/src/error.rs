//! OMPE errors.

use core::fmt;

use ppcs_math::InterpolationError;
use ppcs_ot::OtError;
use ppcs_transport::TransportError;

/// Errors raised by the OMPE protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum OmpeError {
    /// Invalid protocol parameters.
    Params(String),
    /// The sender's secret polynomial exceeds the agreed degree bound or
    /// arity.
    SecretMismatch(String),
    /// Underlying oblivious-transfer failure.
    Ot(OtError),
    /// Underlying transport failure.
    Transport(TransportError),
    /// The retrieval interpolation failed (duplicate or zero abscissae —
    /// indicates a protocol violation by the peer).
    Interpolation(InterpolationError),
    /// The peer deviated from the protocol.
    Protocol(String),
}

impl fmt::Display for OmpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Params(msg) => write!(f, "invalid OMPE parameters: {msg}"),
            Self::SecretMismatch(msg) => write!(f, "secret polynomial mismatch: {msg}"),
            Self::Ot(e) => write!(f, "oblivious transfer failed: {e}"),
            Self::Transport(e) => write!(f, "transport failed: {e}"),
            Self::Interpolation(e) => write!(f, "retrieval interpolation failed: {e}"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for OmpeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ot(e) => Some(e),
            Self::Transport(e) => Some(e),
            Self::Interpolation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OtError> for OmpeError {
    fn from(e: OtError) -> Self {
        Self::Ot(e)
    }
}

impl From<TransportError> for OmpeError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<InterpolationError> for OmpeError {
    fn from(e: InterpolationError) -> Self {
        Self::Interpolation(e)
    }
}
