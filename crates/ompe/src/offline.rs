//! Offline/online phase split for OMPE.
//!
//! Everything an OMPE round does that is independent of the actual
//! inputs can run ahead of time, from reactor idle slots or a background
//! fill thread:
//!
//! * the **sender's** offline pack ([`OmpeSenderOffline`]) holds the OT
//!   base-phase commitment (one modular exponentiation for Naor–Pinkas)
//!   plus a queue of pre-drawn masking polynomials `M` with `M(0) = 0`;
//! * the **receiver's** offline pack ([`OmpeReceiverOffline`]) holds
//!   *blind rounds*: full point clouds drawn for a fixed input dimension
//!   with every cover polynomial's constant term left at zero, plus the
//!   Lagrange-at-zero weights over the cover abscissae. The online phase
//!   binds an input `α` by shifting each cover column by `α_i`
//!   (`S_i = S̄_i + α_i`), so for a fixed RNG stream the bound point
//!   cloud is byte-identical to the monolithic construction, and the
//!   retrieval interpolation collapses to one dot product.
//!
//! Offline material is **bound to the configuration that produced it**:
//! each pack carries a [`params_fingerprint`] mixing the OT engine
//! selector with the OMPE parameter set, and consumption under any other
//! configuration is refused with [`OmpeError::ConfigMismatch`] — stale
//! pool entries can never silently serve a session with different
//! security parameters. When a pack runs dry mid-batch the session falls
//! back to the inline (monolithic) construction, so exhaustion degrades
//! latency, never correctness.

use std::collections::VecDeque;

use bytes::BytesMut;
use ppcs_math::{interpolate_at_zero, interpolate_at_zero_weighted, lagrange_zero_weights};
use ppcs_math::{Algebra, PolyEval, Polynomial};
use ppcs_ot::{select_fingerprint, OtOfflineCommitment, OtSelect};
use ppcs_telemetry::Phase;
use rand::seq::index::sample;
use rand::RngCore;

use ppcs_transport::{encode_seq, Encodable, Frame, FrameIo};

use crate::error::OmpeError;
use crate::protocol::{OmpeParams, KIND_OMPE_POINTS};
use crate::session::{draw_distinct_points, OmpeReceiverSession, OmpeSenderSession, PreparedRound};

/// SplitMix64 finalizer: the avalanche step used to fold parameter words
/// into the fingerprint.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fingerprints an (OT engine, OMPE parameter set) configuration.
///
/// Offline packs record this value at precompute time; the online phase
/// refuses material whose fingerprint does not match the consuming
/// session's configuration. Distinct engines, groups, and parameter sets
/// map to distinct fingerprints (up to 64-bit collisions).
pub fn params_fingerprint(sel: OtSelect, params: &OmpeParams) -> u64 {
    let mut h = select_fingerprint(sel);
    for v in [
        params.degree_bound as u64,
        params.sigma as u64,
        params.decoy_factor as u64,
    ] {
        h = mix64(h ^ mix64(v.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    }
    h
}

/// Sender-side offline pack: the input-independent half of a sender
/// session, produced ahead of time and consumed by
/// [`OmpeSenderSession::new_precomputed_io`].
#[derive(Debug)]
pub struct OmpeSenderOffline<A: Algebra> {
    pub(crate) fingerprint: u64,
    pub(crate) commitment: OtOfflineCommitment,
    pub(crate) masks: VecDeque<Polynomial<A>>,
}

impl<A> OmpeSenderOffline<A>
where
    A: Algebra,
    A::Elem: Encodable,
{
    /// Draws the OT base-phase commitment and `rounds` masking
    /// polynomials (`M(0) = 0`, degree exactly the composite degree), all
    /// off the critical path.
    pub fn precompute(
        alg: &A,
        sel: OtSelect,
        params: &OmpeParams,
        rounds: usize,
        rng: &mut dyn RngCore,
    ) -> Self {
        let _span = ppcs_telemetry::span(Phase::Precompute);
        let commitment = OtOfflineCommitment::precompute(sel, rng);
        let mut masks = VecDeque::with_capacity(rounds);
        for _ in 0..rounds {
            let mut mask = Polynomial::zero();
            mask.refresh_random_with_constant(alg, params.composite_degree(), alg.zero(), rng);
            masks.push_back(mask);
        }
        Self {
            fingerprint: params_fingerprint(sel, params),
            commitment,
            masks,
        }
    }

    /// The configuration fingerprint this pack was produced under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// How many rounds' worth of masking polynomials remain.
    pub fn rounds_available(&self) -> usize {
        self.masks.len()
    }
}

/// One precomputed receiver round: a full point cloud with zero-constant
/// cover polynomials, ready to be bound to an input vector.
#[derive(Debug)]
pub(crate) struct BlindRound<A: Algebra> {
    /// All `N` abscissae, in submission order.
    xs: Vec<A::Elem>,
    /// Cover positions in OT-selection (sample) order.
    cover_positions: Vec<usize>,
    /// Cover positions in ascending submission order.
    cover_rows: Vec<usize>,
    /// The flattened submitted inputs with `S̄_i(x)` (zero constant) at
    /// covers and disguises elsewhere; binding adds `α_i` per cover slot.
    base_ys: Vec<A::Elem>,
    /// Lagrange-at-zero weights over `xs[cover_positions]`, in that
    /// order — the order retrieval returns the masked answers in.
    zero_weights: Vec<A::Elem>,
    /// Input dimension the round was drawn for.
    dim: usize,
}

impl<A> BlindRound<A>
where
    A: Algebra,
    A::Elem: Encodable,
{
    /// Draws one blind round, consuming the RNG in exactly the order the
    /// monolithic [`OmpeReceiverSession::prepare_round`] does (cover
    /// refreshes, abscissae, cover sampling, disguises in position
    /// order), so that binding reproduces its point cloud byte for byte.
    fn precompute(
        alg: &A,
        params: &OmpeParams,
        dim: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self, OmpeError> {
        if dim == 0 {
            return Err(OmpeError::Params("input dimension must be ≥ 1".into()));
        }
        let n_covers = params.num_covers();
        let n_points = params.num_points();

        let mut cover_polys = Vec::with_capacity(dim);
        for _ in 0..dim {
            let mut poly = Polynomial::zero();
            poly.refresh_random_with_constant(alg, params.sigma, alg.zero(), rng);
            cover_polys.push(poly);
        }
        let xs = draw_distinct_points(alg, n_points, rng);
        let cover_positions: Vec<usize> = sample(rng, n_points, n_covers).into_vec();
        let mut is_cover = vec![false; n_points];
        for &pos in &cover_positions {
            is_cover[pos] = true;
        }
        let cover_xs: Vec<A::Elem> = (0..n_points)
            .filter(|&i| is_cover[i])
            .map(|i| xs[i].clone())
            .collect();
        let cover_evals: Vec<Vec<A::Elem>> = cover_polys
            .iter()
            .map(|poly| poly.eval_many(alg, &cover_xs))
            .collect();
        let mut base_ys = Vec::with_capacity(n_points * dim);
        let mut cover_rank = 0usize;
        for &cover in is_cover.iter().take(n_points) {
            if cover {
                for evals in &cover_evals {
                    base_ys.push(evals[cover_rank].clone());
                }
                cover_rank += 1;
            } else {
                for _ in 0..dim {
                    base_ys.push(alg.random_disguise(rng));
                }
            }
        }
        let weight_xs: Vec<A::Elem> = cover_positions.iter().map(|&p| xs[p].clone()).collect();
        let zero_weights = lagrange_zero_weights(alg, &weight_xs)?;
        let cover_rows: Vec<usize> = (0..n_points).filter(|&i| is_cover[i]).collect();
        Ok(Self {
            xs,
            cover_positions,
            cover_rows,
            base_ys,
            zero_weights,
            dim,
        })
    }

    /// Binds the blind round to a concrete input: shifts each cover
    /// column by `α_i` and encodes the point-cloud frame. Returns the
    /// prepared round plus the precomputed retrieval weights. Consumes
    /// the round — binding is the online phase's hot path, and moving
    /// the precomputed vectors keeps it allocation-free apart from the
    /// wire frame itself.
    fn bind(
        mut self,
        alg: &A,
        alpha: &[A::Elem],
    ) -> Result<(PreparedRound<A>, Vec<A::Elem>), OmpeError> {
        if alpha.len() != self.dim {
            return Err(OmpeError::Params(format!(
                "offline round was precomputed for dimension {}, input has dimension {}",
                self.dim,
                alpha.len()
            )));
        }
        let _span = ppcs_telemetry::span(Phase::OmpePointCloud);
        for &pos in &self.cover_rows {
            for (i, a) in alpha.iter().enumerate() {
                let slot = pos * self.dim + i;
                self.base_ys[slot] = alg.add(&self.base_ys[slot], a);
            }
        }
        let mut payload = BytesMut::new();
        encode_seq(&self.xs, &mut payload);
        encode_seq(&self.base_ys, &mut payload);
        let frame = Frame::encode(KIND_OMPE_POINTS, &payload.to_vec());
        Ok((
            PreparedRound::from_parts(frame, self.xs, self.cover_positions),
            self.zero_weights,
        ))
    }
}

/// Receiver-side offline pack: blind rounds for a fixed parameter set and
/// input dimension, consumed by [`ompe_receive_batch_offline_io`].
#[derive(Debug)]
pub struct OmpeReceiverOffline<A: Algebra> {
    fingerprint: u64,
    dim: usize,
    rounds: VecDeque<BlindRound<A>>,
}

impl<A> OmpeReceiverOffline<A>
where
    A: Algebra,
    A::Elem: Encodable,
{
    /// Draws `rounds` blind rounds for inputs of dimension `dim`.
    ///
    /// # Errors
    ///
    /// [`OmpeError::Params`] if `dim` is zero; interpolation errors if a
    /// drawn abscissa set is degenerate (cannot happen for honest draws).
    pub fn precompute(
        alg: &A,
        sel: OtSelect,
        params: &OmpeParams,
        dim: usize,
        rounds: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self, OmpeError> {
        let _span = ppcs_telemetry::span(Phase::Precompute);
        let mut queue = VecDeque::with_capacity(rounds);
        for _ in 0..rounds {
            queue.push_back(BlindRound::precompute(alg, params, dim, rng)?);
        }
        Ok(Self {
            fingerprint: params_fingerprint(sel, params),
            dim,
            rounds: queue,
        })
    }

    /// The configuration fingerprint this pack was produced under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The input dimension the rounds were drawn for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// How many blind rounds remain.
    pub fn rounds_available(&self) -> usize {
        self.rounds.len()
    }

    pub(crate) fn pop_round(&mut self) -> Option<BlindRound<A>> {
        self.rounds.pop_front()
    }
}

/// Sender side of a batch of OMPE rounds using precomputed offline
/// material: the online phase is reduced to evaluating the secret on the
/// received clouds and running the oblivious transfers.
///
/// The offline pack is consumed whole (its commitment is single-use);
/// rounds beyond the pack's mask supply fall back to inline draws.
///
/// # Errors
///
/// [`OmpeError::ConfigMismatch`] if `offline` was produced under a
/// different configuration, plus every error of
/// [`ompe_send_batch_io`](crate::session::ompe_send_batch_io).
pub async fn ompe_send_batch_offline_io<A, P>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    secrets: &[P],
    params: &OmpeParams,
    offline: OmpeSenderOffline<A>,
) -> Result<(), OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
    P: PolyEval<A>,
{
    if secrets.is_empty() {
        return Ok(());
    }
    let mut session = OmpeSenderSession::new_precomputed_io(io, sel, *params, offline)?;
    for secret in secrets {
        session.check_degree(secret)?;
    }
    // Same coalescing contract as the monolithic batch: drain every
    // point cloud before any per-round OT traffic starts.
    let mut clouds = Vec::with_capacity(secrets.len());
    for secret in secrets {
        clouds.push(session.recv_cloud_io(io, secret.num_vars()).await?);
    }
    for (secret, cloud) in secrets.iter().zip(&clouds) {
        session
            .answer_cloud_io(alg, io, sel, rng, secret, cloud)
            .await?;
    }
    Ok(())
}

/// Single-round sender using precomputed offline material; backs the
/// multiclass and similarity protocols' offline paths.
///
/// # Errors
///
/// Same as [`ompe_send_batch_offline_io`].
pub async fn ompe_send_offline_io<A, P>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    secret: &P,
    params: &OmpeParams,
    offline: OmpeSenderOffline<A>,
) -> Result<(), OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
    P: PolyEval<A> + ?Sized,
{
    let mut session = OmpeSenderSession::new_precomputed_io(io, sel, *params, offline)?;
    session.send_round_io(alg, io, sel, rng, secret).await
}

/// Receiver side of a batch of OMPE rounds using precomputed blind
/// rounds: the online phase binds each input into a ready point cloud
/// and retrieves each value through a precomputed-weight dot product.
/// Rounds beyond the pack's supply fall back to the inline construction.
///
/// # Errors
///
/// [`OmpeError::ConfigMismatch`] if `offline` was produced under a
/// different configuration, plus every error of
/// [`ompe_receive_batch_io`](crate::session::ompe_receive_batch_io).
pub async fn ompe_receive_batch_offline_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    alphas: &[Vec<A::Elem>],
    params: &OmpeParams,
    offline: &mut OmpeReceiverOffline<A>,
) -> Result<Vec<A::Elem>, OmpeError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    if alphas.is_empty() {
        return Ok(Vec::new());
    }
    let expected = params_fingerprint(sel, params);
    if offline.fingerprint != expected {
        return Err(OmpeError::ConfigMismatch {
            expected,
            actual: offline.fingerprint,
        });
    }
    let mut session = OmpeReceiverSession::new_io(io, sel, *params).await?;
    let mut rounds = Vec::with_capacity(alphas.len());
    let mut weights = Vec::with_capacity(alphas.len());
    for alpha in alphas {
        match offline.pop_round() {
            Some(blind) => {
                let (round, w) = blind.bind(alg, alpha)?;
                rounds.push(round);
                weights.push(Some(w));
            }
            None => {
                rounds.push(session.prepare_round(alg, rng, alpha)?);
                weights.push(None);
            }
        }
    }
    let frames: Vec<Frame> = rounds.iter().map(PreparedRound::frame).collect();
    io.send_coalesced(&frames)?;
    let mut out = Vec::with_capacity(rounds.len());
    for (round, w) in rounds.iter().zip(&weights) {
        let points = session.finish_round_points_io(io, sel, rng, round).await?;
        let _span = ppcs_telemetry::span(Phase::OmpeInterpolate);
        let value = match w {
            Some(weights) => {
                let ys: Vec<A::Elem> = points.into_iter().map(|(_, y)| y).collect();
                interpolate_at_zero_weighted(alg, weights, &ys)?
            }
            None => interpolate_at_zero(alg, &points)?,
        };
        out.push(value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ompe_receive_batch_io, ompe_send_batch_io};
    use ppcs_math::{FixedFpAlgebra, MvPolynomial};
    use ppcs_ot::{NaorPinkasOt, ObliviousTransfer, TrustedSimOt};
    use ppcs_transport::{run_engine_pair, ProtocolEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    static SIM: TrustedSimOt = TrustedSimOt;

    fn test_setup() -> (
        FixedFpAlgebra,
        MvPolynomial<FixedFpAlgebra>,
        Vec<Vec<ppcs_math::Fp256>>,
        OmpeParams,
    ) {
        let alg = FixedFpAlgebra::new(16);
        let weights = vec![alg.encode(1.5, 1), alg.encode(-2.0, 1)];
        let secret = MvPolynomial::affine(&alg, &weights, alg.encode(3.0, 2));
        let alphas: Vec<Vec<_>> = (0..4)
            .map(|i| {
                let v = f64::from(i) * 0.25 - 0.5;
                vec![alg.encode(v, 1), alg.encode(-v, 1)]
            })
            .collect();
        let params = OmpeParams::new(1, 4, 3).unwrap();
        (alg, secret, alphas, params)
    }

    fn run_monolithic(sel: OtSelect, seed_s: u64, seed_r: u64) -> Vec<ppcs_math::Fp256> {
        let (alg, secret, alphas, params) = test_setup();
        let secrets = vec![secret; alphas.len()];
        let mut rng_s = StdRng::seed_from_u64(seed_s);
        let mut rng_r = StdRng::seed_from_u64(seed_r);
        let mut sender = ProtocolEngine::new(|io| async move {
            ompe_send_batch_io(&alg, &io, sel, &mut rng_s, &secrets, &params).await
        });
        let mut receiver = ProtocolEngine::new(|io| async move {
            ompe_receive_batch_io(&alg, &io, sel, &mut rng_r, &alphas, &params).await
        });
        let (sent, received) = run_engine_pair(&mut sender, &mut receiver).expect("pump");
        sent.expect("send ok");
        received.expect("receive ok")
    }

    fn run_offline(
        sel: OtSelect,
        seed_s: u64,
        seed_r: u64,
        sender_rounds: usize,
        receiver_rounds: usize,
    ) -> Vec<ppcs_math::Fp256> {
        let (alg, secret, alphas, params) = test_setup();
        let secrets = vec![secret; alphas.len()];
        // Sender offline material comes from an unrelated RNG: the masks
        // cancel at zero, so the outputs cannot depend on it. The
        // receiver threads ONE stream through precompute and the online
        // phase, mirroring the monolithic prepare-then-finish order.
        let mut rng_off = StdRng::seed_from_u64(seed_s ^ 0xDEAD_BEEF);
        let sender_off =
            OmpeSenderOffline::precompute(&alg, sel, &params, sender_rounds, &mut rng_off);
        let mut rng_s = StdRng::seed_from_u64(seed_s);
        let mut rng_r = StdRng::seed_from_u64(seed_r);
        let mut receiver_off =
            OmpeReceiverOffline::precompute(&alg, sel, &params, 2, receiver_rounds, &mut rng_r)
                .unwrap();
        let mut sender = ProtocolEngine::new(|io| async move {
            ompe_send_batch_offline_io(&alg, &io, sel, &mut rng_s, &secrets, &params, sender_off)
                .await
        });
        let mut receiver = ProtocolEngine::new(|io| async move {
            ompe_receive_batch_offline_io(
                &alg,
                &io,
                sel,
                &mut rng_r,
                &alphas,
                &params,
                &mut receiver_off,
            )
            .await
        });
        let (sent, received) = run_engine_pair(&mut sender, &mut receiver).expect("pump");
        sent.expect("send ok");
        received.expect("receive ok")
    }

    #[test]
    fn offline_batch_is_bit_identical_to_monolithic() {
        let sel = SIM.select();
        let mono = run_monolithic(sel, 21, 22);
        let off = run_offline(sel, 21, 22, 4, 4);
        assert_eq!(mono, off, "offline/online split must not change outputs");
    }

    #[test]
    fn offline_batch_over_naor_pinkas() {
        static CELL: std::sync::OnceLock<NaorPinkasOt> = std::sync::OnceLock::new();
        let ot: &'static dyn ObliviousTransfer = CELL.get_or_init(NaorPinkasOt::fast_insecure);
        let sel = ot.select();
        let mono = run_monolithic(sel, 31, 32);
        let off = run_offline(sel, 31, 32, 4, 4);
        assert_eq!(mono, off);
    }

    #[test]
    fn exhausted_packs_fall_back_inline() {
        // Fewer offline rounds than batch rounds on both sides: the tail
        // runs inline and the outputs stay correct (not bit-identical to
        // the monolithic run — the RNG streams diverge — but exact).
        let (alg, _, alphas, _) = test_setup();
        let sel = SIM.select();
        let values = run_offline(sel, 51, 52, 1, 2);
        for (alpha, got) in alphas.iter().zip(&values) {
            let a = alg.decode(&alpha[0], 1);
            let b = alg.decode(&alpha[1], 1);
            let want = 1.5 * a - 2.0 * b + 3.0;
            assert!(
                (alg.decode(got, 2) - want).abs() < 1e-3,
                "{} vs {want}",
                alg.decode(got, 2)
            );
        }
    }

    #[test]
    fn blind_round_binds_to_monolithic_bytes() {
        // Same RNG stream ⇒ the bound point-cloud frame is byte-identical
        // to the monolithic construction.
        let (alg, _, alphas, params) = test_setup();
        let sel = SIM.select();
        let alpha = &alphas[1];
        let mut rng_mono = StdRng::seed_from_u64(7);
        let mut mono = OmpeReceiverSession::single_shot(params);
        let round_mono = mono.prepare_round(&alg, &mut rng_mono, alpha).unwrap();
        let mut rng_off = StdRng::seed_from_u64(7);
        let mut off =
            OmpeReceiverOffline::precompute(&alg, sel, &params, 2, 1, &mut rng_off).unwrap();
        let blind = off.pop_round().unwrap();
        let (round_off, weights) = blind.bind(&alg, alpha).unwrap();
        assert_eq!(round_mono.frame().payload, round_off.frame().payload);
        assert_eq!(weights.len(), params.num_covers());
    }

    #[test]
    fn cross_config_consumption_is_refused() {
        let (alg, secret, alphas, params) = test_setup();
        let sel = SIM.select();
        let other = OmpeParams::new(1, 5, 3).unwrap();
        assert_ne!(
            params_fingerprint(sel, &params),
            params_fingerprint(sel, &other)
        );

        // Sender pack produced under `other`, consumed under `params`.
        let mut rng = StdRng::seed_from_u64(61);
        let stale = OmpeSenderOffline::precompute(&alg, sel, &other, 1, &mut rng);
        let io = FrameIo::new();
        let err = OmpeSenderSession::new_precomputed_io(&io, sel, params, stale).unwrap_err();
        assert!(matches!(err, OmpeError::ConfigMismatch { .. }), "{err}");

        // Receiver pack produced under `other`, consumed under `params`.
        let mut stale_r =
            OmpeReceiverOffline::precompute(&alg, sel, &other, 2, 1, &mut rng).unwrap();
        let mut rng_r = StdRng::seed_from_u64(62);
        let mut receiver = ProtocolEngine::new(|io| async move {
            ompe_receive_batch_offline_io(
                &alg,
                &io,
                sel,
                &mut rng_r,
                &alphas,
                &params,
                &mut stale_r,
            )
            .await
        });
        let mut idle = ProtocolEngine::new(|_io| async move { Ok::<(), OmpeError>(()) });
        let (received, _) = run_engine_pair(&mut receiver, &mut idle).expect("pump");
        assert!(matches!(
            received.unwrap_err(),
            OmpeError::ConfigMismatch { .. }
        ));
        let _ = secret;
    }

    #[test]
    fn fingerprints_separate_parameter_sets() {
        let sel = SIM.select();
        let sets = [
            OmpeParams::new(1, 4, 3).unwrap(),
            OmpeParams::new(1, 4, 4).unwrap(),
            OmpeParams::new(1, 5, 3).unwrap(),
            OmpeParams::new(2, 4, 3).unwrap(),
            OmpeParams::new(4, 1, 3).unwrap(),
        ];
        let prints: Vec<u64> = sets.iter().map(|p| params_fingerprint(sel, p)).collect();
        for (i, a) in prints.iter().enumerate() {
            for (j, b) in prints.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "sets {i} and {j} collide");
            }
        }
    }
}
