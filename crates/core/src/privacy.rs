//! The privacy experiments of Section VI-A: the model-estimation attack
//! (Fig. 5) and the tangent/distance-based retrieval attack (Fig. 6).
//!
//! Both experiments play a *colluding client coalition* that pools the
//! values it received from classification sessions and tries to
//! reconstruct the trainer's linear decision function. The defense under
//! test is the amplifier randomization: every session returns
//! `r_a·d(t̃)` with a fresh positive `r_a`, so pooled values are mutually
//! inconsistent and least-squares estimation rambles (Fig. 5); without
//! the amplifier, `n + 1` exact distance values pin the hyperplane down
//! (Fig. 6).
//!
//! **Reproduction finding.** The fresh amplifier is multiplicative,
//! *positive* noise, so `E[r_a·d(t) | t] ∝ d(t)`: least squares over the
//! pooled values is a *consistent* (if slow) estimator of the boundary
//! direction. At the coalition sizes the paper plots (≤ 50 samples) the
//! estimates do ramble exactly as Fig. 5 shows — the heavy-tailed
//! amplifier keeps the effective noise-to-signal ratio near 0.58 per
//! sample — but the protection is statistical degradation, not
//! information-theoretic hiding, and it thins as collusion grows.
//! `EXPERIMENTS.md` quantifies the convergence rate.

use rand::Rng;
use rand::RngCore;

/// Outcome of one estimation attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimationOutcome {
    /// Number of pooled classification values used.
    pub num_samples: usize,
    /// The estimated weight vector (normalized).
    pub estimated_direction: Vec<f64>,
    /// The estimated offset (of the normalized line).
    pub estimated_offset: f64,
    /// Angle between the estimated and true hyperplanes, in degrees.
    pub angle_error_deg: f64,
}

/// Simulates the Fig. 5 experiment: a coalition holding `num_samples`
/// randomized values `r_aᵢ·d(tᵢ)` (fresh `r_aᵢ` each, as the protocol
/// mandates) fits a linear model by least squares.
///
/// With fewer than `n + 1` samples the system is underdetermined and the
/// solver returns the minimum-norm-ish solution with singular directions
/// zeroed — exactly the "rambling" estimates Fig. 5 plots at 2 samples.
///
/// # Panics
///
/// Panics if `true_w` is empty or `num_samples < 2`.
pub fn estimation_attack(
    true_w: &[f64],
    true_b: f64,
    num_samples: usize,
    amplifier_bits: u32,
    fresh_amplifiers: bool,
    rng: &mut dyn RngCore,
) -> EstimationOutcome {
    let n = true_w.len();
    assert!(n >= 1, "need at least one dimension");
    assert!(num_samples >= 2, "need at least two samples to fit a line");

    let fixed_ra = draw_amplifier(amplifier_bits, rng);
    let mut points = Vec::with_capacity(num_samples);
    let mut values = Vec::with_capacity(num_samples);
    for _ in 0..num_samples {
        let t: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d: f64 = ppcs_svm::dot(true_w, &t) + true_b;
        let ra = if fresh_amplifiers {
            draw_amplifier(amplifier_bits, rng)
        } else {
            fixed_ra
        };
        points.push(t);
        values.push(ra * d);
    }

    // Least squares for (w, b): minimize Σ (w·tᵢ + b − vᵢ)².
    let (est_w, est_b) = least_squares_fit(&points, &values);
    let angle = hyperplane_angle_deg(true_w, &est_w);
    let norm: f64 = est_w.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
    EstimationOutcome {
        num_samples,
        estimated_direction: est_w.iter().map(|v| v / norm).collect(),
        estimated_offset: est_b / norm,
        angle_error_deg: angle,
    }
}

/// Outcome of the Fig. 6 retrieval experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct RetrievalOutcome {
    /// Angle between the reconstructed and true boundary, in degrees.
    pub angle_error_deg: f64,
    /// Offset error of the reconstructed boundary (after direction
    /// normalization).
    pub offset_error: f64,
    /// `true` if the reconstruction recovered the boundary (small angle
    /// and offset error).
    pub recovered: bool,
}

/// Simulates the Fig. 6 retrieval attack: with **un-randomized** decision
/// values (`amplified = false`), `n + 1` exact values determine the
/// hyperplane — reconstruction succeeds. With per-query amplification
/// (`amplified = true`), it fails.
///
/// # Panics
///
/// Panics if `true_w` is empty or `num_points < true_w.len() + 1`.
pub fn retrieval_attack(
    true_w: &[f64],
    true_b: f64,
    num_points: usize,
    amplified: bool,
    amplifier_bits: u32,
    rng: &mut dyn RngCore,
) -> RetrievalOutcome {
    let outcome = estimation_attack(true_w, true_b, num_points, amplifier_bits, amplified, rng);
    // Normalize the true boundary for offset comparison.
    let wn: f64 = ppcs_svm::dot(true_w, true_w).sqrt();
    let true_offset = true_b / wn;
    let offset_error = (outcome.estimated_offset.abs() - true_offset.abs()).abs();
    let recovered = outcome.angle_error_deg < 1.0 && offset_error < 0.05;
    RetrievalOutcome {
        angle_error_deg: outcome.angle_error_deg,
        offset_error,
        recovered,
    }
}

/// The angle between two hyperplanes (via their normals), in degrees,
/// folded into `[0°, 90°]`.
pub fn hyperplane_angle_deg(a: &[f64], b: &[f64]) -> f64 {
    let num = ppcs_svm::dot(a, b).abs();
    let den = (ppcs_svm::dot(a, a) * ppcs_svm::dot(b, b)).sqrt();
    if den == 0.0 {
        return 90.0;
    }
    (num / den).clamp(0.0, 1.0).acos().to_degrees()
}

fn draw_amplifier(bits: u32, rng: &mut dyn RngCore) -> f64 {
    rng.gen_range(2..(1i64 << bits)) as f64
}

/// Ordinary least squares for `w·t + b ≈ v` via normal equations —
/// the estimator the colluding coalition of Fig. 5 uses.
///
/// Returns `(w, b)`.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn least_squares_fit(points: &[Vec<f64>], values: &[f64]) -> (Vec<f64>, f64) {
    assert!(!points.is_empty(), "least squares needs data");
    let n = points[0].len();
    let dim = n + 1; // homogeneous coordinate for b
    let mut ata = vec![vec![0.0f64; dim]; dim];
    let mut atv = vec![0.0f64; dim];
    for (t, &v) in points.iter().zip(values) {
        let mut row = Vec::with_capacity(dim);
        row.extend_from_slice(t);
        row.push(1.0);
        for i in 0..dim {
            for j in 0..dim {
                ata[i][j] += row[i] * row[j];
            }
            atv[i] += row[i] * v;
        }
    }
    let sol = gauss_solve(&mut ata, &mut atv);
    let (w, b) = sol.split_at(n);
    (w.to_vec(), b[0])
}

/// Gaussian elimination with partial pivoting (tiny systems only).
#[allow(clippy::needless_range_loop)] // triangular index arithmetic
fn gauss_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular direction; leave as zero
        }
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-12 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TRUE_W: [f64; 2] = [0.8, -0.6];
    const TRUE_B: f64 = 0.15;

    #[test]
    fn unrandomized_values_leak_the_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = retrieval_attack(&TRUE_W, TRUE_B, 3, false, 16, &mut rng);
        assert!(
            outcome.recovered,
            "3 exact distance values must pin down a 2-D line: {outcome:?}"
        );
        assert!(outcome.angle_error_deg < 1e-6);
    }

    #[test]
    fn fixed_amplifier_still_leaks_the_boundary_direction() {
        // With a *reused* r_a, the scaled function (r_a·w, r_a·b) has the
        // same zero set: the attacker recovers the boundary exactly.
        // This is why the protocol draws a fresh amplifier per query.
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = estimation_attack(&TRUE_W, TRUE_B, 10, 16, false, &mut rng);
        assert!(
            outcome.angle_error_deg < 1e-6,
            "fixed amplifier leaks direction: {outcome:?}"
        );
    }

    #[test]
    fn fresh_amplifiers_make_small_coalitions_ramble() {
        // Fig. 5's plotted regime: at ≤ 50 pooled samples the estimates
        // are far from the model and unstable across trials.
        let mut rng = StdRng::seed_from_u64(3);
        let errors: Vec<f64> = (0..20)
            .map(|_| estimation_attack(&TRUE_W, TRUE_B, 10, 16, true, &mut rng).angle_error_deg)
            .collect();
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let spread = errors.iter().cloned().fold(0.0, f64::max)
            - errors.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(mean > 5.0, "estimates should ramble; mean error {mean}°");
        assert!(
            spread > 5.0,
            "estimates should be unstable; spread {spread}°"
        );
    }

    #[test]
    fn estimation_converges_only_slowly_with_collusion() {
        // Reproduction finding (see module docs): positive multiplicative
        // amplification degrades but does not destroy the direction
        // signal — error shrinks with coalition size, yet at 100 pooled
        // samples it remains well above the un-randomized case's zero.
        let mut rng = StdRng::seed_from_u64(4);
        let avg = |k: usize, rng: &mut StdRng| -> f64 {
            (0..10)
                .map(|_| estimation_attack(&TRUE_W, TRUE_B, k, 16, true, rng).angle_error_deg)
                .sum::<f64>()
                / 10.0
        };
        let few = avg(4, &mut rng);
        let many = avg(100, &mut rng);
        assert!(few > many, "more collusion should help the attacker");
        assert!(
            many > 0.5,
            "even 100 pooled samples should leave nontrivial error, got {many}°"
        );
        assert!(few > 10.0, "tiny coalitions should be far off, got {few}°");
    }

    #[test]
    fn randomized_retrieval_fails_at_minimal_points() {
        // Fig. 6's regime: n+1 = 3 exact values pin the line down, but
        // the same 3 *randomized* values almost never do.
        let mut rng = StdRng::seed_from_u64(5);
        let mut randomized = 0;
        let mut exact = 0;
        for _ in 0..20 {
            if retrieval_attack(&TRUE_W, TRUE_B, 3, true, 16, &mut rng).recovered {
                randomized += 1;
            }
            if retrieval_attack(&TRUE_W, TRUE_B, 3, false, 16, &mut rng).recovered {
                exact += 1;
            }
        }
        assert_eq!(exact, 20, "exact distances always reconstruct");
        assert!(
            randomized <= 2,
            "randomized distances should almost never allow retrieval, got {randomized}/20"
        );
    }

    #[test]
    fn least_squares_recovers_exact_linear_system() {
        let points = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let values: Vec<f64> = points.iter().map(|t| 2.0 * t[0] - t[1] + 0.5).collect();
        let (w, b) = least_squares_fit(&points, &values);
        assert!((w[0] - 2.0).abs() < 1e-9);
        assert!((w[1] + 1.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn angle_is_fold_symmetric() {
        assert!((hyperplane_angle_deg(&[1.0, 0.0], &[-1.0, 0.0]) - 0.0).abs() < 1e-9);
        assert!((hyperplane_angle_deg(&[1.0, 0.0], &[0.0, 1.0]) - 90.0).abs() < 1e-9);
        assert!((hyperplane_angle_deg(&[1.0, 0.0], &[1.0, 1.0]) - 45.0).abs() < 1e-9);
    }
}
