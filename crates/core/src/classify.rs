//! Privacy-preserving data classification (Section IV of the paper).
//!
//! Roles: the **trainer** (Alice) holds a trained SVM; the **client**
//! (Bob) holds unlabeled samples. After a session the client knows only
//! the predicted class of each sample — the sign of an
//! amplifier-randomized decision value — and the trainer has learned
//! nothing about the samples.
//!
//! Linear models run OMPE directly on the decision function
//! `d(t) = wᵀt + b` (§IV-A). Nonlinear models are first rewritten as a
//! linear function of monomial features `τ` (§IV-B, see
//! [`expansion`](crate::expansion)); the client maps `t̃ ↦ τ̃` locally and
//! the same machinery applies, with the masking degree raised to `p·q` as
//! in the paper.
//!
//! A **fresh amplifier `r_a` is drawn per classification**: Section VI-A
//! shows that reusing one would let a colluding client reconstruct the
//! hyperplane from `n + 1` exact distance values (the tangent attack of
//! Fig. 6, implemented in [`privacy`](crate::privacy)).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use ppcs_math::{Algebra, DenseAffine};
use ppcs_ompe::{
    ompe_receive_batch_io, ompe_receive_batch_offline_io, ompe_receive_io, ompe_send_batch_io,
    ompe_send_batch_offline_io, ompe_send_io, ompe_send_offline_io, params_fingerprint, OmpeError,
    OmpeParams, OmpeReceiverOffline, OmpeSenderOffline,
};
use ppcs_ot::{ObliviousTransfer, OtError, OtSelect};
use ppcs_svm::{Kernel, Label, SvmModel};
use ppcs_telemetry::Phase;
use ppcs_transport::{
    drive_blocking, Encodable, Frame, FrameIo, Lane, ProtocolEngine, TransportError,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::config::ProtocolConfig;
use crate::error::PpcsError;
use crate::expansion::{expand_model, BasisKind};

pub(crate) const KIND_CLS_HELLO: u16 = 0x0500;
pub(crate) const KIND_CLS_SPEC: u16 = 0x0501;
/// Sent by the parallel client to tell a trainer lane that no more
/// sessions are coming, so its serve loop can finish cleanly.
pub(crate) const KIND_CLS_FIN: u16 = 0x0502;
/// Opens a **warm** session: `[num_samples, spec_hash]`. A repeat client
/// presents the hash of the spec it cached from an earlier session so
/// the trainer can skip re-announcing it.
pub(crate) const KIND_CLS_WARM_HELLO: u16 = 0x0503;
/// The trainer's warm-session reply: `[1]` confirms the cached spec is
/// still current; `[0, spec…]` re-announces the full spec.
pub(crate) const KIND_CLS_TICKET: u16 = 0x0504;

/// The transport failure at the root of a classification error, if any —
/// however deep it sits (direct, under OMPE, or under OMPE's OT layer).
/// Transport failures are transient and make a lane worth retrying;
/// everything else is deterministic and would just fail again.
pub(crate) fn transport_cause(e: &PpcsError) -> Option<&TransportError> {
    match e {
        PpcsError::Transport(te) => Some(te),
        PpcsError::Ompe(OmpeError::Transport(te)) => Some(te),
        PpcsError::Ompe(OmpeError::Ot(OtError::Transport(te))) => Some(te),
        _ => None,
    }
}

/// Fixed-point scale power of the decision value both sides decode at
/// (inputs and coefficients sit at scale 1, so products sit at 2).
const OUTPUT_SCALE: u32 = 2;

/// Upper bound on the per-session batch size a trainer accepts from the
/// client's HELLO. The trainer allocates one amplified secret per
/// requested sample before serving anything, so an unchecked peer-chosen
/// count is an allocation vector.
pub const MAX_BATCH_SAMPLES: u64 = 4096;

/// Upper bound on the sample dimensionality a wire-decoded spec may
/// declare, and on the monomial arity it may expand to.
pub(crate) const MAX_SPEC_DIM: usize = 4096;
pub(crate) const MAX_SPEC_ARITY: u64 = 1 << 20;

/// How the client must derive the OMPE input vector from a raw sample —
/// public protocol metadata sent by the trainer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputForm {
    /// Use the sample coordinates directly (linear models).
    Direct,
    /// Map the sample to monomial features in the given basis
    /// (expanded nonlinear models).
    Monomials(BasisKind),
}

/// The public session header describing the protocol instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassifySpec {
    /// Raw sample dimensionality `n`.
    pub dim: usize,
    /// Input derivation rule.
    pub input_form: InputForm,
    /// OMPE parameters (degree bound, masking degree, decoy factor).
    pub ompe: OmpeParams,
}

impl ClassifySpec {
    /// Arity of the OMPE input vector.
    pub fn input_arity(&self) -> usize {
        match self.input_form {
            InputForm::Direct => self.dim,
            InputForm::Monomials(basis) => {
                basis.len(self.dim).expect("validated at construction") as usize
            }
        }
    }

    /// A short commitment to the wire form of this spec, used by warm
    /// sessions to skip the spec exchange when the cached copy is still
    /// current. Not collision-resistant against adversaries — a stale
    /// match only costs one re-announcement, never correctness.
    pub(crate) fn wire_hash(&self) -> u64 {
        let mut acc = 0xC1A5_51F7_5EC0_0001u64;
        for field in self.encode_wire() {
            acc = mix64(acc ^ field);
        }
        acc
    }

    pub(crate) fn encode_wire(&self) -> Vec<u64> {
        let (tag, degree) = match self.input_form {
            InputForm::Direct => (0u64, 0u64),
            InputForm::Monomials(BasisKind::Homogeneous { degree }) => (1, degree as u64),
            InputForm::Monomials(BasisKind::UpTo { degree }) => (2, degree as u64),
        };
        vec![
            self.dim as u64,
            tag,
            degree,
            self.ompe.degree_bound as u64,
            self.ompe.sigma as u64,
            self.ompe.decoy_factor as u64,
        ]
    }

    pub(crate) fn decode_wire(fields: &[u64]) -> Result<Self, PpcsError> {
        let [dim, tag, degree, bound, sigma, decoy] = fields else {
            return Err(PpcsError::Protocol("malformed classify spec".into()));
        };
        // The spec arrives from the peer: every field is bounds-checked
        // before any sizing computation depends on it.
        let dim = usize::try_from(*dim)
            .ok()
            .filter(|d| (1..=MAX_SPEC_DIM).contains(d))
            .ok_or_else(|| {
                PpcsError::Protocol(format!(
                    "spec dimensionality {dim} outside [1, {MAX_SPEC_DIM}]"
                ))
            })?;
        let degree = u32::try_from(*degree)
            .map_err(|_| PpcsError::Protocol(format!("spec degree {degree} exceeds u32")))?;
        let input_form = match tag {
            0 => InputForm::Direct,
            1 => InputForm::Monomials(BasisKind::Homogeneous { degree }),
            2 => InputForm::Monomials(BasisKind::UpTo { degree }),
            _ => return Err(PpcsError::Protocol(format!("unknown input form {tag}"))),
        };
        // `input_arity` unwraps the basis size, so a dim/degree pair
        // whose monomial count overflows or explodes must fail here —
        // a typed error, not a later panic or allocation.
        if let InputForm::Monomials(basis) = input_form {
            basis
                .len(dim)
                .filter(|&arity| arity <= MAX_SPEC_ARITY)
                .ok_or_else(|| {
                    PpcsError::Protocol(format!(
                        "monomial basis for dim {dim}, degree {degree} exceeds \
                         arity cap {MAX_SPEC_ARITY}"
                    ))
                })?;
        }
        let ompe = OmpeParams::new(*bound as usize, *sigma as usize, *decoy as usize)?;
        Ok(Self {
            dim,
            input_form,
            ompe,
        })
    }
}

/// The trainer role: owns the (encoded, unamplified) secret decision
/// polynomial and serves classification sessions.
///
/// # Examples
///
/// See [`Client`] for a full two-party example.
pub struct Trainer<A: Algebra> {
    alg: A,
    cfg: ProtocolConfig,
    base: DenseAffine<A>,
    spec: ClassifySpec,
    /// The serving process's incarnation, advertised in the cold `SPEC`,
    /// the warm `TICKET`, and `KIND_HEALTH` replies. A restarted trainer
    /// bumps it so clients holding cached specs or resume state from the
    /// previous incarnation fall back to a cold start.
    epoch: u64,
}

impl<A: Algebra> Trainer<A>
where
    A::Elem: Encodable,
{
    /// Prepares a trained model for private serving: expands nonlinear
    /// kernels into monomial form and fixed-point-encodes the
    /// coefficients.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Config`] on an invalid configuration,
    /// [`PpcsError::Expansion`] if the kernel cannot be expanded within
    /// the configured cap.
    pub fn new(alg: A, model: &SvmModel, cfg: ProtocolConfig) -> Result<Self, PpcsError> {
        cfg.validate()?;
        let (weights, bias, input_form, degree_bound) = match model.kernel() {
            Kernel::Linear => {
                let w = model
                    .linear_weights()
                    .expect("linear kernel always has weights");
                (w, model.bias(), InputForm::Direct, 1)
            }
            kernel => {
                let expanded = expand_model(model, &cfg)?;
                // The paper sets the nonlinear masking degree to p·q: the
                // OMPE degree bound is the original kernel degree even
                // though the expanded secret is affine in τ.
                let bound = match (kernel, expanded.basis) {
                    (_, BasisKind::Homogeneous { degree }) => degree as usize,
                    (_, BasisKind::UpTo { degree }) => degree as usize,
                };
                (
                    expanded.coeffs,
                    expanded.bias,
                    InputForm::Monomials(expanded.basis),
                    bound,
                )
            }
        };
        let spec = ClassifySpec {
            dim: model.dim(),
            input_form,
            ompe: OmpeParams::new(degree_bound, cfg.sigma, cfg.decoy_factor)?,
        };
        let encoded_weights = weights.iter().map(|w| alg.encode(*w, 1)).collect();
        let encoded_bias = alg.encode(bias, OUTPUT_SCALE);
        Ok(Self {
            alg,
            cfg,
            base: DenseAffine::new(encoded_weights, encoded_bias),
            spec,
            epoch: 0,
        })
    }

    /// Prepares an already-expanded decision function for private
    /// serving — the entry point for classifier families that are
    /// natively polynomial, such as Gaussian Naive Bayes
    /// ([`crate::expansion::ExpandedDecision::from_quadratic_diag`]).
    ///
    /// # Errors
    ///
    /// [`PpcsError::Config`] on an invalid configuration.
    pub fn from_expanded(
        alg: A,
        expanded: &crate::expansion::ExpandedDecision,
        cfg: ProtocolConfig,
    ) -> Result<Self, PpcsError> {
        cfg.validate()?;
        let degree_bound = match expanded.basis {
            BasisKind::Homogeneous { degree } => degree as usize,
            BasisKind::UpTo { degree } => degree as usize,
        };
        let spec = ClassifySpec {
            dim: expanded.dim,
            input_form: InputForm::Monomials(expanded.basis),
            ompe: OmpeParams::new(degree_bound, cfg.sigma, cfg.decoy_factor)?,
        };
        let encoded_weights = expanded.coeffs.iter().map(|w| alg.encode(*w, 1)).collect();
        let encoded_bias = alg.encode(expanded.bias, OUTPUT_SCALE);
        Ok(Self {
            alg,
            cfg,
            base: DenseAffine::new(encoded_weights, encoded_bias),
            spec,
            epoch: 0,
        })
    }

    /// The public session header.
    pub fn spec(&self) -> ClassifySpec {
        self.spec
    }

    /// Stamps this trainer with a serving epoch — its process
    /// incarnation. A supervisor restarting a crashed trainer should
    /// hand the replacement a strictly larger epoch: clients detect the
    /// bump in the `SPEC`/`TICKET` handshake (and in `KIND_HEALTH`
    /// replies) and discard warm state from the dead incarnation.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The serving epoch this trainer advertises (0 unless set with
    /// [`Trainer::with_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The numeric backend this trainer encodes with.
    pub(crate) fn alg(&self) -> &A {
        &self.alg
    }

    /// Draws one session's worth of input-independent sender material —
    /// the OT base-phase commitment plus `rounds` masking polynomials —
    /// off the critical path. Feed the pack to
    /// [`Trainer::serve_session_engine`] (or a
    /// [`PrecomputePool`](crate::PrecomputePool)) and the online phase
    /// skips every input-independent draw.
    pub fn precompute_material(
        &self,
        sel: OtSelect,
        rounds: usize,
        rng: &mut dyn RngCore,
    ) -> OmpeSenderOffline<A> {
        OmpeSenderOffline::precompute(&self.alg, sel, &self.spec.ompe, rounds, rng)
    }

    /// Serves a single OMPE round with an explicit amplifier element —
    /// the building block the multi-class session composes (shared or
    /// fresh amplifiers across the per-class rounds of one sample).
    /// With `material`, the round consumes the precomputed pack instead
    /// of drawing its offline half inline; the wire traffic is the same
    /// either way, so the peer never needs to know.
    ///
    /// # Errors
    ///
    /// Transport, OT, and OMPE failures.
    pub(crate) async fn serve_one_with_amplifier_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        amplifier: A::Elem,
        material: Option<OmpeSenderOffline<A>>,
    ) -> Result<(), PpcsError> {
        let secret = self.base.scale(&self.alg, &amplifier);
        match material {
            Some(pack) => {
                ompe_send_offline_io(&self.alg, io, sel, rng, &secret, &self.spec.ompe, pack)
                    .await?
            }
            None => ompe_send_io(&self.alg, io, sel, rng, &secret, &self.spec.ompe).await?,
        }
        Ok(())
    }

    /// Serves one classification session (a batch of samples announced by
    /// the client). Returns the number of samples served.
    ///
    /// The whole batch runs through one OMPE sender session: the
    /// masking-polynomial storage and the OT base-phase commitment are
    /// set up once, and the client's point clouds arrive in a single
    /// coalesced frame. Each sample still gets a **fresh amplifier**
    /// (Level-2 privacy; see the module docs).
    ///
    /// # Errors
    ///
    /// Transport, OT, and OMPE failures.
    pub fn serve<L: Lane + ?Sized>(
        &self,
        ep: &L,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
    ) -> Result<usize, PpcsError> {
        let sel = ot.select();
        let mut engine =
            ProtocolEngine::new(|io| async move { self.serve_io(&io, sel, rng).await });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O twin of [`Trainer::serve`]: the trainer role over a
    /// [`FrameIo`] mailbox, frame-for-frame and draw-for-draw identical
    /// to the blocking entry point.
    ///
    /// # Errors
    ///
    /// Transport, OT, and OMPE failures.
    pub async fn serve_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
    ) -> Result<usize, PpcsError> {
        self.serve_session_io(io, sel, rng, false, None).await
    }

    /// The session-unified trainer role: serves one batch session that
    /// opened **cold** (`HELLO`/`SPEC` exchange) or **warm**
    /// (`WARM_HELLO`/`TICKET`, the client already holds the spec), with
    /// the input-independent sender material optionally supplied by a
    /// precompute pool instead of drawn inline. Returns the number of
    /// samples served.
    ///
    /// `serve_session_io(io, sel, rng, false, None)` is exactly
    /// [`Trainer::serve_io`]; every combination produces the same OMPE
    /// traffic, so cold/warm and offline/inline pair freely with any
    /// client.
    ///
    /// # Errors
    ///
    /// Transport, OT, and OMPE failures.
    pub async fn serve_session_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        warm: bool,
        material: Option<OmpeSenderOffline<A>>,
    ) -> Result<usize, PpcsError> {
        let _span = ppcs_telemetry::span(Phase::Classify);
        let num_samples: u64 = if warm {
            let hello = decode_u64s(&io.recv_msg::<Vec<u8>>(KIND_CLS_WARM_HELLO).await?)?;
            let [n, spec_hash, client_epoch] = hello[..] else {
                return Err(PpcsError::Protocol("malformed warm hello".into()));
            };
            check_batch_cap(n)?;
            // Confirm the cached spec or re-announce it in the ticket;
            // either way the session proceeds without a second
            // round-trip. A stale epoch forces the re-announcement even
            // when the spec hash still matches: the client must learn it
            // is talking to a fresh incarnation whose warm state (resume
            // logs, pool material) does not include it.
            let current = spec_hash == self.spec.wire_hash() && client_epoch == self.epoch;
            let mut ticket = vec![u64::from(current), self.epoch];
            if !current {
                ticket.extend(self.spec.encode_wire());
            }
            io.send_msg(KIND_CLS_TICKET, &encode_u64s(&ticket))?;
            n
        } else {
            let n: u64 = io.recv_msg(KIND_CLS_HELLO).await?;
            check_batch_cap(n)?;
            let mut fields = self.spec.encode_wire();
            fields.push(self.epoch);
            io.send_msg(KIND_CLS_SPEC, &encode_u64s(&fields))?;
            n
        };
        let secrets: Vec<DenseAffine<A>> = (0..num_samples)
            .map(|_| {
                let ra = self.alg.encode_int(self.cfg.draw_amplifier(rng));
                self.base.scale(&self.alg, &ra)
            })
            .collect();
        match material {
            Some(pack) => {
                ompe_send_batch_offline_io(&self.alg, io, sel, rng, &secrets, &self.spec.ompe, pack)
                    .await?
            }
            None => ompe_send_batch_io(&self.alg, io, sel, rng, &secrets, &self.spec.ompe).await?,
        }
        Ok(num_samples as usize)
    }

    /// Packages the trainer role as a self-contained [`ProtocolEngine`]
    /// owning its RNG (seeded from `seed`), so a session can be driven,
    /// recorded, and re-created bit-identically for transcript replay.
    pub fn serve_engine(&self, sel: OtSelect, seed: u64) -> ProtocolEngine<'_, usize, PpcsError> {
        self.serve_session_engine(sel, seed, false, None)
    }

    /// [`Trainer::serve_engine`] with the session-unified knobs: `warm`
    /// selects the `WARM_HELLO` handshake, `material` feeds the session
    /// precomputed sender material (from
    /// [`Trainer::precompute_material`] or a
    /// [`PrecomputePool`](crate::PrecomputePool)).
    pub fn serve_session_engine(
        &self,
        sel: OtSelect,
        seed: u64,
        warm: bool,
        material: Option<OmpeSenderOffline<A>>,
    ) -> ProtocolEngine<'_, usize, PpcsError> {
        ProtocolEngine::new(move |io| async move {
            let mut rng = StdRng::seed_from_u64(seed);
            self.serve_session_io(&io, sel, &mut rng, warm, material)
                .await
        })
    }

    /// Serves classification sessions per lane, each lane on its own
    /// thread — the trainer half of
    /// [`Client::classify_batch_parallel`]. Returns the total number of
    /// samples served across all lanes.
    ///
    /// Each lane runs a **session loop**: every `HELLO` opens a fresh
    /// session (so a client retrying or requeueing a failed chunk is
    /// served again on the same lane), a failed session abandons only
    /// itself, and the loop ends on a `FIN` frame, a disconnect, or a
    /// receive timeout. One bad session therefore costs latency, not the
    /// batch.
    ///
    /// Per-lane randomness is derived from `seed` (lane `i` uses
    /// `seed + i`), so a run is reproducible without sharing one RNG
    /// across threads.
    ///
    /// # Errors
    ///
    /// The first non-recoverable lane error, if any lane hits one.
    pub fn serve_parallel<L: Lane>(
        &self,
        lanes: &[L],
        ot: &dyn ObliviousTransfer,
        seed: u64,
    ) -> Result<usize, PpcsError> {
        let sel = ot.select();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .iter()
                .enumerate()
                .map(|(i, ep)| {
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                        self.serve_lane(ep, sel, &mut rng)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve lane thread panicked"))
                .collect::<Vec<_>>()
        });
        results.into_iter().sum()
    }

    /// One lane's session loop: serve every `HELLO`-opened session until
    /// the client says `FIN` or the lane dies.
    fn serve_lane<L: Lane + ?Sized>(
        &self,
        ep: &L,
        sel: OtSelect,
        rng: &mut StdRng,
    ) -> Result<usize, PpcsError> {
        let mut total = 0usize;
        loop {
            let first = match ep.recv() {
                Ok(f) => f,
                // The client went away (or will never come back before
                // the deadline): this lane is done, not failed.
                Err(TransportError::Disconnected | TransportError::Timeout) => break,
                Err(e) => return Err(PpcsError::Transport(e)),
            };
            if first.kind == KIND_CLS_FIN {
                break;
            }
            if first.kind != KIND_CLS_HELLO && first.kind != KIND_CLS_WARM_HELLO {
                // Stale traffic from an abandoned session: skip until
                // the next HELLO opens a fresh one.
                continue;
            }
            let warm = first.kind == KIND_CLS_WARM_HELLO;
            let r = &mut *rng;
            let mut engine = ProtocolEngine::new(|io| async move {
                self.serve_session_io(&io, sel, r, warm, None).await
            });
            engine.handle_input(first);
            match drive_blocking(ep, &mut engine) {
                Ok(n) => total += n,
                Err(e) => match transport_cause(&e) {
                    Some(TransportError::Disconnected) => break,
                    // A timed-out or derailed session abandons itself;
                    // the lane resyncs on the next HELLO.
                    Some(_) | None => continue,
                },
            }
        }
        Ok(total)
    }
}

/// The client role: classifies private samples against a remote trainer.
///
/// # Examples
///
/// ```
/// use ppcs_core::{Client, ProtocolConfig, Trainer};
/// use ppcs_math::F64Algebra;
/// use ppcs_ot::TrustedSimOt;
/// use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
/// use ppcs_transport::run_pair;
/// use rand::SeedableRng;
///
/// // Alice trains on her private data.
/// let mut ds = Dataset::new(1);
/// for i in 0..20 {
///     let v = i as f64 / 10.0 - 1.0;
///     ds.push(vec![v], if v < 0.0 { Label::Negative } else { Label::Positive });
/// }
/// let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
///
/// let cfg = ProtocolConfig::default();
/// let trainer = Trainer::new(F64Algebra::new(), &model, cfg).unwrap();
/// let client = Client::new(F64Algebra::new(), cfg);
///
/// let samples = vec![vec![0.9], vec![-0.7]];
/// let (served, labels) = run_pair(
///     move |ep| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(1);
///         trainer.serve(&ep, &TrustedSimOt, &mut rng).unwrap()
///     },
///     move |ep| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(2);
///         client.classify_batch(&ep, &TrustedSimOt, &mut rng, &samples).unwrap()
///     },
/// );
/// assert_eq!(served, 2);
/// assert_eq!(labels, vec![Label::Positive, Label::Negative]);
/// ```
pub struct Client<A: Algebra> {
    alg: A,
    cfg: ProtocolConfig,
}

impl<A: Algebra> Client<A>
where
    A::Elem: Encodable,
{
    /// Creates a client.
    pub fn new(alg: A, cfg: ProtocolConfig) -> Self {
        Self { alg, cfg }
    }

    /// Classifies a batch of samples in one session. Returns one label
    /// per sample, in order.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Protocol`] if the trainer's announced spec disagrees
    /// with the samples' dimensionality or this client's configuration,
    /// plus transport/OMPE failures.
    pub fn classify_batch<L: Lane + ?Sized>(
        &self,
        ep: &L,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        samples: &[Vec<f64>],
    ) -> Result<Vec<Label>, PpcsError> {
        Ok(self
            .classify_batch_values(ep, ot, rng, samples)?
            .into_iter()
            .map(|(label, _)| label)
            .collect())
    }

    /// Runs a single private classification round against a known spec —
    /// the building block the multi-class session composes.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Protocol`] on a dimensionality mismatch, plus
    /// transport/OMPE failures.
    pub(crate) async fn classify_one_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        sample: &[f64],
        spec: &ClassifySpec,
    ) -> Result<(Label, f64), PpcsError> {
        let alpha = self.encode_input(sample, spec)?;
        let value = ompe_receive_io(&self.alg, io, sel, rng, &alpha, &spec.ompe).await?;
        let decoded = self.alg.decode(&value, OUTPUT_SCALE);
        Ok((Label::from_sign(decoded), decoded))
    }

    /// Like [`Client::classify_batch`], but also returns the randomized
    /// decision value `r_a·d(t̃)` each label was derived from.
    ///
    /// This is exactly what a client *actually learns* per query; the
    /// privacy experiments ([`crate::privacy`]) pool these values to play
    /// the colluding-coalition attacks of Figs. 5–6.
    ///
    /// # Errors
    ///
    /// Same as [`Client::classify_batch`].
    pub fn classify_batch_values<L: Lane + ?Sized>(
        &self,
        ep: &L,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        samples: &[Vec<f64>],
    ) -> Result<Vec<(Label, f64)>, PpcsError> {
        let sel = ot.select();
        let mut engine = ProtocolEngine::new(|io| async move {
            self.classify_batch_values_io(&io, sel, rng, samples).await
        });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O twin of [`Client::classify_batch_values`]: the client
    /// role over a [`FrameIo`] mailbox.
    ///
    /// # Errors
    ///
    /// Same as [`Client::classify_batch_values`].
    pub async fn classify_batch_values_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        samples: &[Vec<f64>],
    ) -> Result<Vec<(Label, f64)>, PpcsError> {
        self.classify_session_io(io, sel, rng, samples, None, None)
            .await
    }

    /// The session-unified client role: one batch session that opens
    /// **cold** (spec exchange) or **warm** (`warm = Some((cache,
    /// peer))` and the cache holds `peer`'s spec — the handshake shrinks
    /// to a hash/ticket pair), optionally consuming precomputed
    /// receiver-side material so the online phase skips the point-cloud
    /// construction.
    ///
    /// An empty cache entry falls back to the cold handshake and
    /// populates the cache; mismatched or exhausted `offline` material
    /// falls back to inline construction. Neither fallback changes the
    /// wire traffic's shape beyond the handshake kind, so any client
    /// mode pairs with any trainer mode.
    ///
    /// # Errors
    ///
    /// Same as [`Client::classify_batch_values`], plus
    /// [`PpcsError::Protocol`] on a malformed warm-session ticket.
    pub async fn classify_session_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        samples: &[Vec<f64>],
        warm: Option<(&WarmSessionCache, u64)>,
        offline: Option<&mut OmpeReceiverOffline<A>>,
    ) -> Result<Vec<(Label, f64)>, PpcsError> {
        let _span = ppcs_telemetry::span(Phase::Classify);
        let spec = match warm {
            Some((cache, peer)) => match cache.get(peer) {
                Some((cached, cached_epoch)) => {
                    io.send_msg(
                        KIND_CLS_WARM_HELLO,
                        &encode_u64s(&[samples.len() as u64, cached.wire_hash(), cached_epoch]),
                    )?;
                    let ticket = decode_u64s(&io.recv_msg::<Vec<u8>>(KIND_CLS_TICKET).await?)?;
                    match ticket.split_first() {
                        Some((&1, [_epoch])) => cached,
                        Some((&0, [epoch, fields @ ..])) => {
                            // The trainer's spec moved — or the trainer
                            // itself restarted under a fresh epoch —
                            // since we cached it: adopt the re-announced
                            // spec and incarnation.
                            let spec = ClassifySpec::decode_wire(fields)?;
                            self.check_spec(&spec)?;
                            cache.insert(peer, spec, *epoch);
                            spec
                        }
                        _ => {
                            return Err(PpcsError::Protocol("malformed warm-session ticket".into()))
                        }
                    }
                }
                None => {
                    // First contact with this peer: cold handshake, then
                    // remember the spec for the next session.
                    let (spec, epoch) = self.cold_handshake_io(io, samples.len()).await?;
                    cache.insert(peer, spec, epoch);
                    spec
                }
            },
            None => self.cold_handshake_io(io, samples.len()).await?.0,
        };

        // Encode every sample's OMPE input up front so the whole batch
        // runs through one receiver session: cover-polynomial storage and
        // the OT base phase are reused, and all point clouds leave in one
        // coalesced frame. The monomial expansion walks the basis
        // enumeration once for the entire batch.
        let alphas = self.encode_inputs(samples, &spec)?;
        let values = match offline {
            Some(pack)
                if pack.fingerprint() == params_fingerprint(sel, &spec.ompe)
                    && pack.dim() == spec.input_arity() =>
            {
                ompe_receive_batch_offline_io(&self.alg, io, sel, rng, &alphas, &spec.ompe, pack)
                    .await?
            }
            // Material drawn for a different configuration (or none at
            // all): build the point clouds inline.
            _ => ompe_receive_batch_io(&self.alg, io, sel, rng, &alphas, &spec.ompe).await?,
        };
        Ok(values
            .iter()
            .map(|value| {
                let decoded = self.alg.decode(value, OUTPUT_SCALE);
                (Label::from_sign(decoded), decoded)
            })
            .collect())
    }

    /// The cold session opening: announce the batch size, receive and
    /// validate the trainer's spec (and its serving epoch, appended as
    /// the final `SPEC` field).
    async fn cold_handshake_io(
        &self,
        io: &FrameIo,
        num_samples: usize,
    ) -> Result<(ClassifySpec, u64), PpcsError> {
        io.send_msg(KIND_CLS_HELLO, &(num_samples as u64))?;
        let fields = decode_u64s(&io.recv_msg::<Vec<u8>>(KIND_CLS_SPEC).await?)?;
        let [spec_fields @ .., epoch] = &fields[..] else {
            return Err(PpcsError::Protocol("malformed classify spec".into()));
        };
        let spec = ClassifySpec::decode_wire(spec_fields)?;
        self.check_spec(&spec)?;
        Ok((spec, *epoch))
    }

    /// Rejects a trainer-announced spec that disagrees with this
    /// client's configured privacy parameters.
    fn check_spec(&self, spec: &ClassifySpec) -> Result<(), PpcsError> {
        if spec.ompe.sigma != self.cfg.sigma || spec.ompe.decoy_factor != self.cfg.decoy_factor {
            return Err(PpcsError::Protocol(format!(
                "trainer announced sigma={} decoys={}, client configured sigma={} decoys={}",
                spec.ompe.sigma, spec.ompe.decoy_factor, self.cfg.sigma, self.cfg.decoy_factor
            )));
        }
        Ok(())
    }

    /// Draws input-independent receiver material — `rounds` blinded
    /// point clouds, one consumed per sample — against a known `spec`:
    /// the client half of the offline/online split.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Ompe`] if the spec's parameters cannot draw the
    /// distinct abscissae a point cloud needs.
    pub fn precompute_material(
        &self,
        sel: OtSelect,
        spec: &ClassifySpec,
        rounds: usize,
        rng: &mut dyn RngCore,
    ) -> Result<OmpeReceiverOffline<A>, PpcsError> {
        Ok(OmpeReceiverOffline::precompute(
            &self.alg,
            sel,
            &spec.ompe,
            spec.input_arity(),
            rounds,
            rng,
        )?)
    }

    /// Packages the client role as a self-contained [`ProtocolEngine`]
    /// owning its RNG (seeded from `seed`) — the replay-friendly
    /// counterpart of [`Trainer::serve_engine`].
    pub fn classify_engine<'a>(
        &'a self,
        sel: OtSelect,
        seed: u64,
        samples: &'a [Vec<f64>],
    ) -> ProtocolEngine<'a, Vec<(Label, f64)>, PpcsError> {
        ProtocolEngine::new(move |io| async move {
            let mut rng = StdRng::seed_from_u64(seed);
            self.classify_batch_values_io(&io, sel, &mut rng, samples)
                .await
        })
    }

    /// [`Client::classify_engine`] for a repeat client: the session
    /// opens warm against `cache`'s entry for `peer` (cold and
    /// cache-filling on first contact) and optionally consumes
    /// precomputed receiver material.
    #[allow(clippy::too_many_arguments)]
    pub fn classify_warm_engine<'a>(
        &'a self,
        sel: OtSelect,
        seed: u64,
        samples: &'a [Vec<f64>],
        cache: &'a WarmSessionCache,
        peer: u64,
        offline: Option<&'a mut OmpeReceiverOffline<A>>,
    ) -> ProtocolEngine<'a, Vec<(Label, f64)>, PpcsError> {
        ProtocolEngine::new(move |io| async move {
            let mut rng = StdRng::seed_from_u64(seed);
            self.classify_session_io(&io, sel, &mut rng, samples, Some((cache, peer)), offline)
                .await
        })
    }

    /// Blocking counterpart of [`Client::classify_warm_engine`]:
    /// classifies a batch over a warm (or first-contact cold) session
    /// keyed by `peer` in `cache`.
    ///
    /// # Errors
    ///
    /// Same as [`Client::classify_batch_values`].
    #[allow(clippy::too_many_arguments)]
    pub fn classify_batch_values_warm<L: Lane + ?Sized>(
        &self,
        ep: &L,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        samples: &[Vec<f64>],
        cache: &WarmSessionCache,
        peer: u64,
    ) -> Result<Vec<(Label, f64)>, PpcsError> {
        let sel = ot.select();
        let mut engine = ProtocolEngine::new(|io| async move {
            self.classify_session_io(&io, sel, rng, samples, Some((cache, peer)), None)
                .await
        });
        drive_blocking(ep, &mut engine)
    }

    /// Validates a sample against the announced spec and encodes it as
    /// the OMPE input vector.
    fn encode_input(&self, sample: &[f64], spec: &ClassifySpec) -> Result<Vec<A::Elem>, PpcsError> {
        if sample.len() != spec.dim {
            return Err(PpcsError::Protocol(format!(
                "sample has {} features, trainer expects {}",
                sample.len(),
                spec.dim
            )));
        }
        let raw_inputs: Vec<f64> = match spec.input_form {
            InputForm::Direct => sample.to_vec(),
            InputForm::Monomials(basis) => basis.features(sample),
        };
        Ok(raw_inputs.iter().map(|v| self.alg.encode(*v, 1)).collect())
    }

    /// Batch counterpart of [`encode_input`](Client::encode_input):
    /// validates and encodes every sample, sharing one basis-enumeration
    /// walk across the batch for expanded nonlinear models. Row `k`
    /// equals `encode_input(&samples[k], spec)`.
    fn encode_inputs(
        &self,
        samples: &[Vec<f64>],
        spec: &ClassifySpec,
    ) -> Result<Vec<Vec<A::Elem>>, PpcsError> {
        for sample in samples {
            if sample.len() != spec.dim {
                return Err(PpcsError::Protocol(format!(
                    "sample has {} features, trainer expects {}",
                    sample.len(),
                    spec.dim
                )));
            }
        }
        let raw_rows: Vec<Vec<f64>> = match spec.input_form {
            InputForm::Direct => samples.to_vec(),
            InputForm::Monomials(basis) => basis.features_many(spec.dim, samples),
        };
        Ok(raw_rows
            .iter()
            .map(|row| row.iter().map(|v| self.alg.encode(*v, 1)).collect())
            .collect())
    }

    /// Classifies a batch across several lanes concurrently, one session
    /// per lane on its own thread — the client half of
    /// [`Trainer::serve_parallel`].
    ///
    /// Samples are sharded into contiguous, near-equal chunks (lane `i`
    /// takes chunk `i`) and the per-chunk labels are reassembled in the
    /// original order, so the result is exactly what
    /// [`Client::classify_batch`] over one lane would return for the
    /// same model. Per-lane randomness is derived from `seed`.
    ///
    /// A lane failing on a **transport** error degrades gracefully: the
    /// chunk is retried once on its own lane, then requeued onto the
    /// surviving lanes — one bad connection costs latency, not the
    /// batch. Deterministic (protocol/codec) failures propagate
    /// immediately, since replaying the same bytes would fail the same
    /// way.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Protocol`] if `lanes` is empty, any deterministic
    /// lane error, or the first transport error once every lane is dead.
    pub fn classify_batch_parallel<L: Lane>(
        &self,
        lanes: &[L],
        ot: &dyn ObliviousTransfer,
        seed: u64,
        samples: &[Vec<f64>],
    ) -> Result<Vec<Label>, PpcsError> {
        if lanes.is_empty() {
            return Err(PpcsError::Protocol(
                "classify_batch_parallel needs at least one lane".into(),
            ));
        }
        let chunks = shard_evenly(samples, lanes.len());
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .iter()
                .zip(&chunks)
                .enumerate()
                .map(|(i, (ep, chunk))| {
                    scope.spawn(move || {
                        self.classify_chunk(ep, ot, seed.wrapping_add(i as u64), chunk)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("classify lane thread panicked"))
                .collect::<Vec<_>>()
        });

        let mut out: Vec<Option<Vec<Label>>> = Vec::with_capacity(chunks.len());
        let mut lane_ok = vec![true; lanes.len()];
        let mut first_err: Option<PpcsError> = None;
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(labels) => out.push(Some(labels)),
                Err(e) => {
                    if transport_cause(&e).is_none() {
                        // Deterministic failure: retrying cannot help.
                        return Err(e);
                    }
                    lane_ok[i] = false;
                    first_err.get_or_insert(e);
                    out.push(None);
                }
            }
        }

        // Requeue failed chunks onto surviving lanes, sequentially: the
        // latency of a rescue matters less than completing the batch.
        for i in 0..out.len() {
            if out[i].is_some() {
                continue;
            }
            let mut rescued = None;
            for (j, ep) in lanes.iter().enumerate() {
                if !lane_ok[j] {
                    continue;
                }
                // Fresh deterministic randomness for the requeued
                // attempt, domain-separated from the phase-1 streams.
                let mut rng = StdRng::seed_from_u64(
                    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1),
                );
                match self.classify_batch(ep, ot, &mut rng, chunks[i]) {
                    Ok(labels) => {
                        rescued = Some(labels);
                        break;
                    }
                    Err(e) => {
                        if transport_cause(&e).is_none() {
                            return Err(e);
                        }
                        lane_ok[j] = false;
                        first_err.get_or_insert(e);
                    }
                }
            }
            match rescued {
                Some(labels) => out[i] = Some(labels),
                None => {
                    return Err(first_err.expect("a lane failure put us on this path"));
                }
            }
        }

        // Tell every lane's serve loop that no more sessions are coming.
        // Best effort: a dead lane's trainer thread ends on disconnect
        // or deadline instead.
        for ep in lanes {
            let _ = ep.send(Frame::encode(KIND_CLS_FIN, &0u64));
        }

        let mut labels = Vec::with_capacity(samples.len());
        for lane_labels in out {
            labels.extend(lane_labels.expect("every chunk resolved or we returned early"));
        }
        Ok(labels)
    }

    /// One lane's phase-1 work: classify the chunk, with a single
    /// same-lane retry when the failure is transport-rooted (the trainer
    /// lane resyncs on the retry's `HELLO`).
    fn classify_chunk<L: Lane + ?Sized>(
        &self,
        ep: &L,
        ot: &dyn ObliviousTransfer,
        seed: u64,
        chunk: &[Vec<f64>],
    ) -> Result<Vec<Label>, PpcsError> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.classify_batch(ep, ot, &mut rng, chunk) {
            Err(e) if transport_cause(&e).is_some() => {
                std::thread::sleep(Duration::from_millis(10));
                self.classify_batch(ep, ot, &mut rng, chunk)
            }
            r => r,
        }
    }
}

/// A client-side cache of per-peer session specs, keyed by an opaque
/// peer identifier the caller chooses (an address hash, a connection
/// slot — anything stable across sessions with the same trainer).
///
/// A repeat client holding a cached spec opens its next session
/// **warm**: the `HELLO`/`SPEC` exchange shrinks to a
/// `WARM_HELLO`/`TICKET` hash check, riding the same resumable-session
/// machinery that already redials the transport. The cache is
/// internally synchronized, so one instance can back every lane of a
/// parallel client.
///
/// Each entry remembers the trainer's serving **epoch** alongside the
/// spec: a trainer restart bumps the epoch, the next warm hello
/// presents the stale one, and the trainer re-announces — so a cached
/// ticket can never silently resume into a fresh incarnation.
#[derive(Debug, Default)]
pub struct WarmSessionCache {
    inner: Mutex<HashMap<u64, (ClassifySpec, u64)>>,
}

impl WarmSessionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached `(spec, epoch)` for `peer`, if any.
    pub fn get(&self, peer: u64) -> Option<(ClassifySpec, u64)> {
        self.inner
            .lock()
            .expect("warm cache lock")
            .get(&peer)
            .copied()
    }

    /// Caches (or replaces) the spec and serving epoch for `peer`.
    pub fn insert(&self, peer: u64, spec: ClassifySpec, epoch: u64) {
        self.inner
            .lock()
            .expect("warm cache lock")
            .insert(peer, (spec, epoch));
    }

    /// Forgets the cached spec for `peer` (e.g. after observing a fresh
    /// serving epoch in a health probe: the entry would only buy a
    /// re-announce round).
    pub fn remove(&self, peer: u64) {
        self.inner.lock().expect("warm cache lock").remove(&peer);
    }

    /// How many peers have a cached spec.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("warm cache lock").len()
    }

    /// Whether the cache holds no specs at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets every cached spec.
    pub fn clear(&self) {
        self.inner.lock().expect("warm cache lock").clear();
    }
}

/// Splits `samples` into `lanes` contiguous chunks whose lengths differ
/// by at most one (the first `len % lanes` chunks get the extra sample).
pub(crate) fn shard_evenly(samples: &[Vec<f64>], lanes: usize) -> Vec<&[Vec<f64>]> {
    let base = samples.len() / lanes;
    let extra = samples.len() % lanes;
    let mut chunks = Vec::with_capacity(lanes);
    let mut start = 0;
    for i in 0..lanes {
        let len = base + usize::from(i < extra);
        chunks.push(&samples[start..start + len]);
        start += len;
    }
    chunks
}

/// The batch size is peer-chosen and sizes the secrets allocation: cap
/// it before reserving anything.
fn check_batch_cap(num_samples: u64) -> Result<(), PpcsError> {
    if num_samples > MAX_BATCH_SAMPLES {
        return Err(PpcsError::Protocol(format!(
            "client requested {num_samples} samples, per-session cap is {MAX_BATCH_SAMPLES}"
        )));
    }
    Ok(())
}

/// SplitMix64 finalizer — the same avalanche the OMPE offline-material
/// fingerprint uses, re-stated here so `core` does not depend on a
/// non-public helper of `ppcs-ompe`.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn encode_u64s(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u64s(bytes: &[u8]) -> Result<Vec<u64>, PpcsError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(PpcsError::Protocol("malformed u64 field block".into()));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_math::{F64Algebra, FixedFpAlgebra};
    use ppcs_ot::{NaorPinkasOt, TrustedSimOt};
    use ppcs_svm::{Dataset, SmoParams};
    use ppcs_transport::{run_pair, Endpoint};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for k in 0..n {
            let positive = k % 2 == 0;
            let c = if positive { 0.5 } else { -0.5 };
            ds.push(
                (0..dim).map(|_| c + rng.gen_range(-0.45..0.45)).collect(),
                if positive {
                    Label::Positive
                } else {
                    Label::Negative
                },
            );
        }
        ds
    }

    fn run_batch<A: Algebra>(
        alg: A,
        model: &SvmModel,
        cfg: ProtocolConfig,
        samples: Vec<Vec<f64>>,
        ot: &'static dyn ObliviousTransfer,
        seed: u64,
    ) -> Vec<Label>
    where
        A::Elem: Encodable,
    {
        let trainer = Trainer::new(alg.clone(), model, cfg).unwrap();
        let client = Client::new(alg, cfg);
        let (_, labels) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed);
                trainer.serve(&ep, ot, &mut rng).unwrap()
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                client.classify_batch(&ep, ot, &mut rng, &samples).unwrap()
            },
        );
        labels
    }

    static SIM: TrustedSimOt = TrustedSimOt;

    #[test]
    fn linear_private_matches_plain_f64() {
        let ds = blob_data(4, 80, 1);
        let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let samples: Vec<Vec<f64>> = (0..ds.len()).map(|i| ds.features(i).to_vec()).collect();
        let labels = run_batch(
            F64Algebra::new(),
            &model,
            ProtocolConfig::default(),
            samples.clone(),
            &SIM,
            10,
        );
        for (sample, got) in samples.iter().zip(&labels) {
            assert_eq!(*got, model.predict(sample));
        }
    }

    #[test]
    fn linear_private_matches_plain_fixed_point() {
        let ds = blob_data(3, 60, 2);
        let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let samples: Vec<Vec<f64>> = (0..20).map(|i| ds.features(i).to_vec()).collect();
        let labels = run_batch(
            FixedFpAlgebra::new(16),
            &model,
            ProtocolConfig::default(),
            samples.clone(),
            &SIM,
            20,
        );
        for (sample, got) in samples.iter().zip(&labels) {
            assert_eq!(*got, model.predict(sample));
        }
    }

    #[test]
    fn polynomial_private_matches_plain() {
        let ds = blob_data(4, 80, 3);
        let model = SvmModel::train(&ds, Kernel::paper_polynomial(4), &SmoParams::default());
        let samples: Vec<Vec<f64>> = (0..30).map(|i| ds.features(i).to_vec()).collect();
        let labels = run_batch(
            F64Algebra::new(),
            &model,
            ProtocolConfig::default(),
            samples.clone(),
            &SIM,
            30,
        );
        for (sample, got) in samples.iter().zip(&labels) {
            assert_eq!(*got, model.predict(sample));
        }
    }

    #[test]
    fn inhomogeneous_polynomial_roundtrip() {
        let ds = blob_data(3, 60, 4);
        let model = SvmModel::train(
            &ds,
            Kernel::Polynomial {
                a0: 0.5,
                b0: 1.0,
                degree: 2,
            },
            &SmoParams::default(),
        );
        let samples: Vec<Vec<f64>> = (0..20).map(|i| ds.features(i).to_vec()).collect();
        let labels = run_batch(
            F64Algebra::new(),
            &model,
            ProtocolConfig::default(),
            samples.clone(),
            &SIM,
            40,
        );
        for (sample, got) in samples.iter().zip(&labels) {
            assert_eq!(*got, model.predict(sample));
        }
    }

    #[test]
    fn rbf_private_matches_truncated_expansion() {
        let ds = blob_data(3, 50, 5);
        let model = SvmModel::train(&ds, Kernel::Rbf { gamma: 0.4 }, &SmoParams::default());
        let cfg = ProtocolConfig {
            taylor_order: 4,
            ..ProtocolConfig::default()
        };
        let samples: Vec<Vec<f64>> = (0..15).map(|i| ds.features(i).to_vec()).collect();
        let labels = run_batch(F64Algebra::new(), &model, cfg, samples.clone(), &SIM, 50);
        // The private result equals the sign of the *truncated* expansion.
        let expanded = expand_model(&model, &cfg).unwrap();
        for (sample, got) in samples.iter().zip(&labels) {
            assert_eq!(*got, Label::from_sign(expanded.eval(sample)));
        }
    }

    #[test]
    fn works_over_cryptographic_ot() {
        use std::sync::OnceLock;
        static NP: OnceLock<NaorPinkasOt> = OnceLock::new();
        let ot: &'static dyn ObliviousTransfer = NP.get_or_init(NaorPinkasOt::fast_insecure);
        let ds = blob_data(2, 40, 6);
        let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let samples: Vec<Vec<f64>> = (0..4).map(|i| ds.features(i).to_vec()).collect();
        let labels = run_batch(
            FixedFpAlgebra::new(16),
            &model,
            ProtocolConfig::default(),
            samples.clone(),
            ot,
            60,
        );
        for (sample, got) in samples.iter().zip(&labels) {
            assert_eq!(*got, model.predict(sample));
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let ds = blob_data(3, 40, 7);
        let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let cfg = ProtocolConfig::default();
        let trainer = Trainer::new(F64Algebra::new(), &model, cfg).unwrap();
        let client = Client::new(F64Algebra::new(), cfg);
        let (_, res) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                let _ = trainer.serve(&ep, &SIM, &mut rng);
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                client.classify_batch(&ep, &SIM, &mut rng, &[vec![1.0, 2.0]])
            },
        );
        assert!(matches!(res.unwrap_err(), PpcsError::Protocol(_)));
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let ds = blob_data(2, 40, 8);
        let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let trainer = Trainer::new(F64Algebra::new(), &model, ProtocolConfig::default()).unwrap();
        let client = Client::new(F64Algebra::new(), ProtocolConfig::functional());
        let (_, res) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                let _ = trainer.serve(&ep, &SIM, &mut rng);
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                client.classify_batch(&ep, &SIM, &mut rng, &[vec![0.0, 0.0]])
            },
        );
        assert!(matches!(res.unwrap_err(), PpcsError::Protocol(_)));
    }

    #[test]
    fn parallel_lanes_match_sequential_labels() {
        use ppcs_transport::duplex_pool;
        let ds = blob_data(3, 80, 21);
        let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let cfg = ProtocolConfig::default();
        let samples: Vec<Vec<f64>> = (0..33).map(|i| ds.features(i).to_vec()).collect();

        let sequential = run_batch(F64Algebra::new(), &model, cfg, samples.clone(), &SIM, 90);

        let trainer = Trainer::new(F64Algebra::new(), &model, cfg).unwrap();
        let client = Client::new(F64Algebra::new(), cfg);
        for lanes in [1usize, 2, 4] {
            let (trainer_eps, client_eps) = duplex_pool(lanes);
            let (served, labels) = std::thread::scope(|scope| {
                let t = scope.spawn(|| trainer.serve_parallel(&trainer_eps, &SIM, 91).unwrap());
                let c = scope.spawn(|| {
                    client
                        .classify_batch_parallel(&client_eps, &SIM, 92, &samples)
                        .unwrap()
                });
                (t.join().unwrap(), c.join().unwrap())
            });
            assert_eq!(served, samples.len());
            assert_eq!(labels, sequential, "lanes={lanes}");
        }
    }

    #[test]
    fn parallel_rejects_empty_lane_set() {
        let client = Client::new(F64Algebra::new(), ProtocolConfig::default());
        let err = client
            .classify_batch_parallel::<Endpoint>(&[], &SIM, 0, &[vec![0.0]])
            .unwrap_err();
        assert!(matches!(err, PpcsError::Protocol(_)));
    }

    #[test]
    fn shard_evenly_covers_all_samples_in_order() {
        let samples: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        for lanes in 1..=6 {
            let chunks = shard_evenly(&samples, lanes);
            assert_eq!(chunks.len(), lanes);
            let flat: Vec<Vec<f64>> = chunks.iter().flat_map(|c| c.to_vec()).collect();
            assert_eq!(flat, samples, "lanes={lanes}");
            let max = chunks.iter().map(|c| c.len()).max().unwrap();
            let min = chunks.iter().map(|c| c.len()).min().unwrap();
            assert!(max - min <= 1, "lanes={lanes}: uneven shards");
        }
    }

    #[test]
    fn spec_wire_roundtrip() {
        for spec in [
            ClassifySpec {
                dim: 5,
                input_form: InputForm::Direct,
                ompe: OmpeParams::new(1, 3, 2).unwrap(),
            },
            ClassifySpec {
                dim: 8,
                input_form: InputForm::Monomials(BasisKind::Homogeneous { degree: 3 }),
                ompe: OmpeParams::new(3, 3, 2).unwrap(),
            },
            ClassifySpec {
                dim: 4,
                input_form: InputForm::Monomials(BasisKind::UpTo { degree: 6 }),
                ompe: OmpeParams::new(6, 2, 1).unwrap(),
            },
        ] {
            let wire = spec.encode_wire();
            assert_eq!(ClassifySpec::decode_wire(&wire).unwrap(), spec);
        }
    }

    #[test]
    fn naive_bayes_private_matches_plain() {
        use ppcs_svm::GaussianNb;
        let ds = blob_data(3, 80, 12);
        let nb = GaussianNb::train(&ds);
        let form = nb.to_quadratic_form();
        let expanded = crate::expansion::ExpandedDecision::from_quadratic_diag(
            &form.quadratic,
            &form.linear,
            form.bias,
        );
        // The expansion must agree with the model before going private.
        for i in 0..10 {
            let t = ds.features(i);
            assert!((expanded.eval(t) - nb.decision(t)).abs() < 1e-9);
        }
        let cfg = ProtocolConfig::default();
        let trainer = Trainer::from_expanded(F64Algebra::new(), &expanded, cfg).unwrap();
        let client = Client::new(F64Algebra::new(), cfg);
        let samples: Vec<Vec<f64>> = (0..25).map(|i| ds.features(i).to_vec()).collect();
        let samples2 = samples.clone();
        let (_, labels) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(80);
                trainer.serve(&ep, &SIM, &mut rng).unwrap()
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(81);
                client
                    .classify_batch(&ep, &SIM, &mut rng, &samples2)
                    .unwrap()
            },
        );
        for (sample, got) in samples.iter().zip(&labels) {
            assert_eq!(*got, nb.predict(sample));
        }
    }

    #[test]
    fn functional_mode_agrees_with_full_mode() {
        let ds = blob_data(3, 60, 9);
        let model = SvmModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let samples: Vec<Vec<f64>> = (0..25).map(|i| ds.features(i).to_vec()).collect();
        let full = run_batch(
            F64Algebra::new(),
            &model,
            ProtocolConfig::default(),
            samples.clone(),
            &SIM,
            70,
        );
        let functional = run_batch(
            F64Algebra::new(),
            &model,
            ProtocolConfig::functional(),
            samples,
            &SIM,
            71,
        );
        assert_eq!(full, functional);
    }
}
