//! Errors of the ppcs protocols.

use core::fmt;

use ppcs_ompe::OmpeError;
use ppcs_ot::OtError;
use ppcs_transport::{ErrorLayer, ProtocolError, TransportError};

/// Errors raised by the classification and similarity protocols.
#[derive(Clone, Debug, PartialEq)]
pub enum PpcsError {
    /// Invalid configuration.
    Config(String),
    /// The model could not be expanded into the protocol's polynomial
    /// form (unsupported kernel parameters, expansion too large, …).
    Expansion(String),
    /// Underlying OMPE failure.
    Ompe(OmpeError),
    /// Underlying transport failure.
    Transport(TransportError),
    /// The peer deviated from the protocol.
    Protocol(String),
}

impl fmt::Display for PpcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Expansion(msg) => write!(f, "model expansion failed: {msg}"),
            Self::Ompe(e) => write!(f, "oblivious polynomial evaluation failed: {e}"),
            Self::Transport(e) => write!(f, "transport failed: {e}"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for PpcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ompe(e) => Some(e),
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OmpeError> for PpcsError {
    fn from(e: OmpeError) -> Self {
        Self::Ompe(e)
    }
}

impl From<TransportError> for PpcsError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<OtError> for PpcsError {
    fn from(e: OtError) -> Self {
        Self::Ompe(OmpeError::Ot(e))
    }
}

impl From<PpcsError> for ProtocolError {
    fn from(e: PpcsError) -> Self {
        match e {
            // Delegate so transport, OT, and OMPE causes keep their own
            // layers instead of collapsing into a blanket "protocol".
            PpcsError::Transport(t) => Self::from(t),
            PpcsError::Ompe(o) => Self::from(o),
            PpcsError::Config(_) | PpcsError::Expansion(_) | PpcsError::Protocol(_) => {
                Self::new(ErrorLayer::Protocol, e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppcs_errors_map_to_layers() {
        let t: ProtocolError = PpcsError::Transport(TransportError::Disconnected).into();
        assert_eq!(t.layer(), ErrorLayer::Transport);
        let o: ProtocolError =
            PpcsError::Ompe(OmpeError::Ot(OtError::UnequalMessageLengths)).into();
        assert_eq!(o.layer(), ErrorLayer::Crypto);
        let p: ProtocolError = PpcsError::Protocol("bad spec".into()).into();
        assert_eq!(p.layer(), ErrorLayer::Protocol);
        assert!(matches!(
            p.downcast_ref::<PpcsError>(),
            Some(PpcsError::Protocol(_))
        ));
    }
}
