//! Errors of the ppcs protocols.

use core::fmt;

use ppcs_ompe::OmpeError;
use ppcs_ot::OtError;
use ppcs_transport::TransportError;

/// Errors raised by the classification and similarity protocols.
#[derive(Clone, Debug, PartialEq)]
pub enum PpcsError {
    /// Invalid configuration.
    Config(String),
    /// The model could not be expanded into the protocol's polynomial
    /// form (unsupported kernel parameters, expansion too large, …).
    Expansion(String),
    /// Underlying OMPE failure.
    Ompe(OmpeError),
    /// Underlying transport failure.
    Transport(TransportError),
    /// The peer deviated from the protocol.
    Protocol(String),
}

impl fmt::Display for PpcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Expansion(msg) => write!(f, "model expansion failed: {msg}"),
            Self::Ompe(e) => write!(f, "oblivious polynomial evaluation failed: {e}"),
            Self::Transport(e) => write!(f, "transport failed: {e}"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for PpcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ompe(e) => Some(e),
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OmpeError> for PpcsError {
    fn from(e: OmpeError) -> Self {
        Self::Ompe(e)
    }
}

impl From<TransportError> for PpcsError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<OtError> for PpcsError {
    fn from(e: OtError) -> Self {
        Self::Ompe(OmpeError::Ot(e))
    }
}
