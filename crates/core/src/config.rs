//! Protocol configuration shared by both parties.

use crate::error::PpcsError;

/// Security and sizing knobs of the private protocols.
///
/// Both parties must agree on a configuration out of band (it is public
/// protocol metadata, not a secret).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtocolConfig {
    /// Degree `q` of the client's input-masking polynomials. The paper's
    /// security parameter: reconstruction of a hidden input requires
    /// `p·q + 1` correlated values from one (never-reused) masking
    /// polynomial.
    pub sigma: usize,
    /// Decoy multiplier `k`: the client submits `M = m·k` points of which
    /// only `m` are genuine. `1` disables decoys (functional-benchmark
    /// mode paired with the ideal OT).
    pub decoy_factor: usize,
    /// Bit width of the random integer amplifiers `r_a`, `r_am`, `r_aw`.
    pub amplifier_bits: u32,
    /// Hard cap on the monomial-basis size of expanded nonlinear models.
    pub max_expanded_terms: usize,
    /// Truncation order for Taylor-expanded kernels (RBF, sigmoid).
    pub taylor_order: u32,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            sigma: 3,
            decoy_factor: 2,
            amplifier_bits: 16,
            max_expanded_terms: 2_000_000,
            taylor_order: 3,
        }
    }
}

impl ProtocolConfig {
    /// A configuration for large functional sweeps: no decoys, minimal
    /// masking degree. Pair it with
    /// [`TrustedSimOt`](ppcs_ot::TrustedSimOt); results are bit-identical
    /// to the full protocol's, only the hiding layers an ideal adversary
    /// would see are thinned.
    pub fn functional() -> Self {
        Self {
            sigma: 1,
            decoy_factor: 1,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Config`] on zero-valued or oversized parameters.
    pub fn validate(&self) -> Result<(), PpcsError> {
        if self.sigma == 0 {
            return Err(PpcsError::Config("sigma must be ≥ 1".into()));
        }
        if self.decoy_factor == 0 {
            return Err(PpcsError::Config("decoy_factor must be ≥ 1".into()));
        }
        if self.amplifier_bits == 0 || self.amplifier_bits > 40 {
            return Err(PpcsError::Config("amplifier_bits must be in 1..=40".into()));
        }
        if self.max_expanded_terms == 0 {
            return Err(PpcsError::Config("max_expanded_terms must be ≥ 1".into()));
        }
        if self.taylor_order == 0 || self.taylor_order > 9 {
            return Err(PpcsError::Config("taylor_order must be in 1..=9".into()));
        }
        Ok(())
    }

    /// Draws a random positive integer amplifier in `[2, 2^amplifier_bits)`.
    pub fn draw_amplifier(&self, rng: &mut dyn rand::RngCore) -> i64 {
        use rand::Rng;
        rng.gen_range(2..(1i64 << self.amplifier_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_valid() {
        ProtocolConfig::default().validate().unwrap();
        ProtocolConfig::functional().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for cfg in [
            ProtocolConfig {
                sigma: 0,
                ..Default::default()
            },
            ProtocolConfig {
                decoy_factor: 0,
                ..Default::default()
            },
            ProtocolConfig {
                amplifier_bits: 0,
                ..Default::default()
            },
            ProtocolConfig {
                amplifier_bits: 64,
                ..Default::default()
            },
            ProtocolConfig {
                max_expanded_terms: 0,
                ..Default::default()
            },
            ProtocolConfig {
                taylor_order: 0,
                ..Default::default()
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} should be invalid");
        }
    }

    #[test]
    fn amplifiers_are_positive_and_bounded() {
        let cfg = ProtocolConfig {
            amplifier_bits: 8,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let a = cfg.draw_amplifier(&mut rng);
            assert!((2..256).contains(&a));
        }
    }
}
