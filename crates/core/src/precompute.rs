//! Server-side precompute pool: input-independent OMPE sender material
//! produced from idle time and consumed by classification sessions.
//!
//! The pool is bound to one `(OT engine, OMPE parameter set)`
//! configuration at construction. [`PrecomputePool::take`] refuses a
//! request under any other configuration with a structured
//! [`OmpeError::ConfigMismatch`], so stale material can never serve a
//! session with different security parameters. Filling is budgeted —
//! one pack per [`PrecomputePool::fill_one`] call — so an idle tick
//! never blocks serving for longer than one pack's precompute, and
//! [`PrecomputePool::clear`] empties the pool when the server drains.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use ppcs_math::Algebra;
use ppcs_ompe::{params_fingerprint, OmpeError, OmpeParams, OmpeSenderOffline};
use ppcs_ot::OtSelect;
use ppcs_telemetry::MetricsRegistry;
use ppcs_transport::Encodable;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::PpcsError;

/// A bounded queue of precomputed [`OmpeSenderOffline`] packs for one
/// serving configuration.
///
/// Thread-safe by interior mutability: the serving path takes packs
/// while the reactor's idle path fills, without either blocking the
/// other for longer than a queue push/pop. When the pool runs dry a
/// session simply serves monolithically — a miss costs latency, never
/// correctness.
pub struct PrecomputePool<A: Algebra> {
    alg: A,
    sel: OtSelect,
    params: OmpeParams,
    fingerprint: u64,
    capacity: usize,
    masks_per_entry: usize,
    entries: Mutex<VecDeque<OmpeSenderOffline<A>>>,
    /// Fill randomness, under its own lock so a fill in progress (a
    /// modular exponentiation for Naor–Pinkas) never delays a take on
    /// the serving path.
    rng: Mutex<StdRng>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<A: Algebra> PrecomputePool<A>
where
    A::Elem: Encodable,
{
    /// Creates an empty pool bound to the given configuration, holding
    /// at most `capacity` packs of `masks_per_entry` masking
    /// polynomials each (clamped to at least one mask — an empty pack
    /// would be a guaranteed inline refresh).
    pub fn new(
        alg: A,
        sel: OtSelect,
        params: OmpeParams,
        capacity: usize,
        masks_per_entry: usize,
        seed: u64,
    ) -> Self {
        Self {
            fingerprint: params_fingerprint(sel, &params),
            alg,
            sel,
            params,
            capacity,
            masks_per_entry: masks_per_entry.max(1),
            entries: Mutex::new(VecDeque::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            metrics: None,
        }
    }

    /// Attaches a metrics registry: fills, hits, misses, and the live
    /// depth show up on the `/metrics` exposition.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The configuration fingerprint every pack in this pool carries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// How many packs are ready right now.
    pub fn depth(&self) -> usize {
        self.entries.lock().expect("pool entries lock").len()
    }

    /// Produces one pack if the pool has room; returns whether anything
    /// was added. One pack per call keeps the fill budgeted: an idle
    /// reactor tick spends at most one pack's worth of precompute
    /// before checking for traffic again.
    pub fn fill_one(&self) -> bool {
        if self.depth() >= self.capacity {
            return false;
        }
        let entry = {
            let mut rng = self.rng.lock().expect("pool rng lock");
            OmpeSenderOffline::precompute(
                &self.alg,
                self.sel,
                &self.params,
                self.masks_per_entry,
                &mut *rng,
            )
        };
        let depth = {
            let mut entries = self.entries.lock().expect("pool entries lock");
            if entries.len() >= self.capacity {
                // A concurrent fill won the race to the last slot.
                return false;
            }
            entries.push_back(entry);
            entries.len()
        };
        if let Some(reg) = &self.metrics {
            reg.record_pool_filled();
            reg.set_pool_depth(depth as u64);
        }
        true
    }

    /// Pops a pack for a session running under `(sel, params)`.
    /// `Ok(None)` means the pool is dry and the session should serve
    /// monolithically.
    ///
    /// # Errors
    ///
    /// [`OmpeError::ConfigMismatch`] (as [`PpcsError::Ompe`]) when the
    /// requested configuration differs from the one this pool was built
    /// for — precomputed material never crosses configurations.
    pub fn take(
        &self,
        sel: OtSelect,
        params: &OmpeParams,
    ) -> Result<Option<OmpeSenderOffline<A>>, PpcsError> {
        let expected = params_fingerprint(sel, params);
        if expected != self.fingerprint {
            return Err(PpcsError::Ompe(OmpeError::ConfigMismatch {
                expected,
                actual: self.fingerprint,
            }));
        }
        let (entry, depth) = {
            let mut entries = self.entries.lock().expect("pool entries lock");
            let entry = entries.pop_front();
            (entry, entries.len())
        };
        if let Some(reg) = &self.metrics {
            if entry.is_some() {
                reg.record_pool_hit();
                reg.set_pool_depth(depth as u64);
            } else {
                reg.record_pool_miss();
            }
        }
        Ok(entry)
    }

    /// Empties the pool — the drain path calls this so no precomputed
    /// material outlives the serving run that drew it.
    pub fn clear(&self) {
        self.entries.lock().expect("pool entries lock").clear();
        if let Some(reg) = &self.metrics {
            reg.set_pool_depth(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_math::F64Algebra;
    use ppcs_ot::{ObliviousTransfer, TrustedSimOt};

    fn pool(capacity: usize) -> PrecomputePool<F64Algebra> {
        PrecomputePool::new(
            F64Algebra::new(),
            TrustedSimOt.select(),
            OmpeParams::new(1, 3, 2).unwrap(),
            capacity,
            2,
            7,
        )
    }

    #[test]
    fn fill_respects_capacity_and_take_drains_fifo() {
        let p = pool(2);
        assert!(p.fill_one());
        assert!(p.fill_one());
        assert!(!p.fill_one(), "full pool must refuse a third pack");
        assert_eq!(p.depth(), 2);

        let sel = TrustedSimOt.select();
        let params = OmpeParams::new(1, 3, 2).unwrap();
        assert!(p.take(sel, &params).unwrap().is_some());
        assert!(p.take(sel, &params).unwrap().is_some());
        assert!(
            p.take(sel, &params).unwrap().is_none(),
            "dry pool yields None"
        );
    }

    #[test]
    fn cross_config_take_is_refused() {
        let p = pool(1);
        p.fill_one();
        let other = OmpeParams::new(2, 3, 2).unwrap();
        let err = p.take(TrustedSimOt.select(), &other).unwrap_err();
        assert!(matches!(
            err,
            PpcsError::Ompe(OmpeError::ConfigMismatch { .. })
        ));
        // The refused pack is still there for the right configuration.
        assert_eq!(p.depth(), 1);
    }

    #[test]
    fn clear_empties_the_pool() {
        let p = pool(3);
        p.fill_one();
        p.fill_one();
        p.clear();
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn metrics_see_fills_hits_and_misses() {
        let reg = MetricsRegistry::new(1, "trainer");
        let p = pool(1).with_metrics(reg.clone());
        p.fill_one();
        let sel = TrustedSimOt.select();
        let params = OmpeParams::new(1, 3, 2).unwrap();
        let _ = p.take(sel, &params).unwrap();
        let _ = p.take(sel, &params).unwrap();
        let report = reg.report();
        assert_eq!(report.pool_filled, 1);
        assert_eq!(report.pool_hits, 1);
        assert_eq!(report.pool_misses, 1);
        assert_eq!(report.pool_depth, 0);
    }
}
