//! # ppcs-core
//!
//! The protocols of *"Privacy-preserving Data Classification and
//! Similarity Evaluation for Distributed Systems"* (Jia, Guo, Jin,
//! Fang — ICDCS 2016):
//!
//! * **Private classification** (Section IV): a [`Trainer`] serves its
//!   SVM decision function through oblivious multivariate polynomial
//!   evaluation; a [`Client`] learns only the class of each private
//!   sample. Nonlinear kernels run through monomial expansion
//!   ([`expansion`]).
//! * **Private similarity evaluation** (Section V): two trainers
//!   compute the bounded-hyperplane triangle-area metric
//!   `T² = ¼(L⁴+L₀⁴)(sin²θ+sin²θ₀)` without revealing either model
//!   ([`similarity_request`] / [`similarity_respond`]).
//! * **Privacy experiments** (Section VI-A): the collusion attacks the
//!   amplifier randomization defeats ([`privacy`]).
//!
//! Classification batches run through per-session OMPE state (mask and
//! cover-polynomial storage set up once, one OT base-phase commitment
//! per batch) with all point clouds coalesced into a single framed
//! write, and can be spread across independent transport lanes with
//! [`Trainer::serve_parallel`] / [`Client::classify_batch_parallel`].
//!
//! Every role is implemented **sans-I/O**: the `*_io` twins
//! ([`Trainer::serve_io`], [`Client::classify_batch_values_io`],
//! [`similarity_respond_io`], …) run over a
//! [`ppcs_transport::FrameIo`] mailbox and never touch a transport; the
//! blocking entry points wrap them in a
//! [`ppcs_transport::ProtocolEngine`] pumped by
//! [`ppcs_transport::drive_blocking`]. [`Trainer::serve_engine`] /
//! [`Client::classify_engine`] package a role with an owned seeded RNG
//! so sessions can be driven over any backend, recorded to a
//! [`ppcs_transport::Transcript`], and replayed deterministically.
//!
//! Every protocol is generic over the numeric backend
//! ([`ppcs_math::F64Algebra`] as in the paper's experiments,
//! [`ppcs_math::FixedFpAlgebra`] for the cryptographically sound
//! instantiation) and over the OT engine
//! ([`ppcs_ot::NaorPinkasOt`] / [`ppcs_ot::TrustedSimOt`]).
//!
//! See the crate examples in `examples/` for end-to-end scenarios
//! (e-commerce trend testing, hospital diagnosis, partner matching).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod config;
mod error;
pub mod expansion;
mod fleet;
mod multiclass;
mod precompute;
pub mod privacy;
mod server;
mod similarity;

pub use classify::{ClassifySpec, Client, InputForm, Trainer, WarmSessionCache, MAX_BATCH_SAMPLES};
pub use config::ProtocolConfig;
pub use error::PpcsError;
pub use expansion::{expand_model, BasisKind, ExpandedDecision};
pub use fleet::{
    BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker, Connector, FleetClient,
    FleetClock, FleetConfig, ManualClock, SystemClock,
};
pub use multiclass::{MultiClassClient, MultiClassMode, MultiClassTrainer};
pub use precompute::PrecomputePool;
pub use server::{ServeSummary, ServerConfig, SessionSupervisor, TrainerServer};
pub use similarity::{
    boundary_points_decision, boundary_points_linear, centroid, cos2_between, direction_input,
    similarity_plain, similarity_plain_geometry, similarity_request, similarity_request_geometry,
    similarity_request_geometry_io, similarity_request_io, similarity_respond,
    similarity_respond_geometry, similarity_respond_geometry_io,
    similarity_respond_geometry_offline_io, similarity_respond_io, triangle_area_squared,
    ModelGeometry, SimilarityConfig, SimilarityResponderOffline,
};
