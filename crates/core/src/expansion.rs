//! Expansion of SVM decision functions into polynomial form
//! (Section IV-B of the paper).
//!
//! The nonlinear protocol rests on rewriting the kernel decision function
//! `d(t) = Σ_s c_s K(x_s, t) + b` as a *linear* function of monomial
//! features `τ_j = Π_i t_i^{k_i}`:
//!
//! * a homogeneous polynomial kernel `(a₀ xᵀt)^p` expands exactly over
//!   the `C(n+p-1, p)` degree-`p` monomials (multinomial theorem);
//! * an inhomogeneous polynomial kernel `(a₀ xᵀt + b₀)^p` expands over
//!   all monomials of degree `1..=p` (binomial × multinomial);
//! * RBF and sigmoid kernels expand approximately via Taylor truncation
//!   (the paper's "use a large number p to approximate the infinity").
//!
//! Both parties derive the same deterministic monomial enumeration from
//! the public `(dim, degree)` pair, so only the coefficient vector — the
//! trainer's secret — differs between models.

use std::collections::HashMap;

use ppcs_svm::{Kernel, SvmModel};

use crate::config::ProtocolConfig;
use crate::error::PpcsError;

/// Which monomial basis an expanded model lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BasisKind {
    /// All monomials of total degree exactly `degree` (homogeneous
    /// kernels).
    Homogeneous {
        /// The common total degree.
        degree: u32,
    },
    /// All monomials of total degree `1..=degree` (the constant monomial
    /// is folded into the model bias).
    UpTo {
        /// The maximum total degree.
        degree: u32,
    },
}

impl BasisKind {
    /// The number of monomials in the basis for `dim` variables, or
    /// `None` on overflow.
    pub fn len(&self, dim: usize) -> Option<u64> {
        match *self {
            BasisKind::Homogeneous { degree } => ppcs_math::expanded_dimension(dim, degree),
            BasisKind::UpTo { degree } => {
                // C(n+d, d) − 1 (all degrees 0..=d minus the constant).
                ppcs_math::binomial((dim as u64).checked_add(degree as u64)?, degree as u64)
                    .map(|c| c - 1)
            }
        }
    }

    /// Enumerates the basis in its canonical order, calling `f` with each
    /// monomial as a sorted (non-decreasing) tuple of variable indices.
    pub fn for_each(&self, dim: usize, mut f: impl FnMut(&[u32])) {
        match *self {
            BasisKind::Homogeneous { degree } => for_each_multiset(dim, degree, &mut f),
            BasisKind::UpTo { degree } => {
                for d in 1..=degree {
                    for_each_multiset(dim, d, &mut f);
                }
            }
        }
    }

    /// Maps a sample `t` to its monomial features `τ`, aligned with the
    /// canonical enumeration.
    pub fn features(&self, t: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.for_each(t.len(), |tuple| {
            out.push(tuple.iter().map(|&i| t[i as usize]).product());
        });
        out
    }

    /// Maps every sample to its monomial features at once, walking the
    /// basis enumeration a single time for the whole batch instead of
    /// once per sample. Row `k` equals `features(&samples[k])`.
    ///
    /// # Panics
    ///
    /// Panics if any sample's length differs from `dim`.
    pub fn features_many(&self, dim: usize, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        for t in samples {
            assert_eq!(t.len(), dim, "sample dimensionality mismatch");
        }
        let cap = self.len(dim).unwrap_or(0) as usize;
        let mut out: Vec<Vec<f64>> = samples.iter().map(|_| Vec::with_capacity(cap)).collect();
        self.for_each(dim, |tuple| {
            for (t, row) in samples.iter().zip(out.iter_mut()) {
                row.push(tuple.iter().map(|&i| t[i as usize]).product());
            }
        });
        out
    }
}

/// Enumerates all non-decreasing index tuples of length `degree` over
/// `0..dim` (monomials of total degree exactly `degree`), in
/// lexicographic order.
pub fn for_each_multiset(dim: usize, degree: u32, f: &mut impl FnMut(&[u32])) {
    assert!(dim > 0, "need at least one variable");
    assert!(degree > 0, "degree-zero monomials are folded into the bias");
    let mut tuple = vec![0u32; degree as usize];
    loop {
        f(&tuple);
        // Advance to the next non-decreasing tuple.
        let mut pos = tuple.len();
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            if (tuple[pos] as usize) < dim - 1 {
                tuple[pos] += 1;
                let v = tuple[pos];
                for slot in tuple.iter_mut().skip(pos + 1) {
                    *slot = v;
                }
                break;
            }
        }
    }
}

/// The multiplicity profile of a sorted tuple (run lengths).
pub(crate) fn multiplicities(tuple: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tuple.len() {
        let mut j = i;
        while j + 1 < tuple.len() && tuple[j + 1] == tuple[i] {
            j += 1;
        }
        out.push((j - i + 1) as u32);
        i = j + 1;
    }
    out
}

/// An SVM decision function rewritten as a linear form over monomial
/// features: `d(t) = coeffs · τ(t) + bias`.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpandedDecision {
    /// Input dimensionality `n`.
    pub dim: usize,
    /// The monomial basis.
    pub basis: BasisKind,
    /// One coefficient per basis monomial, in canonical order.
    pub coeffs: Vec<f64>,
    /// The constant term.
    pub bias: f64,
}

impl ExpandedDecision {
    /// Builds an expanded decision from a diagonal quadratic form
    /// `Σ qᵢtᵢ² + Σ lᵢtᵢ + b` — the polynomial shape of a Gaussian
    /// Naive Bayes log-likelihood ratio — over the canonical `UpTo(2)`
    /// basis.
    ///
    /// # Panics
    ///
    /// Panics if `quadratic` and `linear` differ in length or are empty.
    pub fn from_quadratic_diag(quadratic: &[f64], linear: &[f64], bias: f64) -> Self {
        assert_eq!(
            quadratic.len(),
            linear.len(),
            "quadratic and linear parts must share dimensionality"
        );
        assert!(!linear.is_empty(), "need at least one dimension");
        let dim = linear.len();
        let basis = BasisKind::UpTo { degree: 2 };
        let mut coeffs = Vec::with_capacity(basis.len(dim).expect("small basis") as usize);
        basis.for_each(dim, |tuple| {
            coeffs.push(match tuple {
                [i] => linear[*i as usize],
                [i, j] if i == j => quadratic[*i as usize],
                _ => 0.0,
            });
        });
        Self {
            dim,
            basis,
            coeffs,
            bias,
        }
    }

    /// Evaluates the expanded decision function directly (used by tests
    /// and by the plain—non-private—protocol baseline).
    pub fn eval(&self, t: &[f64]) -> f64 {
        let tau = self.basis.features(t);
        self.bias + ppcs_svm::dot(&self.coeffs, &tau)
    }

    /// The monomial features of `t` in this basis.
    pub fn features(&self, t: &[f64]) -> Vec<f64> {
        self.basis.features(t)
    }
}

/// Expands a trained model into [`ExpandedDecision`] form.
///
/// # Errors
///
/// * [`PpcsError::Expansion`] for a linear kernel (no expansion needed —
///   the caller should use the weights directly), an expansion exceeding
///   `cfg.max_expanded_terms`, or unsupported kernel parameters.
pub fn expand_model(model: &SvmModel, cfg: &ProtocolConfig) -> Result<ExpandedDecision, PpcsError> {
    match model.kernel() {
        Kernel::Linear => Err(PpcsError::Expansion(
            "linear models need no monomial expansion".into(),
        )),
        Kernel::Polynomial { a0, b0, degree } => {
            if degree == 0 {
                return Err(PpcsError::Expansion(
                    "polynomial kernel degree must be ≥ 1".into(),
                ));
            }
            if b0 == 0.0 {
                expand_homogeneous(model, a0, degree, cfg)
            } else {
                expand_inhomogeneous(model, a0, b0, degree, cfg)
            }
        }
        Kernel::Rbf { gamma } => expand_rbf(model, gamma, cfg),
        Kernel::Sigmoid { a0, c0 } => expand_sigmoid(model, a0, c0, cfg),
    }
}

fn check_basis_size(
    basis: BasisKind,
    dim: usize,
    cfg: &ProtocolConfig,
) -> Result<usize, PpcsError> {
    let len = basis
        .len(dim)
        .ok_or_else(|| PpcsError::Expansion("monomial basis size overflows u64".into()))?;
    if len > cfg.max_expanded_terms as u64 {
        return Err(PpcsError::Expansion(format!(
            "expansion needs {len} monomials, cap is {} — reduce the dimension, \
             kernel degree, or raise max_expanded_terms",
            cfg.max_expanded_terms
        )));
    }
    Ok(len as usize)
}

/// Homogeneous kernel `(a₀ xᵀt)^p`: coefficient of monomial `m` (with
/// multiplicities `k`) is `a₀^p · multinom(p; k) · Σ_s c_s Π x_{s,i}^{k_i}`.
fn expand_homogeneous(
    model: &SvmModel,
    a0: f64,
    p: u32,
    cfg: &ProtocolConfig,
) -> Result<ExpandedDecision, PpcsError> {
    let dim = model.dim();
    let basis = BasisKind::Homogeneous { degree: p };
    let len = check_basis_size(basis, dim, cfg)?;
    let scale = a0.powi(p as i32);
    let svs = model.support_vectors();
    let cs = model.coefficients();

    let mut coeffs = Vec::with_capacity(len);
    for_each_multiset(dim, p, &mut |tuple| {
        let mult = ppcs_math::multinomial_coeff(p, &multiplicities(tuple));
        let mut acc = 0.0;
        for (sv, &c) in svs.iter().zip(cs) {
            let mut prod = c;
            for &i in tuple {
                prod *= sv[i as usize];
            }
            acc += prod;
        }
        coeffs.push(scale * mult * acc);
    });
    Ok(ExpandedDecision {
        dim,
        basis,
        coeffs,
        bias: model.bias(),
    })
}

/// Inhomogeneous kernel `(a₀ xᵀt + b₀)^p = Σ_j C(p,j) b₀^{p-j} (a₀ xᵀt)^j`:
/// per-degree homogeneous expansions accumulated over the `UpTo` basis.
fn expand_inhomogeneous(
    model: &SvmModel,
    a0: f64,
    b0: f64,
    p: u32,
    cfg: &ProtocolConfig,
) -> Result<ExpandedDecision, PpcsError> {
    let dim = model.dim();
    let basis = BasisKind::UpTo { degree: p };
    let len = check_basis_size(basis, dim, cfg)?;
    let svs = model.support_vectors();
    let cs = model.coefficients();

    let mut coeffs = Vec::with_capacity(len);
    for j in 1..=p {
        let binom =
            ppcs_math::binomial(p as u64, j as u64).expect("small binomial cannot overflow") as f64;
        let scale = binom * b0.powi((p - j) as i32) * a0.powi(j as i32);
        for_each_multiset(dim, j, &mut |tuple| {
            let mult = ppcs_math::multinomial_coeff(j, &multiplicities(tuple));
            let mut acc = 0.0;
            for (sv, &c) in svs.iter().zip(cs) {
                let mut prod = c;
                for &i in tuple {
                    prod *= sv[i as usize];
                }
                acc += prod;
            }
            coeffs.push(scale * mult * acc);
        });
    }
    // Degree-0 term: Σ_s c_s b₀^p.
    let const_term: f64 = cs.iter().sum::<f64>() * b0.powi(p as i32);
    Ok(ExpandedDecision {
        dim,
        basis,
        coeffs,
        bias: model.bias() + const_term,
    })
}

/// A small sparse real polynomial keyed by dense exponent vectors — the
/// scratch representation for Taylor expansions (low-dimensional models
/// only; the basis cap guards it).
#[derive(Clone, Debug, Default)]
struct RealPoly {
    terms: HashMap<Vec<u32>, f64>,
}

impl RealPoly {
    fn constant(dim: usize, v: f64) -> Self {
        let mut terms = HashMap::new();
        terms.insert(vec![0; dim], v);
        Self { terms }
    }

    fn add_term(&mut self, exps: Vec<u32>, coeff: f64) {
        *self.terms.entry(exps).or_insert(0.0) += coeff;
    }

    fn add_scaled(&mut self, other: &RealPoly, k: f64) {
        for (e, c) in &other.terms {
            *self.terms.entry(e.clone()).or_insert(0.0) += c * k;
        }
    }

    fn mul(&self, other: &RealPoly) -> RealPoly {
        let mut out = RealPoly::default();
        for (ea, ca) in &self.terms {
            for (eb, cb) in &other.terms {
                let e: Vec<u32> = ea.iter().zip(eb).map(|(a, b)| a + b).collect();
                out.add_term(e, ca * cb);
            }
        }
        out
    }

    /// Drops terms above `max_degree` (Taylor truncation boundary) and
    /// negligible coefficients.
    fn truncate(&mut self, max_degree: u32) {
        self.terms
            .retain(|e, c| e.iter().sum::<u32>() <= max_degree && c.abs() > 1e-300);
    }
}

/// Projects a scratch polynomial onto the canonical `UpTo(degree)` basis.
fn project_to_basis(
    dim: usize,
    degree: u32,
    poly: &RealPoly,
    cfg: &ProtocolConfig,
) -> Result<ExpandedDecision, PpcsError> {
    let basis = BasisKind::UpTo { degree };
    let len = check_basis_size(basis, dim, cfg)?;
    // Index of each exponent vector in the canonical order.
    let mut index: HashMap<Vec<u32>, usize> = HashMap::with_capacity(len);
    let mut pos = 0usize;
    basis.for_each(dim, |tuple| {
        let mut exps = vec![0u32; dim];
        for &i in tuple {
            exps[i as usize] += 1;
        }
        index.insert(exps, pos);
        pos += 1;
    });

    let mut coeffs = vec![0.0f64; len];
    let mut bias = 0.0;
    for (exps, &c) in &poly.terms {
        let total: u32 = exps.iter().sum();
        if total == 0 {
            bias += c;
        } else if let Some(&i) = index.get(exps) {
            coeffs[i] += c;
        } else {
            return Err(PpcsError::Expansion(format!(
                "internal: term of degree {total} exceeds basis degree {degree}"
            )));
        }
    }
    Ok(ExpandedDecision {
        dim,
        basis,
        coeffs,
        bias,
    })
}

/// RBF expansion: `K(x,t) = e^{-γ‖x‖²} · e^{u}` with
/// `u = 2γ xᵀt − γ‖t‖²` (a degree-2 polynomial in `t`), Taylor-truncated
/// at `cfg.taylor_order` terms, yielding total degree `2·taylor_order`.
fn expand_rbf(
    model: &SvmModel,
    gamma: f64,
    cfg: &ProtocolConfig,
) -> Result<ExpandedDecision, PpcsError> {
    let dim = model.dim();
    let order = cfg.taylor_order;
    let max_degree = 2 * order;
    // Check size up front so we fail before the scratch work.
    check_basis_size(BasisKind::UpTo { degree: max_degree }, dim, cfg)?;

    let mut acc = RealPoly::default();
    for (sv, &c) in model.support_vectors().iter().zip(model.coefficients()) {
        let norm2: f64 = sv.iter().map(|v| v * v).sum();
        let front = c * (-gamma * norm2).exp();

        // u = 2γ Σ x_i t_i − γ Σ t_i².
        let mut u = RealPoly::default();
        for (i, &xi) in sv.iter().enumerate() {
            let mut e = vec![0u32; dim];
            e[i] = 1;
            u.add_term(e, 2.0 * gamma * xi);
            let mut e2 = vec![0u32; dim];
            e2[i] = 2;
            u.add_term(e2, -gamma);
        }

        // e^u ≈ Σ_{k=0}^{order} u^k / k!.
        let mut power = RealPoly::constant(dim, 1.0);
        let mut factorial = 1.0;
        acc.add_scaled(&power, front);
        for k in 1..=order {
            power = power.mul(&u);
            power.truncate(max_degree);
            factorial *= k as f64;
            acc.add_scaled(&power, front / factorial);
        }
    }
    let mut result = project_to_basis(dim, max_degree, &acc, cfg)?;
    result.bias += model.bias();
    Ok(result)
}

/// Taylor coefficients of `tanh(u)` for odd powers `1, 3, 5, 7, 9`.
const TANH_COEFFS: [(u32, f64); 5] = [
    (1, 1.0),
    (3, -1.0 / 3.0),
    (5, 2.0 / 15.0),
    (7, -17.0 / 315.0),
    (9, 62.0 / 2835.0),
];

/// Sigmoid expansion: `tanh(a₀ xᵀt + c₀)` with `u` of degree 1 in `t`,
/// truncated at the largest odd power ≤ `cfg.taylor_order`.
fn expand_sigmoid(
    model: &SvmModel,
    a0: f64,
    c0: f64,
    cfg: &ProtocolConfig,
) -> Result<ExpandedDecision, PpcsError> {
    let dim = model.dim();
    let order = if cfg.taylor_order.is_multiple_of(2) {
        cfg.taylor_order - 1
    } else {
        cfg.taylor_order
    }
    .max(1);
    check_basis_size(BasisKind::UpTo { degree: order }, dim, cfg)?;

    let mut acc = RealPoly::default();
    for (sv, &c) in model.support_vectors().iter().zip(model.coefficients()) {
        // u = a₀ Σ x_i t_i + c₀.
        let mut u = RealPoly::constant(dim, c0);
        for (i, &xi) in sv.iter().enumerate() {
            let mut e = vec![0u32; dim];
            e[i] = 1;
            u.add_term(e, a0 * xi);
        }

        let mut power = RealPoly::constant(dim, 1.0);
        let mut current_power = 0u32;
        for &(k, tk) in TANH_COEFFS.iter().filter(|(k, _)| *k <= order) {
            while current_power < k {
                power = power.mul(&u);
                power.truncate(order);
                current_power += 1;
            }
            acc.add_scaled(&power, c * tk);
        }
    }
    let mut result = project_to_basis(dim, order, &acc, cfg)?;
    result.bias += model.bias();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_svm::{Dataset, Label, SmoParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_model(kernel: Kernel, dim: usize, seed: u64) -> SvmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for k in 0..60 {
            let positive = k % 2 == 0;
            let c = if positive { 0.6 } else { -0.6 };
            ds.push(
                (0..dim).map(|_| c + rng.gen_range(-0.4..0.4)).collect(),
                if positive {
                    Label::Positive
                } else {
                    Label::Negative
                },
            );
        }
        SvmModel::train(&ds, kernel, &SmoParams::default())
    }

    fn assert_expansion_matches(model: &SvmModel, tol: f64, cfg: &ProtocolConfig, seed: u64) {
        let expanded = expand_model(model, cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let t: Vec<f64> = (0..model.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let direct = model.decision(&t);
            let via_expansion = expanded.eval(&t);
            assert!(
                (direct - via_expansion).abs() < tol,
                "direct {direct} vs expanded {via_expansion}"
            );
        }
    }

    #[test]
    fn multiset_enumeration_is_complete_and_ordered() {
        let mut seen = Vec::new();
        for_each_multiset(3, 2, &mut |t| seen.push(t.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 1],
                vec![1, 2],
                vec![2, 2]
            ]
        );
        assert_eq!(
            seen.len() as u64,
            BasisKind::Homogeneous { degree: 2 }.len(3).unwrap()
        );
    }

    #[test]
    fn upto_basis_counts() {
        // UpTo(2) over 3 vars: 3 linear + 6 quadratic = 9 = C(5,2) − 1.
        assert_eq!(BasisKind::UpTo { degree: 2 }.len(3), Some(9));
        let mut count = 0;
        BasisKind::UpTo { degree: 2 }.for_each(3, |_| count += 1);
        assert_eq!(count, 9);
    }

    #[test]
    fn features_align_with_enumeration() {
        let basis = BasisKind::Homogeneous { degree: 2 };
        let t = [2.0, 3.0, 5.0];
        // Order: 00, 01, 02, 11, 12, 22.
        assert_eq!(basis.features(&t), vec![4.0, 6.0, 10.0, 9.0, 15.0, 25.0]);
    }

    #[test]
    fn features_many_matches_per_sample_features() {
        let mut rng = StdRng::seed_from_u64(55);
        for basis in [
            BasisKind::Homogeneous { degree: 3 },
            BasisKind::UpTo { degree: 2 },
        ] {
            let samples: Vec<Vec<f64>> = (0..9)
                .map(|_| (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect();
            let batch = basis.features_many(4, &samples);
            for (t, row) in samples.iter().zip(&batch) {
                assert_eq!(&basis.features(t), row);
            }
        }
        assert!(BasisKind::UpTo { degree: 2 }
            .features_many(3, &[])
            .is_empty());
    }

    #[test]
    fn homogeneous_expansion_is_exact() {
        let model = toy_model(
            Kernel::Polynomial {
                a0: 0.5,
                b0: 0.0,
                degree: 3,
            },
            4,
            1,
        );
        assert_expansion_matches(&model, 1e-9, &ProtocolConfig::default(), 100);
    }

    #[test]
    fn inhomogeneous_expansion_is_exact() {
        let model = toy_model(
            Kernel::Polynomial {
                a0: 0.7,
                b0: 1.3,
                degree: 3,
            },
            3,
            2,
        );
        assert_expansion_matches(&model, 1e-9, &ProtocolConfig::default(), 101);
    }

    #[test]
    fn rbf_expansion_approximates() {
        let model = toy_model(Kernel::Rbf { gamma: 0.3 }, 3, 3);
        let cfg = ProtocolConfig {
            taylor_order: 6,
            ..ProtocolConfig::default()
        };
        // Taylor truncation: approximate agreement only.
        assert_expansion_matches(&model, 0.05, &cfg, 102);
    }

    #[test]
    fn rbf_taylor_error_shrinks_with_order() {
        let model = toy_model(Kernel::Rbf { gamma: 0.4 }, 2, 4);
        let mut rng = StdRng::seed_from_u64(103);
        let samples: Vec<Vec<f64>> = (0..30)
            .map(|_| (0..2).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut prev_err = f64::INFINITY;
        for order in [1u32, 3, 5] {
            let cfg = ProtocolConfig {
                taylor_order: order,
                ..ProtocolConfig::default()
            };
            let expanded = expand_model(&model, &cfg).unwrap();
            let err: f64 = samples
                .iter()
                .map(|t| (model.decision(t) - expanded.eval(t)).abs())
                .fold(0.0, f64::max);
            assert!(
                err < prev_err + 1e-12,
                "order {order}: error {err} should not exceed previous {prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 0.05, "order-5 truncation should be close");
    }

    #[test]
    fn sigmoid_expansion_approximates() {
        let model = toy_model(Kernel::Sigmoid { a0: 0.3, c0: 0.1 }, 3, 5);
        let cfg = ProtocolConfig {
            taylor_order: 7,
            ..ProtocolConfig::default()
        };
        assert_expansion_matches(&model, 0.05, &cfg, 104);
    }

    #[test]
    fn linear_kernel_is_rejected() {
        let model = toy_model(Kernel::Linear, 3, 6);
        assert!(matches!(
            expand_model(&model, &ProtocolConfig::default()),
            Err(PpcsError::Expansion(_))
        ));
    }

    #[test]
    fn expansion_cap_is_enforced() {
        let model = toy_model(Kernel::paper_polynomial(6), 6, 7);
        let cfg = ProtocolConfig {
            max_expanded_terms: 10,
            ..ProtocolConfig::default()
        };
        let err = expand_model(&model, &cfg).unwrap_err();
        assert!(matches!(err, PpcsError::Expansion(_)));
    }

    #[test]
    fn multiplicities_are_run_lengths() {
        assert_eq!(multiplicities(&[0, 0, 0]), vec![3]);
        assert_eq!(multiplicities(&[0, 1, 1]), vec![1, 2]);
        assert_eq!(multiplicities(&[0, 1, 2]), vec![1, 1, 1]);
    }
}
