//! Private one-vs-rest multi-class classification — an extension of the
//! paper's binary protocol (its related work [15] targets multi-class
//! SVM outsourcing; the OMPE machinery composes naturally).
//!
//! ## The amplifier subtlety
//!
//! The binary protocol hides the decision value behind a fresh positive
//! amplifier `r_a` per query — sign-preserving, magnitude-destroying.
//! One-vs-rest prediction, however, needs the **argmax** across class
//! decision values, and values amplified by *different* `r_a` are not
//! comparable. Two modes are offered:
//!
//! * [`MultiClassMode::SignOnly`] — each class model is queried
//!   independently (fresh amplifier each, exactly the paper's hiding
//!   level). The prediction is decided only when exactly one class says
//!   "positive"; overlapping or empty regions return `None`.
//! * [`MultiClassMode::SharedAmplifier`] — the trainer reuses one
//!   amplifier across the per-class evaluations *of a single sample*
//!   (still fresh across samples). Values become mutually comparable, so
//!   argmax works exactly like the plain classifier, at the cost of
//!   revealing the *ratios* of the class decision values for that sample
//!   (but still neither their scale nor the models).

use std::collections::VecDeque;

use ppcs_math::Algebra;
use ppcs_ompe::OmpeSenderOffline;
use ppcs_ot::{ObliviousTransfer, OtSelect};
use ppcs_svm::MultiClassModel;
use ppcs_transport::{drive_blocking, Encodable, Endpoint, FrameIo, ProtocolEngine};
use rand::RngCore;

use crate::classify::{ClassifySpec, Client, Trainer};
use crate::config::ProtocolConfig;
use crate::error::PpcsError;

const KIND_MC_HELLO: u16 = 0x0700;
const KIND_MC_SPEC: u16 = 0x0701;

/// How per-class decision values are randomized (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiClassMode {
    /// Fresh amplifier per class query; prediction only on unambiguous
    /// sign patterns.
    SignOnly,
    /// One amplifier per sample shared across class queries; full argmax
    /// prediction.
    SharedAmplifier,
}

impl MultiClassMode {
    fn wire(self) -> u64 {
        match self {
            MultiClassMode::SignOnly => 0,
            MultiClassMode::SharedAmplifier => 1,
        }
    }

    fn from_wire(v: u64) -> Result<Self, PpcsError> {
        match v {
            0 => Ok(MultiClassMode::SignOnly),
            1 => Ok(MultiClassMode::SharedAmplifier),
            other => Err(PpcsError::Protocol(format!(
                "unknown multiclass mode {other}"
            ))),
        }
    }
}

/// Trainer role for private multi-class classification.
pub struct MultiClassTrainer<A: Algebra> {
    class_ids: Vec<u32>,
    trainers: Vec<Trainer<A>>,
    mode: MultiClassMode,
    alg: A,
    cfg: ProtocolConfig,
}

impl<A: Algebra> MultiClassTrainer<A>
where
    A::Elem: Encodable,
{
    /// Prepares a multi-class model for private serving.
    ///
    /// # Errors
    ///
    /// Propagates per-class [`Trainer::new`] failures.
    pub fn new(
        alg: A,
        model: &MultiClassModel,
        cfg: ProtocolConfig,
        mode: MultiClassMode,
    ) -> Result<Self, PpcsError> {
        let trainers = model
            .binary_models()
            .iter()
            .map(|m| Trainer::new(alg.clone(), m, cfg))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            class_ids: model.class_ids().to_vec(),
            trainers,
            mode,
            alg,
            cfg,
        })
    }

    /// Serves one multi-class session; returns samples served.
    ///
    /// # Errors
    ///
    /// Transport and OMPE failures.
    pub fn serve(
        &self,
        ep: &Endpoint,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
    ) -> Result<usize, PpcsError> {
        let sel = ot.select();
        let mut engine =
            ProtocolEngine::new(|io| async move { self.serve_io(&io, sel, rng).await });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O twin of [`MultiClassTrainer::serve`].
    ///
    /// # Errors
    ///
    /// Same as [`MultiClassTrainer::serve`].
    pub async fn serve_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
    ) -> Result<usize, PpcsError> {
        self.serve_session_io(io, sel, rng, None).await
    }

    /// [`MultiClassTrainer::serve_io`] consuming precomputed offline
    /// material: each per-class round pops one pack from `packs` (see
    /// [`MultiClassTrainer::precompute_packs`]); when the queue runs dry
    /// the remaining rounds draw their offline halves inline. Either way
    /// the wire traffic is identical, so any client pairs with it.
    ///
    /// # Errors
    ///
    /// Same as [`MultiClassTrainer::serve_io`].
    pub async fn serve_offline_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        packs: &mut VecDeque<OmpeSenderOffline<A>>,
    ) -> Result<usize, PpcsError> {
        self.serve_session_io(io, sel, rng, Some(packs)).await
    }

    /// Draws `rounds` single-round offline packs for this trainer's
    /// shared per-class spec, ready to feed
    /// [`MultiClassTrainer::serve_offline_io`]. One pack is consumed per
    /// class round, so a session over `s` samples and `c` classes wants
    /// `s·c` of them.
    pub fn precompute_packs(
        &self,
        sel: OtSelect,
        rounds: usize,
        rng: &mut dyn RngCore,
    ) -> VecDeque<OmpeSenderOffline<A>> {
        (0..rounds)
            .map(|_| self.trainers[0].precompute_material(sel, 1, rng))
            .collect()
    }

    async fn serve_session_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        mut packs: Option<&mut VecDeque<OmpeSenderOffline<A>>>,
    ) -> Result<usize, PpcsError> {
        let num_samples: u64 = io.recv_msg(KIND_MC_HELLO).await?;
        // Peer-chosen batch size bounds the per-class serving work below.
        if num_samples > crate::classify::MAX_BATCH_SAMPLES {
            return Err(PpcsError::Protocol(format!(
                "client requested {num_samples} samples, per-session cap is {}",
                crate::classify::MAX_BATCH_SAMPLES
            )));
        }
        let mut header: Vec<u8> = Vec::new();
        header.extend_from_slice(&(self.class_ids.len() as u64).to_le_bytes());
        header.extend_from_slice(&self.mode.wire().to_le_bytes());
        for &c in &self.class_ids {
            header.extend_from_slice(&u64::from(c).to_le_bytes());
        }
        // All one-vs-rest models share kernel and dimensionality, so one
        // spec covers every class round.
        for field in self.trainers[0].spec().encode_wire() {
            header.extend_from_slice(&field.to_le_bytes());
        }
        io.send_msg(KIND_MC_SPEC, &header)?;

        for sample_idx in 0..num_samples {
            let shared = match self.mode {
                MultiClassMode::SharedAmplifier => Some(self.cfg.draw_amplifier(rng)),
                MultiClassMode::SignOnly => None,
            };
            for trainer in &self.trainers {
                let ra = match shared {
                    Some(ra) => ra,
                    None => self.cfg.draw_amplifier(rng),
                };
                let material = packs.as_mut().and_then(|q| q.pop_front());
                trainer
                    .serve_one_with_amplifier_io(io, sel, rng, self.alg.encode_int(ra), material)
                    .await?;
            }
            let _ = sample_idx;
        }
        Ok(num_samples as usize)
    }
}

/// Client role for private multi-class classification.
pub struct MultiClassClient<A: Algebra> {
    client: Client<A>,
    alg: A,
}

impl<A: Algebra> MultiClassClient<A>
where
    A::Elem: Encodable,
{
    /// Creates a client.
    pub fn new(alg: A, cfg: ProtocolConfig) -> Self {
        Self {
            client: Client::new(alg.clone(), cfg),
            alg,
        }
    }

    /// Classifies private samples; per sample, returns `Some(class)` or
    /// `None` when the session ran in [`MultiClassMode::SignOnly`] and
    /// the sign pattern was ambiguous.
    ///
    /// # Errors
    ///
    /// Transport, protocol, and OMPE failures.
    pub fn classify_batch(
        &self,
        ep: &Endpoint,
        ot: &dyn ObliviousTransfer,
        rng: &mut dyn RngCore,
        samples: &[Vec<f64>],
    ) -> Result<Vec<Option<u32>>, PpcsError> {
        let sel = ot.select();
        let mut engine = ProtocolEngine::new(|io| async move {
            self.classify_batch_io(&io, sel, rng, samples).await
        });
        drive_blocking(ep, &mut engine)
    }

    /// Sans-I/O twin of [`MultiClassClient::classify_batch`].
    ///
    /// # Errors
    ///
    /// Same as [`MultiClassClient::classify_batch`].
    pub async fn classify_batch_io(
        &self,
        io: &FrameIo,
        sel: OtSelect,
        rng: &mut dyn RngCore,
        samples: &[Vec<f64>],
    ) -> Result<Vec<Option<u32>>, PpcsError> {
        io.send_msg(KIND_MC_HELLO, &(samples.len() as u64))?;
        let header: Vec<u8> = io.recv_msg(KIND_MC_SPEC).await?;
        if header.len() < 16 || !header.len().is_multiple_of(8) {
            return Err(PpcsError::Protocol("malformed multiclass header".into()));
        }
        let fields: Vec<u64> = header
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let num_classes = fields[0] as usize;
        let mode = MultiClassMode::from_wire(fields[1])?;
        // Header layout: count | mode | class ids | 6 spec fields.
        if fields.len() != 2 + num_classes + 6 {
            return Err(PpcsError::Protocol(
                "multiclass header shape mismatch".into(),
            ));
        }
        let class_ids: Vec<u32> = fields[2..2 + num_classes]
            .iter()
            .map(|&c| c as u32)
            .collect();
        let spec = ClassifySpec::decode_wire(&fields[2 + num_classes..])?;

        let mut out = Vec::with_capacity(samples.len());
        for sample in samples {
            let mut values = Vec::with_capacity(num_classes);
            for _class in 0..num_classes {
                let (_, value) = self
                    .client
                    .classify_one_io(io, sel, rng, sample, &spec)
                    .await?;
                values.push(value);
            }
            out.push(decide(&class_ids, &values, mode));
        }
        let _ = &self.alg;
        Ok(out)
    }
}

/// Decision rule per mode (see module docs).
fn decide(class_ids: &[u32], values: &[f64], mode: MultiClassMode) -> Option<u32> {
    match mode {
        MultiClassMode::SharedAmplifier => {
            let best = values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))?;
            Some(class_ids[best.0])
        }
        MultiClassMode::SignOnly => {
            let positives: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| **v > 0.0)
                .map(|(i, _)| i)
                .collect();
            match positives.as_slice() {
                [only] => Some(class_ids[*only]),
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_math::F64Algebra;
    use ppcs_ot::TrustedSimOt;
    use ppcs_svm::{Kernel, MultiDataset, SmoParams};
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    static SIM: TrustedSimOt = TrustedSimOt;

    fn three_blobs(n: usize, seed: u64) -> MultiDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(-0.7, -0.7), (0.7, -0.5), (0.0, 0.8)];
        let mut ds = MultiDataset::new(2);
        for k in 0..n {
            let class = (k % 3) as u32;
            let (cx, cy) = centers[class as usize];
            ds.push(
                vec![
                    cx + rng.gen_range(-0.25..0.25),
                    cy + rng.gen_range(-0.25..0.25),
                ],
                class,
            );
        }
        ds
    }

    fn run_session(
        model: &MultiClassModel,
        mode: MultiClassMode,
        samples: Vec<Vec<f64>>,
        seed: u64,
    ) -> Vec<Option<u32>> {
        let cfg = ProtocolConfig::default();
        let trainer = MultiClassTrainer::new(F64Algebra::new(), model, cfg, mode).expect("trainer");
        let client = MultiClassClient::new(F64Algebra::new(), cfg);
        let (_, labels) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed);
                trainer.serve(&ep, &SIM, &mut rng).expect("serve")
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                client
                    .classify_batch(&ep, &SIM, &mut rng, &samples)
                    .expect("classify")
            },
        );
        labels
    }

    #[test]
    fn shared_amplifier_matches_plain_argmax() {
        let ds = three_blobs(150, 1);
        let model = MultiClassModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let samples: Vec<Vec<f64>> = (0..30).map(|i| ds.features(i).to_vec()).collect();
        let got = run_session(&model, MultiClassMode::SharedAmplifier, samples.clone(), 10);
        for (sample, label) in samples.iter().zip(&got) {
            assert_eq!(*label, Some(model.predict(sample)));
        }
    }

    #[test]
    fn sign_only_agrees_when_unambiguous() {
        let ds = three_blobs(150, 2);
        let model = MultiClassModel::train(&ds, Kernel::Linear, &SmoParams::default());
        let samples: Vec<Vec<f64>> = (0..30).map(|i| ds.features(i).to_vec()).collect();
        let got = run_session(&model, MultiClassMode::SignOnly, samples.clone(), 20);
        let mut decided = 0;
        for (sample, label) in samples.iter().zip(&got) {
            if let Some(class) = label {
                decided += 1;
                // An unambiguous sign pattern must match the plain
                // argmax (the positive model dominates).
                assert_eq!(*class, model.predict(sample));
            }
        }
        assert!(
            decided > samples.len() / 2,
            "well-separated blobs should mostly be unambiguous: {decided}/{}",
            samples.len()
        );
    }

    #[test]
    fn sign_only_reports_ambiguity_between_blobs() {
        let ds = three_blobs(150, 3);
        let model = MultiClassModel::train(&ds, Kernel::Linear, &SmoParams::default());
        // A point far outside every blob: likely zero or multiple
        // positives over many randomized runs — must never panic.
        let far = vec![vec![-0.95, 0.95]];
        let _ = run_session(&model, MultiClassMode::SignOnly, far, 30);
    }

    #[test]
    fn mode_wire_roundtrip() {
        for mode in [MultiClassMode::SignOnly, MultiClassMode::SharedAmplifier] {
            assert_eq!(MultiClassMode::from_wire(mode.wire()).unwrap(), mode);
        }
        assert!(MultiClassMode::from_wire(9).is_err());
    }

    #[test]
    fn decide_rules() {
        let ids = [5u32, 6, 7];
        assert_eq!(
            decide(&ids, &[-1.0, 3.0, 2.0], MultiClassMode::SharedAmplifier),
            Some(6)
        );
        assert_eq!(
            decide(&ids, &[-1.0, 3.0, -2.0], MultiClassMode::SignOnly),
            Some(6)
        );
        assert_eq!(
            decide(&ids, &[1.0, 3.0, -2.0], MultiClassMode::SignOnly),
            None
        );
        assert_eq!(
            decide(&ids, &[-1.0, -3.0, -2.0], MultiClassMode::SignOnly),
            None
        );
    }
}
