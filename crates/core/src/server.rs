//! Multi-client serving runtime for classification trainers.
//!
//! [`TrainerServer`] wraps a [`Trainer`] so it can face many concurrent
//! client lanes while staying healthy under load and abuse:
//!
//! * **Admission control** — at most `max_sessions` classification
//!   sessions run at once; a session arriving beyond capacity (or after
//!   a drain began) is answered with one
//!   [`KIND_BUSY`](ppcs_transport::KIND_BUSY) frame and shed, never
//!   silently dropped or queued unboundedly.
//! * **Session budgets** — every admitted session is driven under the
//!   configured [`SessionLimits`] (wall-clock deadline, frame count,
//!   wire bytes), so a slow-loris or flooding peer is cut with a typed
//!   [`TransportError::Budget`](ppcs_transport::TransportError) inside
//!   its budget instead of holding a slot forever.
//! * **Graceful drain** — [`SessionSupervisor::drain`] stops admission
//!   immediately, lets in-flight sessions finish inside the drain
//!   deadline, then cuts the stragglers through the drivers' shared
//!   cancel token.
//!
//! Every hostile-session outcome is counted ([`ServeSummary`]) and, when
//! a [`MetricsRegistry`] is attached, surfaces through the standard
//! telemetry report (`sessions_admitted`, `sessions_shed`,
//! `budget_exceeded`, `malformed_rejected`).

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ppcs_math::Algebra;
use ppcs_ot::{ObliviousTransfer, OtSelect};
use ppcs_telemetry::{
    FlightEventKind, FlightRecorder, MetricsRegistry, DETAIL_DRAIN_BEGAN, DETAIL_DRAIN_CUT,
};
use ppcs_transport::{
    busy_frame, AsyncDriver, AsyncEvent, ConnId, DriveOptions, Driver, Encodable, HealthStatus,
    Lane, SessionLimits, TransportError, KIND_HEALTH,
};

use crate::classify::{
    transport_cause, Trainer, KIND_CLS_FIN, KIND_CLS_HELLO, KIND_CLS_WARM_HELLO,
};
use crate::error::PpcsError;
use crate::precompute::PrecomputePool;

/// How often idle lanes and draining watchdogs re-check their flags.
const POLL_SLICE: Duration = Duration::from_millis(20);

/// Configuration for a [`TrainerServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum classification sessions served concurrently; arrivals
    /// beyond this are shed with a `KIND_BUSY` frame.
    pub max_sessions: usize,
    /// Budgets every admitted session is driven under.
    pub limits: SessionLimits,
    /// How long an idle lane (connected, but no session opening) is kept
    /// before its thread gives up on the client.
    pub idle_timeout: Duration,
    /// Grace period between [`SessionSupervisor::drain`] and the forced
    /// cut of still-running sessions.
    pub drain_deadline: Duration,
    /// How many precomputed offline packs the serving run keeps ready
    /// (filled from idle time, drained on
    /// [`SessionSupervisor::drain`]). `0` disables precomputation
    /// entirely — every session then runs monolithically.
    pub precompute_capacity: usize,
    /// Masking polynomials per precomputed pack — one is consumed per
    /// sample, so size this near the expected batch size. A session
    /// whose batch outgrows its pack refreshes the remainder inline.
    pub precompute_masks: usize,
    /// Retry-after hint carried in `KIND_BUSY` shed replies: how long a
    /// shed client should wait before redialing. `None` sheds without a
    /// hint (the client falls back to its own backoff).
    pub retry_after: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            limits: SessionLimits::unlimited()
                .with_deadline(Duration::from_secs(30))
                .with_max_frames(1 << 16)
                .with_max_wire_bytes(64 << 20),
            idle_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(1),
            precompute_capacity: 8,
            precompute_masks: 16,
            retry_after: Some(Duration::from_millis(100)),
        }
    }
}

#[derive(Debug, Default)]
struct SupervisorInner {
    max_sessions: usize,
    active: AtomicUsize,
    draining: AtomicBool,
    /// Shared with every session driver via `Driver::with_cancel`: set
    /// once the drain deadline passes to cut in-flight sessions.
    cut: Arc<AtomicBool>,
    admitted: AtomicU64,
    shed: AtomicU64,
    budget_exceeded: AtomicU64,
    malformed_rejected: AtomicU64,
    /// Parks the drain watchdog between events. [`SessionSupervisor::drain`]
    /// and run completion both notify here, so drain latency is bounded
    /// by the condvar handoff rather than a sleep-poll quantum.
    wake_lock: Mutex<()>,
    wake: Condvar,
}

/// Cloneable control/observation handle over a serving run: admission
/// state, drain control, and the hostile-session counters.
///
/// Obtain one with [`TrainerServer::supervisor`] before calling
/// [`TrainerServer::serve`], hand it to another thread, and use it to
/// watch or drain the run.
#[derive(Clone, Debug)]
pub struct SessionSupervisor {
    inner: Arc<SupervisorInner>,
}

impl SessionSupervisor {
    fn new(max_sessions: usize) -> Self {
        Self {
            inner: Arc::new(SupervisorInner {
                max_sessions,
                ..SupervisorInner::default()
            }),
        }
    }

    /// Sessions currently being served.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::Acquire)
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Begins a graceful drain: admission stops immediately, in-flight
    /// sessions get the configured drain deadline to finish, then the
    /// cut token terminates whatever remains.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
        self.wake_watchdog();
    }

    /// Wakes the drain watchdog (and any other condvar waiter) so it can
    /// re-check the `draining`/stop flags. Taking the lock first closes
    /// the store-then-park race: a waiter holding the lock has either
    /// already seen the new flag value or is inside `wait`, where the
    /// notification cannot be lost.
    fn wake_watchdog(&self) {
        let _guard = self.inner.wake_lock.lock().expect("supervisor wake lock");
        self.inner.wake.notify_all();
    }

    /// Whether the forced cut (post-drain-deadline) has fired.
    pub fn cut(&self) -> bool {
        self.inner.cut.load(Ordering::Acquire)
    }

    fn force_cut(&self) {
        self.inner.cut.store(true, Ordering::Release);
    }

    /// Tries to claim a session slot; `None` when at capacity or
    /// draining. The slot is released when the permit drops.
    fn try_admit(&self) -> Option<SessionPermit> {
        if self.draining() {
            return None;
        }
        let mut current = self.inner.active.load(Ordering::Acquire);
        loop {
            if current >= self.inner.max_sessions {
                return None;
            }
            match self.inner.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Some(SessionPermit {
                        supervisor: self.clone(),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }

    fn summary(&self, served_samples: usize) -> ServeSummary {
        ServeSummary {
            served_samples,
            sessions_admitted: self.inner.admitted.load(Ordering::Relaxed),
            sessions_shed: self.inner.shed.load(Ordering::Relaxed),
            budget_exceeded: self.inner.budget_exceeded.load(Ordering::Relaxed),
            malformed_rejected: self.inner.malformed_rejected.load(Ordering::Relaxed),
        }
    }
}

/// RAII admission slot: dropping it frees capacity for the next session.
#[derive(Debug)]
struct SessionPermit {
    supervisor: SessionSupervisor,
}

/// Per-connection bookkeeping for the async serving loop: the stable
/// lane index and session counter feeding the per-session seed formula
/// (identical to the blocking path), plus the held admission permit
/// while a session is in flight.
#[derive(Debug)]
struct ConnMeta {
    lane_idx: u64,
    sessions: u64,
    permit: Option<SessionPermit>,
}

impl ConnMeta {
    fn new(lane_idx: u64) -> Self {
        Self {
            lane_idx,
            sessions: 0,
            permit: None,
        }
    }
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.supervisor.inner.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Outcome counters for one [`TrainerServer::serve`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Samples classified across every successfully completed session.
    pub served_samples: usize,
    /// Sessions admitted (whether or not they later completed).
    pub sessions_admitted: u64,
    /// Sessions shed at admission with a `KIND_BUSY` reply.
    pub sessions_shed: u64,
    /// Admitted sessions terminated for exhausting a budget (including
    /// drain cuts).
    pub budget_exceeded: u64,
    /// Sessions terminated for malformed or protocol-violating input.
    pub malformed_rejected: u64,
}

/// A hardened multi-client front for a [`Trainer`]: admission control,
/// per-session budgets, and graceful drain over any set of [`Lane`]s.
///
/// # Examples
///
/// ```
/// use ppcs_core::{ProtocolConfig, ServerConfig, Trainer, TrainerServer};
/// use ppcs_math::F64Algebra;
/// use ppcs_ot::TrustedSimOt;
/// use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
/// use ppcs_transport::duplex_pool;
///
/// let mut dataset = Dataset::new(2);
/// dataset.push(vec![1.0, 1.0], Label::Positive);
/// dataset.push(vec![-1.0, -1.0], Label::Negative);
/// let model = SvmModel::train(&dataset, Kernel::Linear, &SmoParams::default());
/// let trainer = Trainer::new(F64Algebra::new(), &model, ProtocolConfig::default()).unwrap();
///
/// let server = TrainerServer::new(&trainer, ServerConfig::default());
/// let (server_lanes, client_lanes) = duplex_pool(2);
/// let ot = TrustedSimOt;
/// std::thread::scope(|scope| {
///     scope.spawn(|| {
///         // Clients classify on `client_lanes` concurrently...
///         drop(client_lanes); // (here: nobody calls, lanes just close)
///     });
///     let summary = server.serve(&server_lanes, &ot, 7);
///     assert_eq!(summary.sessions_shed, 0);
/// });
/// ```
pub struct TrainerServer<'a, A: Algebra> {
    trainer: &'a Trainer<A>,
    config: ServerConfig,
    supervisor: SessionSupervisor,
    metrics: Option<Arc<MetricsRegistry>>,
    /// Post-mortem flight recorder shared with the async driver (and fed
    /// directly by the blocking path, keyed by lane index).
    recorder: Option<Arc<FlightRecorder>>,
    /// A `/metrics` endpoint listener handed to the next async serving
    /// run. Interior mutability because the serve entry points take
    /// `&self` but the driver consumes the listener.
    metrics_endpoint: Mutex<Option<TcpListener>>,
}

impl<'a, A: Algebra> TrainerServer<'a, A>
where
    A::Elem: Encodable,
{
    /// Wraps `trainer` for multi-client serving under `config`.
    pub fn new(trainer: &'a Trainer<A>, config: ServerConfig) -> Self {
        let supervisor = SessionSupervisor::new(config.max_sessions);
        Self {
            trainer,
            config,
            supervisor,
            metrics: None,
            recorder: None,
            metrics_endpoint: Mutex::new(None),
        }
    }

    /// Attaches a telemetry registry: admission decisions and session
    /// outcomes are counted there, and every session driver reports its
    /// wire traffic and budget trips through it.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a post-mortem flight recorder: admission, shedding,
    /// budget trips, malformed input, timer fires, and drain state
    /// transitions land in its fixed-size ring. At the end of an async
    /// run the ring is dumped to the path in `PPCS_FLIGHT_OUT` (when
    /// set); it can also be scraped live through
    /// [`with_metrics_endpoint`](TrainerServer::with_metrics_endpoint)
    /// at `GET /flightrecorder`.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Serves a live `/metrics` (Prometheus text exposition plus live
    /// session table) and `/flightrecorder` endpoint on `listener`
    /// during the **next** async serving run, multiplexed on the same
    /// reactor thread as the protocol traffic. Bind to loopback unless
    /// the scrape network is trusted: the surface never carries
    /// payloads, but it is unauthenticated.
    #[must_use]
    pub fn with_metrics_endpoint(self, listener: TcpListener) -> Self {
        *self.metrics_endpoint.lock().expect("metrics endpoint lock") = Some(listener);
        self
    }

    /// A handle for watching or draining the run from another thread.
    pub fn supervisor(&self) -> SessionSupervisor {
        self.supervisor.clone()
    }

    /// Serves classification sessions on every lane concurrently until
    /// each lane closes (client `FIN`, disconnect, or idle timeout) or a
    /// drain completes. One lane serves many back-to-back sessions; a
    /// hostile or failed session terminates with a structured error and
    /// costs only itself.
    ///
    /// Unlike [`Trainer::serve_parallel`], this never returns an error:
    /// per-session failures are triaged into the [`ServeSummary`] (and
    /// the attached metrics), because on a hostile network a peer
    /// failure is an expected outcome, not a server fault.
    ///
    /// Per-session randomness derives from `seed`, the lane index, and a
    /// per-lane session counter, so runs are reproducible.
    pub fn serve<L: Lane>(
        &self,
        lanes: &[L],
        ot: &dyn ObliviousTransfer,
        seed: u64,
    ) -> ServeSummary {
        let sel = ot.select();
        let stop_watchdog = AtomicBool::new(false);
        let pool = self.build_pool(sel, seed);
        let served: usize = std::thread::scope(|scope| {
            let watchdog = scope.spawn(|| self.drain_watchdog(&stop_watchdog));
            let handles: Vec<_> = lanes
                .iter()
                .enumerate()
                .map(|(i, lane)| {
                    let pool = pool.as_ref();
                    scope.spawn(move || self.serve_lane(lane, sel, seed, i as u64, pool))
                })
                .collect();
            let total = handles
                .into_iter()
                .map(|h| h.join().expect("serve lane thread panicked"))
                .sum();
            stop_watchdog.store(true, Ordering::Release);
            self.supervisor.wake_watchdog();
            watchdog.join().expect("watchdog thread panicked");
            total
        });
        self.supervisor.summary(served)
    }

    /// Arms the forced cut once a drain's grace period expires.
    ///
    /// Event-driven: the watchdog parks on the supervisor's condvar and
    /// is notified by [`SessionSupervisor::drain`] or run completion, so
    /// it reacts immediately instead of discovering flag flips one
    /// sleep-poll quantum late.
    fn drain_watchdog(&self, stop: &AtomicBool) {
        let inner = &self.supervisor.inner;
        let mut guard = inner.wake_lock.lock().expect("watchdog lock");
        // Park until a drain begins (or the run finishes first).
        while !self.supervisor.draining() && !stop.load(Ordering::Acquire) {
            guard = inner.wake.wait(guard).expect("watchdog wait");
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Grace period: give in-flight sessions until the drain deadline,
        // still waking immediately if the run completes underneath us.
        let deadline = Instant::now() + self.config.drain_deadline;
        loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (reacquired, _) = inner
                .wake
                .wait_timeout(guard, deadline - now)
                .expect("watchdog wait");
            guard = reacquired;
        }
        drop(guard);
        self.supervisor.force_cut();
    }

    /// Builds the serving run's precompute pool (when enabled), bound to
    /// this trainer's spec and the run's OT engine, with one pack ready
    /// before the first client arrives.
    fn build_pool(&self, sel: OtSelect, seed: u64) -> Option<PrecomputePool<A>> {
        if self.config.precompute_capacity == 0 {
            return None;
        }
        let mut pool = PrecomputePool::new(
            self.trainer.alg().clone(),
            sel,
            self.trainer.spec().ompe,
            self.config.precompute_capacity,
            self.config.precompute_masks,
            // Domain-separated from the session seeds so offline draws
            // never overlap an online session's randomness.
            seed ^ 0x0FF1_CE0F_F1CE_0FF1,
        );
        if let Some(reg) = &self.metrics {
            pool = pool.with_metrics(reg.clone());
        }
        pool.fill_one();
        Some(pool)
    }

    /// One lane's guarded session loop.
    fn serve_lane<L: Lane + ?Sized>(
        &self,
        lane: &L,
        sel: ppcs_ot::OtSelect,
        seed: u64,
        lane_idx: u64,
        pool: Option<&PrecomputePool<A>>,
    ) -> usize {
        let sup = &self.supervisor;
        let mut served = 0usize;
        let mut sessions: u64 = 0;
        let mut idle_since = Instant::now();
        loop {
            if sup.cut() {
                break;
            }
            // Short recv slices keep the lane responsive to drain/cut
            // even when the client sends nothing.
            lane.set_recv_timeout(Some(POLL_SLICE));
            let first = match lane.recv() {
                Ok(f) => f,
                Err(TransportError::Timeout) => {
                    if sup.draining() {
                        // No precomputed material outlives the run that
                        // drew it.
                        if let Some(p) = pool {
                            p.clear();
                        }
                        break;
                    }
                    if idle_since.elapsed() >= self.config.idle_timeout {
                        break;
                    }
                    // An idle recv slice with nothing to serve: put it
                    // toward offline work (budgeted — one pack per
                    // slice, so drain/cut stay responsive).
                    if let Some(p) = pool {
                        p.fill_one();
                    }
                    continue;
                }
                Err(TransportError::Disconnected) => break,
                Err(_) => {
                    // Garbage the transport itself rejected (e.g. a
                    // malformed coalesced batch): note it, stay up.
                    self.note_malformed();
                    continue;
                }
            };
            if first.kind == KIND_HEALTH {
                // A liveness/readiness probe: answered before (and
                // instead of) admission, even at capacity or mid-drain.
                // Deliberately does not reset `idle_since` — probes must
                // not keep an otherwise-idle lane alive forever.
                let _ = lane.send(self.health_status(pool).reply());
                continue;
            }
            if first.kind == KIND_CLS_FIN {
                break;
            }
            if first.kind != KIND_CLS_HELLO && first.kind != KIND_CLS_WARM_HELLO {
                // A session must open with a (cold or warm) HELLO;
                // anything else here is stale or hostile traffic.
                self.note_malformed();
                continue;
            }
            let Some(permit) = sup.try_admit() else {
                // At capacity or draining: explicit reject, not a hang,
                // with the configured retry-after hint so a polite
                // client redials when a slot is likely free.
                let _ = lane.send(busy_frame(self.config.retry_after));
                sup.inner.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(reg) = &self.metrics {
                    reg.record_session_shed();
                }
                if let Some(rec) = &self.recorder {
                    rec.record(FlightEventKind::Shed, lane_idx as u32, 0, 0);
                }
                continue;
            };
            sup.inner.admitted.fetch_add(1, Ordering::Relaxed);
            if let Some(reg) = &self.metrics {
                reg.record_session_admitted();
            }
            sessions += 1;
            if let Some(rec) = &self.recorder {
                // Blocking lanes have no ConnId; the lane index stands
                // in for the slot (epoch 0).
                rec.record(FlightEventKind::Admitted, lane_idx as u32, 0, sessions);
            }
            let session_seed = seed
                .wrapping_add(lane_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(sessions);
            let warm = first.kind == KIND_CLS_WARM_HELLO;
            // A dry pool is a miss, not a failure: the session serves
            // monolithically. (The pool is built from this trainer's own
            // spec, so the config-mismatch arm is unreachable here.)
            let material = pool.and_then(|p| {
                p.take(sel, &self.trainer.spec().ompe)
                    .expect("pool built from this trainer's spec")
            });
            let mut engine = self
                .trainer
                .serve_session_engine(sel, session_seed, warm, material);
            engine.handle_input(first);
            let mut driver = Driver::new()
                .with_limits(self.config.limits.clone())
                .with_cancel(self.supervisor.inner.cut.clone());
            if let Some(reg) = &self.metrics {
                driver = driver.with_metrics(reg.clone());
            }
            let outcome = driver.drive(lane, &mut engine);
            drop(permit);
            idle_since = Instant::now();
            match outcome {
                Ok(n) => served += n,
                Err(e) => match transport_cause(&e) {
                    Some(TransportError::Disconnected) => break,
                    Some(TransportError::Budget(_)) => {
                        sup.inner.budget_exceeded.fetch_add(1, Ordering::Relaxed);
                        // The driver already counted it in the metrics.
                        if let Some(rec) = &self.recorder {
                            rec.record(FlightEventKind::BudgetTrip, lane_idx as u32, 0, sessions);
                        }
                    }
                    Some(TransportError::Timeout) => {}
                    // Codec-level garbage mid-session.
                    Some(_) => self.note_malformed(),
                    // Protocol-layer violation (bad spec, oversized
                    // batch, wrong counts, …): the peer deviated.
                    None => self.note_malformed(),
                },
            }
        }
        served
    }

    /// Serves classification sessions on every lane from **one thread**,
    /// multiplexed through an [`AsyncDriver`] event loop instead of a
    /// thread per lane.
    ///
    /// Behavior matches [`serve`](TrainerServer::serve) exactly —
    /// admission control, `KIND_BUSY` shedding, session budgets, idle
    /// timeouts, graceful drain, per-session seeds, and telemetry all
    /// carry over unchanged — but drain timing is enforced by the event
    /// loop itself (no watchdog thread), and parked sessions cost no OS
    /// thread while they wait for the peer.
    ///
    /// Returns `Err` only if the reactor itself cannot be constructed;
    /// per-session failures are triaged into the [`ServeSummary`], as on
    /// the blocking path.
    pub fn serve_async<L: Lane>(
        &self,
        lanes: &[L],
        ot: &dyn ObliviousTransfer,
        seed: u64,
    ) -> Result<ServeSummary, TransportError> {
        let sel = ot.select();
        let mut driver: AsyncDriver<'_, usize, PpcsError> = AsyncDriver::new()?;
        if let Some(reg) = &self.metrics {
            driver = driver.with_metrics(reg.clone());
        }
        self.attach_observability(&mut driver)?;
        let mut meta: HashMap<ConnId, ConnMeta> = HashMap::new();
        for (i, lane) in lanes.iter().enumerate() {
            let id = driver.add_lane(lane as &dyn Lane);
            driver.set_idle_deadline(id, Some(self.config.idle_timeout));
            meta.insert(id, ConnMeta::new(i as u64));
        }
        let pool = self.build_pool(sel, seed);
        let served = self.pump_async(&mut driver, &mut meta, sel, seed, false, pool.as_ref());
        Ok(self.supervisor.summary(served))
    }

    /// Serves classification sessions over TCP from one reactor thread:
    /// accepts on `listener`, multiplexes every connection through one
    /// [`AsyncDriver`], and runs until a drain completes (admission
    /// semantics as in [`serve_async`](TrainerServer::serve_async)).
    ///
    /// Unlike the lane-based entry points this cannot end by "all lanes
    /// closed" — new clients may always connect — so the run ends when
    /// [`SessionSupervisor::drain`] has been requested *and* every
    /// connection has finished or been cut.
    ///
    /// Per-connection seeds use the accept order as the lane index, so a
    /// run with a deterministic arrival order is reproducible.
    pub fn serve_async_tcp(
        &self,
        listener: TcpListener,
        ot: &dyn ObliviousTransfer,
        seed: u64,
    ) -> Result<ServeSummary, TransportError> {
        let sel = ot.select();
        let mut driver: AsyncDriver<'_, usize, PpcsError> = AsyncDriver::new()?;
        if let Some(reg) = &self.metrics {
            driver = driver.with_metrics(reg.clone());
        }
        self.attach_observability(&mut driver)?;
        driver.listen(listener)?;
        let mut meta: HashMap<ConnId, ConnMeta> = HashMap::new();
        let pool = self.build_pool(sel, seed);
        let served = self.pump_async(&mut driver, &mut meta, sel, seed, true, pool.as_ref());
        Ok(self.supervisor.summary(served))
    }

    /// Hands the configured flight recorder and `/metrics` listener to
    /// the async driver about to run.
    fn attach_observability<'s>(
        &'s self,
        driver: &mut AsyncDriver<'s, usize, PpcsError>,
    ) -> Result<(), TransportError> {
        if let Some(rec) = &self.recorder {
            driver.set_flight_recorder(rec.clone());
        }
        let endpoint = self
            .metrics_endpoint
            .lock()
            .expect("metrics endpoint lock")
            .take();
        if let Some(listener) = endpoint {
            driver.listen_metrics(listener)?;
        }
        Ok(())
    }

    /// The shared event loop behind both async entry points.
    ///
    /// `accepting` selects the termination rule: lane-based runs end when
    /// every connection closes; accepting (TCP) runs end when a drain has
    /// been requested and every connection closed. Drain timing is
    /// enforced inline — pending connections close the moment a drain is
    /// observed, in-flight sessions get `drain_deadline`, then the cut
    /// token (checked by parked sessions within one cancel slice)
    /// terminates the stragglers.
    fn pump_async<'s>(
        &'s self,
        driver: &mut AsyncDriver<'s, usize, PpcsError>,
        meta: &mut HashMap<ConnId, ConnMeta>,
        sel: OtSelect,
        seed: u64,
        accepting: bool,
        pool: Option<&PrecomputePool<A>>,
    ) -> usize {
        let sup = &self.supervisor;
        let mut served = 0usize;
        let mut next_lane_idx = meta.len() as u64;
        let mut drain_started: Option<Instant> = None;
        loop {
            let idle_now = driver.conns() == 0;
            if idle_now && (!accepting || sup.draining()) {
                break;
            }
            if sup.draining() {
                if drain_started.is_none() {
                    drain_started = Some(Instant::now());
                    self.record_run_transition(DETAIL_DRAIN_BEGAN);
                    // No precomputed material outlives the run that
                    // drew it.
                    if let Some(p) = pool {
                        p.clear();
                    }
                    // Admission is over. Pending (sessionless) connections
                    // get one short slice so a HELLO already in flight is
                    // still answered with `KIND_BUSY` — exactly the window
                    // a blocking lane has before its recv slice times out
                    // — then close; in-flight sessions get the grace
                    // period.
                    for id in driver.conn_ids() {
                        if driver.is_pending(id) {
                            driver.set_idle_deadline(id, Some(POLL_SLICE));
                        }
                    }
                    continue;
                }
                if !sup.cut()
                    && drain_started.is_some_and(|t0| t0.elapsed() >= self.config.drain_deadline)
                {
                    sup.force_cut();
                    self.record_run_transition(DETAIL_DRAIN_CUT);
                }
            }
            // While a drain grace period runs, wake at its deadline (or
            // sooner); otherwise a coarse slice — every actual event
            // (readiness, timer, waker) interrupts the wait anyway.
            let max_wait = match drain_started {
                Some(t0) if !sup.cut() => self
                    .config
                    .drain_deadline
                    .saturating_sub(t0.elapsed())
                    .clamp(Duration::from_millis(1), POLL_SLICE),
                _ => Duration::from_millis(50),
            };
            let events = driver.poll(max_wait);
            if events.is_empty() && !sup.draining() {
                // A poll that returned nothing is reactor idle time:
                // spend it on one budgeted offline pack, then get back
                // to the event loop.
                if let Some(p) = pool {
                    p.fill_one();
                }
            }
            for event in events {
                match event {
                    AsyncEvent::Accepted { conn } => {
                        if sup.draining() {
                            driver.close(conn);
                            continue;
                        }
                        driver.set_idle_deadline(conn, Some(self.config.idle_timeout));
                        meta.insert(conn, ConnMeta::new(next_lane_idx));
                        next_lane_idx += 1;
                    }
                    AsyncEvent::Opening { conn, frame } => {
                        if !driver.is_open(conn) {
                            continue;
                        }
                        if frame.kind == KIND_HEALTH {
                            // A liveness/readiness probe: answered before
                            // (and instead of) admission, even at capacity
                            // or mid-drain. Deliberately leaves the idle
                            // deadline unarmed/unchanged — probes must not
                            // keep an otherwise-idle connection alive.
                            let _ = driver.send_frame(conn, self.health_status(pool).reply());
                            continue;
                        }
                        if frame.kind == KIND_CLS_FIN {
                            driver.close(conn);
                            meta.remove(&conn);
                            continue;
                        }
                        if sup.draining() {
                            // A session racing the drain is answered like
                            // any over-capacity arrival: an explicit
                            // `KIND_BUSY`, then the lane closes.
                            if frame.kind == KIND_CLS_HELLO || frame.kind == KIND_CLS_WARM_HELLO {
                                let _ = driver.send_busy_after(conn, self.config.retry_after);
                                sup.inner.shed.fetch_add(1, Ordering::Relaxed);
                                if let Some(reg) = &self.metrics {
                                    reg.record_session_shed();
                                }
                            } else {
                                self.note_malformed();
                            }
                            driver.close(conn);
                            meta.remove(&conn);
                            continue;
                        }
                        if frame.kind != KIND_CLS_HELLO && frame.kind != KIND_CLS_WARM_HELLO {
                            // A session must open with a (cold or warm)
                            // HELLO; anything else here is stale or
                            // hostile traffic.
                            self.note_malformed();
                            driver.set_idle_deadline(conn, Some(self.config.idle_timeout));
                            continue;
                        }
                        let Some(permit) = sup.try_admit() else {
                            // At capacity: explicit reject, not a hang,
                            // with the configured retry-after hint.
                            let _ = driver.send_busy_after(conn, self.config.retry_after);
                            sup.inner.shed.fetch_add(1, Ordering::Relaxed);
                            if let Some(reg) = &self.metrics {
                                reg.record_session_shed();
                            }
                            driver.set_idle_deadline(conn, Some(self.config.idle_timeout));
                            continue;
                        };
                        sup.inner.admitted.fetch_add(1, Ordering::Relaxed);
                        if let Some(reg) = &self.metrics {
                            reg.record_session_admitted();
                        }
                        let state = meta.get_mut(&conn).expect("meta for open conn");
                        state.sessions += 1;
                        let session_seed = seed
                            .wrapping_add(state.lane_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                            .wrapping_add(state.sessions);
                        state.permit = Some(permit);
                        let warm = frame.kind == KIND_CLS_WARM_HELLO;
                        // A dry pool is a miss, not a failure: the
                        // session serves monolithically.
                        let material = pool.and_then(|p| {
                            p.take(sel, &self.trainer.spec().ompe)
                                .expect("pool built from this trainer's spec")
                        });
                        let mut engine =
                            self.trainer
                                .serve_session_engine(sel, session_seed, warm, material);
                        engine.handle_input(frame);
                        let mut opts = DriveOptions::new()
                            .with_limits(self.config.limits.clone())
                            .with_cancel(sup.inner.cut.clone());
                        if let Some(reg) = &self.metrics {
                            opts = opts.with_metrics(reg.clone());
                        }
                        driver.attach_engine(conn, engine, opts);
                    }
                    AsyncEvent::Finished { conn, result, .. } => {
                        if let Some(state) = meta.get_mut(&conn) {
                            state.permit = None;
                        }
                        match result {
                            Ok(n) => served += n,
                            Err(e) => match transport_cause(&e) {
                                Some(TransportError::Disconnected) => {
                                    driver.close(conn);
                                    meta.remove(&conn);
                                    continue;
                                }
                                Some(TransportError::Budget(_)) => {
                                    sup.inner.budget_exceeded.fetch_add(1, Ordering::Relaxed);
                                    // The driver already counted it in the
                                    // metrics.
                                }
                                Some(TransportError::Timeout) => {}
                                // Codec garbage mid-session, or a
                                // protocol-layer violation: the peer
                                // deviated.
                                Some(_) | None => self.note_malformed(),
                            },
                        }
                        if sup.draining() {
                            driver.close(conn);
                            meta.remove(&conn);
                        } else {
                            // Back to pending for a follow-up session.
                            driver.set_idle_deadline(conn, Some(self.config.idle_timeout));
                        }
                    }
                    AsyncEvent::Malformed { conn, .. } => {
                        self.note_malformed();
                        if driver.is_open(conn) {
                            driver.set_idle_deadline(conn, Some(self.config.idle_timeout));
                        } else {
                            meta.remove(&conn);
                        }
                    }
                    AsyncEvent::IdleExpired { conn } => {
                        driver.close(conn);
                        meta.remove(&conn);
                    }
                    AsyncEvent::Closed { conn } => {
                        meta.remove(&conn);
                    }
                }
            }
        }
        // Post-mortem artifacts: dump the flight ring to
        // `PPCS_FLIGHT_OUT` (when set) and flush any Chrome trace-out
        // buffer (`PPCS_TRACE_OUT`). Both are no-ops when unset.
        if let Some(rec) = &self.recorder {
            if let Ok(path) = std::env::var("PPCS_FLIGHT_OUT") {
                if !path.is_empty() {
                    rec.dump_to_file(&path);
                }
            }
        }
        ppcs_telemetry::flush_trace_out();
        served
    }

    /// Records a run-level (not per-connection) state transition; the
    /// sentinel slot `u32::MAX` marks events that belong to the serving
    /// run itself, like drain begin/cut.
    fn record_run_transition(&self, detail: u64) {
        if let Some(rec) = &self.recorder {
            rec.record(FlightEventKind::StateTransition, u32::MAX, 0, detail);
        }
    }

    /// The snapshot answered to a [`KIND_HEALTH`] probe: this trainer's
    /// serving epoch, the drain flag, the current precompute-pool depth,
    /// and the live session count. Probes are answered from both serving
    /// runtimes' pre-admission dispatch, so a fleet router can triage a
    /// replica even when it is at capacity or draining.
    fn health_status(&self, pool: Option<&PrecomputePool<A>>) -> HealthStatus {
        HealthStatus {
            epoch: self.trainer.epoch(),
            draining: self.supervisor.draining(),
            pool_depth: pool.map_or(0, |p| p.depth() as u64),
            active_sessions: self.supervisor.active() as u64,
        }
    }

    fn note_malformed(&self) {
        self.supervisor
            .inner
            .malformed_rejected
            .fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = &self.metrics {
            reg.record_malformed_rejected();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ppcs_math::F64Algebra;
    use ppcs_ot::TrustedSimOt;
    use ppcs_svm::{Dataset, Kernel, Label, SmoParams, SvmModel};
    use ppcs_transport::{duplex_pool, Frame};

    fn tiny_trainer() -> Trainer<F64Algebra> {
        let mut dataset = Dataset::new(2);
        dataset.push(vec![1.0, 1.0], Label::Positive);
        dataset.push(vec![-1.0, -1.0], Label::Negative);
        let model = SvmModel::train(&dataset, Kernel::Linear, &SmoParams::default());
        Trainer::new(F64Algebra::new(), &model, ProtocolConfig::default()).unwrap()
    }

    #[test]
    fn admission_permits_enforce_capacity() {
        let sup = SessionSupervisor::new(2);
        let p1 = sup.try_admit().expect("slot 1");
        let _p2 = sup.try_admit().expect("slot 2");
        assert!(sup.try_admit().is_none(), "capacity reached");
        assert_eq!(sup.active(), 2);
        drop(p1);
        assert!(sup.try_admit().is_some(), "slot freed on drop");
    }

    #[test]
    fn draining_stops_admission() {
        let sup = SessionSupervisor::new(8);
        assert!(sup.try_admit().is_some());
        sup.drain();
        assert!(sup.try_admit().is_none());
    }

    #[test]
    fn honest_clients_are_served_over_the_runtime() {
        let trainer = tiny_trainer();
        let server = TrainerServer::new(&trainer, ServerConfig::default());
        let (server_lanes, client_lanes) = duplex_pool(2);
        let ot = TrustedSimOt;
        let samples = [vec![0.9f64, 1.1], vec![-1.0, -0.8]];
        std::thread::scope(|scope| {
            let clients: Vec<_> = client_lanes
                .iter()
                .zip(&samples)
                .enumerate()
                .map(|(i, (lane, s))| {
                    scope.spawn(move || {
                        use rand::SeedableRng;
                        let client =
                            crate::Client::new(F64Algebra::new(), ProtocolConfig::default());
                        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + i as u64);
                        let labels = client
                            .classify_batch(lane, &TrustedSimOt, &mut rng, std::slice::from_ref(s))
                            .expect("honest session");
                        lane.send(Frame::encode(super::KIND_CLS_FIN, &0u64))
                            .unwrap();
                        labels
                    })
                })
                .collect();
            let summary = server.serve(&server_lanes, &ot, 99);
            let labels: Vec<_> = clients
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect();
            assert_eq!(labels[0], vec![Label::Positive]);
            assert_eq!(labels[1], vec![Label::Negative]);
            assert_eq!(summary.sessions_admitted, 2);
            assert_eq!(summary.sessions_shed, 0);
            assert_eq!(summary.served_samples, 2);
        });
    }

    #[test]
    fn honest_clients_are_served_over_the_async_runtime() {
        let trainer = tiny_trainer();
        let server = TrainerServer::new(&trainer, ServerConfig::default());
        let (server_lanes, client_lanes) = duplex_pool(2);
        let ot = TrustedSimOt;
        let samples = [vec![0.9f64, 1.1], vec![-1.0, -0.8]];
        std::thread::scope(|scope| {
            let clients: Vec<_> = client_lanes
                .iter()
                .zip(&samples)
                .enumerate()
                .map(|(i, (lane, s))| {
                    scope.spawn(move || {
                        use rand::SeedableRng;
                        let client =
                            crate::Client::new(F64Algebra::new(), ProtocolConfig::default());
                        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + i as u64);
                        let labels = client
                            .classify_batch(lane, &TrustedSimOt, &mut rng, std::slice::from_ref(s))
                            .expect("honest session");
                        lane.send(Frame::encode(super::KIND_CLS_FIN, &0u64))
                            .unwrap();
                        labels
                    })
                })
                .collect();
            let summary = server.serve_async(&server_lanes, &ot, 99).expect("reactor");
            let labels: Vec<_> = clients
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect();
            assert_eq!(labels[0], vec![Label::Positive]);
            assert_eq!(labels[1], vec![Label::Negative]);
            assert_eq!(summary.sessions_admitted, 2);
            assert_eq!(summary.sessions_shed, 0);
            assert_eq!(summary.served_samples, 2);
        });
    }

    #[test]
    fn async_tcp_run_drains_to_completion() {
        let trainer = tiny_trainer();
        let server = TrainerServer::new(&trainer, ServerConfig::default());
        let sup = server.supervisor();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let client = scope.spawn(move || {
                use rand::SeedableRng;
                let lane = ppcs_transport::tcp_connect(addr).expect("connect");
                let client = crate::Client::new(F64Algebra::new(), ProtocolConfig::default());
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                let labels = client
                    .classify_batch(&lane, &TrustedSimOt, &mut rng, &[vec![0.9f64, 1.1]])
                    .expect("honest session");
                lane.send(Frame::encode(super::KIND_CLS_FIN, &0u64))
                    .unwrap();
                labels
            });
            let drainer = scope.spawn(move || {
                // Let the one client finish, then end the accepting run.
                std::thread::sleep(Duration::from_millis(300));
                sup.drain();
            });
            let summary = server
                .serve_async_tcp(listener, &TrustedSimOt, 99)
                .expect("reactor");
            assert_eq!(client.join().expect("client"), vec![Label::Positive]);
            drainer.join().expect("drainer");
            assert_eq!(summary.sessions_admitted, 1);
            assert_eq!(summary.served_samples, 1);
        });
    }
}
