//! Privacy-preserving data similarity evaluation (Section V).
//!
//! Two trainers compare their models without revealing them. The metric
//! combines direction and position of the *bounded* decision hyperplanes:
//! an isosceles triangle with legs `L` (centroid distance) and vertex
//! angle `θ` (hyperplane included angle), measured by its squared area
//!
//! ```text
//! T² = ¼ (L⁴ + L₀⁴)(sin²θ + sin²θ₀)
//! ```
//!
//! with public floor constants `L₀, θ₀` that keep the two degenerate
//! cases (parallel planes vs coincident centroids) distinguishable from
//! each other.
//!
//! The private computation (§V-B) runs three OMPE rounds: Bob first
//! obtains the amplified cross terms `x₁ = r_am·(m_A·m_B)` and
//! `x₂ = r_aw·(w_A·w_B) + r_b`, then evaluates Alice's two-variate
//! degree-4 polynomial `T²(x₁, x₂)` whose constants fold in the
//! amplifier inverses. Bob contributes `|m_B|²`, `|w_B|²` in the clear —
//! inseparable aggregates that reveal neither vector.
//!
//! Note: the paper prints `d₂ = r_aw⁻¹`; because `x₂ − (−d₃)` is squared
//! inside the polynomial, the inverse must be applied twice for the
//! identity to hold, so this implementation uses `d₂ = r_aw⁻²`
//! (documented erratum, see DESIGN.md §3.4).

use ppcs_math::{Algebra, DenseAffine, MvPolynomial, PolyEval};
use ppcs_ompe::{
    ompe_receive_io, ompe_send_io, ompe_send_offline_io, OmpeParams, OmpeSenderOffline,
};
use ppcs_ot::{ObliviousTransfer, OtSelect};
use ppcs_svm::{Kernel, SvmModel};
use ppcs_telemetry::Phase;
use ppcs_transport::{drive_blocking, Encodable, Endpoint, FrameIo, ProtocolEngine};
use rand::RngCore;

use crate::config::ProtocolConfig;
use crate::error::PpcsError;
use crate::expansion::BasisKind;

const KIND_SIM_HELLO: u16 = 0x0600;

/// Input scale (1) ⇒ cross terms x₁/x₂ at scale 2 ⇒ A-part at 4,
/// B-part at 8, product at 12.
const CROSS_SCALE: u32 = 2;
const OUTPUT_SCALE: u32 = 12;

/// Configuration of a similarity evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimilarityConfig {
    /// The bounded data-space interval `[α, β]` per dimension.
    pub bounds: (f64, f64),
    /// Distance floor `L₀` (public).
    pub l0: f64,
    /// Angle floor `θ₀` in degrees (public, `≪ 90°`).
    pub theta0_deg: f64,
    /// Shared protocol parameters.
    pub protocol: ProtocolConfig,
    /// Grid resolution for nonlinear boundary tracing.
    pub boundary_grid: usize,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        Self {
            bounds: (-1.0, 1.0),
            l0: 0.05,
            theta0_deg: 2.0,
            protocol: ProtocolConfig::default(),
            boundary_grid: 64,
        }
    }
}

impl SimilarityConfig {
    fn sin2_theta0(&self) -> f64 {
        self.theta0_deg.to_radians().sin().powi(2)
    }

    fn ompe_linear(&self) -> Result<OmpeParams, PpcsError> {
        Ok(OmpeParams::new(
            1,
            self.protocol.sigma,
            self.protocol.decoy_factor,
        )?)
    }

    fn ompe_area(&self) -> Result<OmpeParams, PpcsError> {
        Ok(OmpeParams::new(
            4,
            self.protocol.sigma,
            self.protocol.decoy_factor,
        )?)
    }
}

// ---------------------------------------------------------------------
// Geometry: boundary points, centroids, the plain (non-private) metric.
// ---------------------------------------------------------------------

/// All boundary points of the hyperplane `wᵀt + b = 0` inside the box
/// `[α, β]ⁿ`, via the paper's Eq. (5): for each dimension as the free
/// variable, solve against every corner assignment of the others and
/// keep the in-range solutions.
///
/// # Panics
///
/// Panics if `w` is empty or `n > 24` (the `2^{n-1}` corner enumeration
/// is exponential by construction — the paper's similarity experiments
/// stay at `n ≤ 8`).
pub fn boundary_points_linear(w: &[f64], b: f64, bounds: (f64, f64)) -> Vec<Vec<f64>> {
    let n = w.len();
    assert!(n >= 1, "need at least one dimension");
    assert!(
        n <= 24,
        "corner enumeration is 2^(n-1); {n} dims is too many"
    );
    let (alpha, beta) = bounds;
    let mut points = Vec::new();
    for free in 0..n {
        if w[free] == 0.0 {
            continue;
        }
        let others: Vec<usize> = (0..n).filter(|&i| i != free).collect();
        for mask in 0u64..(1u64 << others.len()) {
            let mut t = vec![0.0; n];
            let mut rhs = -b;
            for (bit, &i) in others.iter().enumerate() {
                let v = if mask >> bit & 1 == 1 { beta } else { alpha };
                t[i] = v;
                rhs -= w[i] * v;
            }
            let u = rhs / w[free];
            if u >= alpha && u <= beta {
                t[free] = u;
                points.push(t);
            }
        }
    }
    dedupe_points(points)
}

/// Boundary points form a set: a plane through a box corner is found once
/// per incident edge, and keeping the duplicates would skew the centroid
/// by floating-point luck.
fn dedupe_points(points: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(points.len());
    for p in points {
        let duplicate = out
            .iter()
            .any(|q| p.iter().zip(q).all(|(a, b)| (a - b).abs() < 1e-7));
        if !duplicate {
            out.push(p);
        }
    }
    out
}

/// Boundary points of a general decision surface `d(t) = 0` inside the
/// box, found by scanning each box edge for sign changes of `d` and
/// bisecting (the nonlinear analog of Eq. 5).
///
/// # Panics
///
/// Same dimensional limits as [`boundary_points_linear`].
pub fn boundary_points_decision(
    decision: &dyn Fn(&[f64]) -> f64,
    dim: usize,
    bounds: (f64, f64),
    grid: usize,
) -> Vec<Vec<f64>> {
    assert!(dim >= 1, "need at least one dimension");
    assert!(
        dim <= 24,
        "corner enumeration is 2^(n-1); {dim} dims is too many"
    );
    let (alpha, beta) = bounds;
    let grid = grid.max(2);
    let mut points = Vec::new();
    for free in 0..dim {
        let others: Vec<usize> = (0..dim).filter(|&i| i != free).collect();
        for mask in 0u64..(1u64 << others.len()) {
            let mut t = vec![0.0; dim];
            for (bit, &i) in others.iter().enumerate() {
                t[i] = if mask >> bit & 1 == 1 { beta } else { alpha };
            }
            let eval_at = |u: f64, t: &mut Vec<f64>| {
                t[free] = u;
                decision(t)
            };
            let mut prev_u = alpha;
            let mut prev_v = eval_at(prev_u, &mut t);
            for g in 1..=grid {
                let u = alpha + (beta - alpha) * g as f64 / grid as f64;
                let v = eval_at(u, &mut t);
                if prev_v == 0.0 {
                    t[free] = prev_u;
                    points.push(t.clone());
                } else if prev_v * v < 0.0 {
                    // Bisect the bracketing interval.
                    let (mut lo, mut hi) = (prev_u, u);
                    let (mut flo, _) = (prev_v, v);
                    for _ in 0..60 {
                        let mid = 0.5 * (lo + hi);
                        let fmid = eval_at(mid, &mut t);
                        if flo * fmid <= 0.0 {
                            hi = mid;
                        } else {
                            lo = mid;
                            flo = fmid;
                        }
                    }
                    t[free] = 0.5 * (lo + hi);
                    points.push(t.clone());
                }
                prev_u = u;
                prev_v = v;
            }
            // A zero sitting exactly on the far endpoint has no following
            // node to report it; handle it here.
            if prev_v == 0.0 {
                t[free] = prev_u;
                points.push(t.clone());
            }
        }
    }
    dedupe_points(points)
}

/// The centroid of a point set, or `None` if empty (plane misses the
/// box).
pub fn centroid(points: &[Vec<f64>]) -> Option<Vec<f64>> {
    let first = points.first()?;
    let mut acc = vec![0.0; first.len()];
    for p in points {
        for (a, v) in acc.iter_mut().zip(p) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= points.len() as f64;
    }
    Some(acc)
}

/// `cos²θ` between two normal vectors.
pub fn cos2_between(v: &[f64], w: &[f64]) -> f64 {
    let num = ppcs_svm::dot(v, w).powi(2);
    let den = ppcs_svm::dot(v, v) * ppcs_svm::dot(w, w);
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The squared triangle-area metric of Eq. (4)/(6), computed in the
/// clear.
pub fn triangle_area_squared(l2: f64, cos2: f64, l0: f64, sin2_theta0: f64) -> f64 {
    0.25 * (l2 * l2 + l0.powi(4)) * ((1.0 - cos2) + sin2_theta0)
}

/// The geometric summary of one model that similarity runs on: the
/// bounded-plane centroid `m` and the direction vector `w`.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelGeometry {
    /// Centroid of the bounded decision surface.
    pub centroid: Vec<f64>,
    /// Direction: linear weights, or (nonlinear) the expanded coefficient
    /// vector standing in for the feature-space normal.
    pub direction: Vec<f64>,
    /// `|m|²` in the appropriate space (`K(m, m)` for kernels).
    pub m_norm2: f64,
    /// `|w|²` (`K(w, w)` for kernels).
    pub w_norm2: f64,
    /// `true` if the geometry lives in the expanded monomial space.
    expanded: Option<BasisKind>,
}

impl ModelGeometry {
    /// Extracts the geometry from a trained model.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Expansion`] if the surface misses the bounded box
    /// (no boundary points) or the kernel is unsupported for similarity
    /// (only linear and homogeneous polynomial kernels are implemented,
    /// matching §V-B/§V-C).
    #[allow(clippy::redundant_guards)] // float literal patterns are a hard error
    pub fn from_model(model: &SvmModel, cfg: &SimilarityConfig) -> Result<Self, PpcsError> {
        match model.kernel() {
            Kernel::Linear => {
                let w = model
                    .linear_weights()
                    .expect("linear kernel always has weights");
                let pts = boundary_points_linear(&w, model.bias(), cfg.bounds);
                let m = centroid(&pts).ok_or_else(|| {
                    PpcsError::Expansion(
                        "decision hyperplane does not intersect the bounded box".into(),
                    )
                })?;
                let m_norm2 = ppcs_svm::dot(&m, &m);
                let w_norm2 = ppcs_svm::dot(&w, &w);
                Ok(Self {
                    centroid: m,
                    direction: w,
                    m_norm2,
                    w_norm2,
                    expanded: None,
                })
            }
            Kernel::Polynomial { a0, b0, degree } if b0 == 0.0 => {
                let dim = model.dim();
                let decision = |t: &[f64]| model.decision(t);
                let pts = boundary_points_decision(&decision, dim, cfg.bounds, cfg.boundary_grid);
                let m = centroid(&pts).ok_or_else(|| {
                    PpcsError::Expansion(
                        "decision surface does not intersect the bounded box".into(),
                    )
                })?;
                let basis = BasisKind::Homogeneous { degree };
                // Feature-space image of the centroid and of the normal:
                // φ(m) has coordinates √mult·τ(m); working with plain τ and
                // multiplicity-weighted partner vectors keeps all inner
                // products equal to the kernel values (see protocol notes).
                let kernel = model.kernel();
                let m_norm2 = kernel.eval(&m, &m);
                // K(w, w) = Σ_su c_s c_u K(x_s, x_u).
                let svs = model.support_vectors();
                let cs = model.coefficients();
                let mut w_norm2 = 0.0;
                for (xs, &cs_i) in svs.iter().zip(cs) {
                    for (xu, &cu) in svs.iter().zip(cs) {
                        w_norm2 += cs_i * cu * kernel.eval(xs, xu);
                    }
                }
                // Direction in expanded space: the homogeneous expansion
                // coefficients of Σ_s c_s (a0 xᵀ·)^p, multiplicity-weighted
                // so that direction · τ(y) = K(w, y).
                let expansion = crate::expansion::expand_model(
                    model,
                    &ProtocolConfig {
                        max_expanded_terms: cfg.protocol.max_expanded_terms,
                        ..cfg.protocol
                    },
                )?;
                let _ = a0;
                Ok(Self {
                    centroid: m,
                    direction: expansion.coeffs,
                    m_norm2,
                    w_norm2,
                    expanded: Some(basis),
                })
            }
            other => Err(PpcsError::Expansion(format!(
                "similarity evaluation supports linear and homogeneous polynomial \
                 kernels, got {other:?}"
            ))),
        }
    }

    /// The cross inner product `m_A · m_B` (or `K(m_A, m_B)`), given the
    /// peer's centroid.
    fn cross_m(&self, other_centroid: &[f64], kernel: Kernel) -> f64 {
        match self.expanded {
            None => ppcs_svm::dot(&self.centroid, other_centroid),
            Some(_) => kernel.eval(&self.centroid, other_centroid),
        }
    }
}

/// Plain (non-private) similarity: both models in one place — the
/// baseline of Table II and Fig. 10.
///
/// # Errors
///
/// Propagates geometry extraction failures; also fails if the models
/// disagree in kernel or dimensionality.
pub fn similarity_plain(
    model_a: &SvmModel,
    model_b: &SvmModel,
    cfg: &SimilarityConfig,
) -> Result<f64, PpcsError> {
    if model_a.kernel() != model_b.kernel() || model_a.dim() != model_b.dim() {
        return Err(PpcsError::Config(
            "similarity requires models with matching kernel and dimensionality".into(),
        ));
    }
    let ga = ModelGeometry::from_model(model_a, cfg)?;
    let gb = ModelGeometry::from_model(model_b, cfg)?;
    Ok(similarity_plain_geometry(
        &ga,
        &gb,
        model_a.kernel(),
        &direction_input(&gb, model_b),
        cfg,
    ))
}

/// The plain metric given precomputed geometries — the quantity whose
/// per-evaluation cost Fig. 10's "ordinary" curve measures.
pub fn similarity_plain_geometry(
    ga: &ModelGeometry,
    gb: &ModelGeometry,
    kernel: Kernel,
    gb_direction_input: &[f64],
    cfg: &SimilarityConfig,
) -> f64 {
    let cross_m = ga.cross_m(&gb.centroid, kernel);
    let cross_w = ppcs_svm::dot(&ga.direction, gb_direction_input);
    let l2 = ga.m_norm2 + gb.m_norm2 - 2.0 * cross_m;
    let cos2 = cross_w * cross_w / (ga.w_norm2 * gb.w_norm2);
    let t2 = triangle_area_squared(l2, cos2, cfg.l0, cfg.sin2_theta0());
    t2.max(0.0).sqrt()
}

/// Bob's OMPE-2 input vector: his raw direction for linear models, or
/// the aggregated support-vector monomials `Z = Σ_u c_u τ(x_u)` for
/// kernels (so that Alice's expansion coefficients dot with it to give
/// `K(w_A, w_B)`).
pub fn direction_input(g: &ModelGeometry, model: &SvmModel) -> Vec<f64> {
    match g.expanded {
        None => g.direction.clone(),
        Some(basis) => {
            let mut z = vec![0.0; basis.len(model.dim()).expect("validated") as usize];
            for (sv, &c) in model.support_vectors().iter().zip(model.coefficients()) {
                for (zi, f) in z.iter_mut().zip(basis.features(sv)) {
                    *zi += c * f;
                }
            }
            z
        }
    }
}

/// Bob's OMPE-1 input: his centroid (linear) or its monomial features.
fn centroid_input(g: &ModelGeometry, dim: usize) -> Vec<f64> {
    match g.expanded {
        None => g.centroid.clone(),
        Some(basis) => basis.features(&g.centroid[..dim]),
    }
}

/// Alice's OMPE-1 coefficient vector: her centroid (linear), or the
/// multiplicity- and `a₀^p`-weighted monomials of her centroid so that
/// `coeffs · τ(m_B) = K(m_A, m_B)` for the homogeneous kernel.
fn centroid_coefficients(g: &ModelGeometry, kernel: Kernel) -> Vec<f64> {
    match g.expanded {
        None => g.centroid.clone(),
        Some(BasisKind::Homogeneous { degree }) => {
            let Kernel::Polynomial { a0, .. } = kernel else {
                unreachable!("expanded geometry implies a polynomial kernel")
            };
            let scale = a0.powi(degree as i32);
            let mut out = Vec::new();
            crate::expansion::for_each_multiset(g.centroid.len(), degree, &mut |tuple| {
                let mult =
                    ppcs_math::multinomial_coeff(degree, &crate::expansion::multiplicities(tuple));
                let prod: f64 = tuple.iter().map(|&i| g.centroid[i as usize]).product();
                out.push(scale * mult * prod);
            });
            out
        }
        Some(BasisKind::UpTo { .. }) => {
            unreachable!("similarity only constructs homogeneous expansions")
        }
    }
}

// ---------------------------------------------------------------------
// The private protocol.
// ---------------------------------------------------------------------

/// Alice's (responder) side of a private similarity evaluation.
///
/// # Errors
///
/// Geometry extraction, transport, and OMPE failures.
pub fn similarity_respond<A>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    model: &SvmModel,
    cfg: &SimilarityConfig,
) -> Result<(), PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let geom = ModelGeometry::from_model(model, cfg)?;
    similarity_respond_geometry(alg, ep, ot, rng, &geom, model.kernel(), model.dim(), cfg)
}

/// Sans-I/O twin of [`similarity_respond`]: Alice's role over a
/// [`FrameIo`] mailbox.
///
/// # Errors
///
/// Same as [`similarity_respond`].
pub async fn similarity_respond_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    model: &SvmModel,
    cfg: &SimilarityConfig,
) -> Result<(), PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let geom = ModelGeometry::from_model(model, cfg)?;
    similarity_respond_geometry_io(alg, io, sel, rng, &geom, model.kernel(), model.dim(), cfg).await
}

/// [`similarity_respond`] with a precomputed [`ModelGeometry`] — lets a
/// trainer reuse its boundary/centroid computation across sessions.
///
/// # Errors
///
/// Same as [`similarity_respond`].
#[allow(clippy::too_many_arguments)]
pub fn similarity_respond_geometry<A>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    geom: &ModelGeometry,
    kernel: Kernel,
    model_dim: usize,
    cfg: &SimilarityConfig,
) -> Result<(), PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let sel = ot.select();
    let mut engine = ProtocolEngine::new(|io| async move {
        similarity_respond_geometry_io(alg, &io, sel, rng, geom, kernel, model_dim, cfg).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O twin of [`similarity_respond_geometry`].
///
/// # Errors
///
/// Same as [`similarity_respond_geometry`].
#[allow(clippy::too_many_arguments)]
pub async fn similarity_respond_geometry_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    geom: &ModelGeometry,
    kernel: Kernel,
    model_dim: usize,
    cfg: &SimilarityConfig,
) -> Result<(), PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    similarity_respond_session_io(alg, io, sel, rng, geom, kernel, model_dim, cfg, None).await
}

/// [`similarity_respond_geometry_io`] consuming precomputed offline
/// material, so the online phase spends nothing on mask refreshes or
/// OT base-phase setup. Pairs with any requester — see
/// [`SimilarityResponderOffline`].
///
/// # Errors
///
/// Same as [`similarity_respond_geometry`].
#[allow(clippy::too_many_arguments)]
pub async fn similarity_respond_geometry_offline_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    geom: &ModelGeometry,
    kernel: Kernel,
    model_dim: usize,
    cfg: &SimilarityConfig,
    offline: SimilarityResponderOffline<A>,
) -> Result<(), PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    similarity_respond_session_io(
        alg,
        io,
        sel,
        rng,
        geom,
        kernel,
        model_dim,
        cfg,
        Some(offline),
    )
    .await
}

#[allow(clippy::too_many_arguments)]
async fn similarity_respond_session_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    geom: &ModelGeometry,
    kernel: Kernel,
    model_dim: usize,
    cfg: &SimilarityConfig,
    offline: Option<SimilarityResponderOffline<A>>,
) -> Result<(), PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let _span = ppcs_telemetry::span(Phase::Similarity);
    cfg.protocol.validate()?;
    let (off1, off2, off3) = match offline {
        Some(o) => (Some(o.linear1), Some(o.linear2), Some(o.area)),
        None => (None, None, None),
    };

    // Round 0: Bob's inseparable aggregates arrive in the clear.
    let hello: Vec<u8> = io.recv_msg(KIND_SIM_HELLO).await?;
    let (dim, mb_norm2, wb_norm2) = decode_hello(&hello)?;
    if dim != model_dim {
        return Err(PpcsError::Protocol(format!(
            "peer evaluates {dim}-dimensional models, ours is {model_dim}-dimensional"
        )));
    }

    // Round 1: x₁ = r_am · (m_A · m_B).
    let ram = cfg.protocol.draw_amplifier(rng);
    let ma_inputs = centroid_coefficients(geom, kernel);
    let secret1 = DenseAffine::new(
        ma_inputs
            .iter()
            .map(|v| alg.mul(&alg.encode(*v, 1), &alg.encode_int(ram)))
            .collect(),
        alg.zero(),
    );
    respond_round(alg, io, sel, rng, &secret1, &cfg.ompe_linear()?, off1).await?;

    // Round 2: x₂ = r_aw · (w_A · w_B) + r_b.
    let raw = cfg.protocol.draw_amplifier(rng);
    let rb = cfg.protocol.draw_amplifier(rng);
    let rb_enc = alg.encode(rb as f64, CROSS_SCALE);
    let secret2 = DenseAffine::new(
        geom.direction
            .iter()
            .map(|v| alg.mul(&alg.encode(*v, 1), &alg.encode_int(raw)))
            .collect(),
        rb_enc.clone(),
    );
    respond_round(alg, io, sel, rng, &secret2, &cfg.ompe_linear()?, off2).await?;

    // Round 3: the two-variate degree-4 area polynomial.
    let area_poly = build_area_polynomial(
        alg,
        geom.m_norm2 + mb_norm2,
        cfg.l0,
        1.0 / (geom.w_norm2 * wb_norm2),
        1.0 + cfg.sin2_theta0(),
        ram,
        raw,
        &rb_enc,
    );
    respond_round(alg, io, sel, rng, &area_poly, &cfg.ompe_area()?, off3).await?;
    Ok(())
}

/// Input-independent offline material for one responder session: one
/// precomputed sender pack per OMPE round (two linear cross-term
/// rounds, then the degree-4 area round), drawn before Bob's inputs —
/// or Bob himself — exist.
///
/// The offline responder produces byte-compatible traffic, so it pairs
/// with any requester; a requester never knows (or cares) whether the
/// responder precomputed.
pub struct SimilarityResponderOffline<A: Algebra> {
    linear1: OmpeSenderOffline<A>,
    linear2: OmpeSenderOffline<A>,
    area: OmpeSenderOffline<A>,
}

impl<A> SimilarityResponderOffline<A>
where
    A: Algebra,
    A::Elem: Encodable,
{
    /// Precomputes the three rounds' sender material under `cfg`.
    ///
    /// # Errors
    ///
    /// [`PpcsError::Config`] or [`PpcsError::Ompe`] if `cfg`'s protocol
    /// parameters are invalid.
    pub fn precompute(
        alg: &A,
        sel: OtSelect,
        cfg: &SimilarityConfig,
        rng: &mut dyn RngCore,
    ) -> Result<Self, PpcsError> {
        cfg.protocol.validate()?;
        let linear = cfg.ompe_linear()?;
        let area = cfg.ompe_area()?;
        Ok(Self {
            linear1: OmpeSenderOffline::precompute(alg, sel, &linear, 1, rng),
            linear2: OmpeSenderOffline::precompute(alg, sel, &linear, 1, rng),
            area: OmpeSenderOffline::precompute(alg, sel, &area, 1, rng),
        })
    }
}

/// One responder OMPE round, precomputed or monolithic — the two paths
/// emit identical frame sequences.
async fn respond_round<A, P>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    secret: &P,
    params: &OmpeParams,
    pack: Option<OmpeSenderOffline<A>>,
) -> Result<(), PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
    P: PolyEval<A> + ?Sized,
{
    match pack {
        Some(pack) => ompe_send_offline_io(alg, io, sel, rng, secret, params, pack).await?,
        None => ompe_send_io(alg, io, sel, rng, secret, params).await?,
    }
    Ok(())
}

/// Bob's (requester) side; returns the similarity value `T`.
///
/// # Errors
///
/// Geometry extraction, transport, and OMPE failures.
pub fn similarity_request<A>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    model: &SvmModel,
    cfg: &SimilarityConfig,
) -> Result<f64, PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let geom = ModelGeometry::from_model(model, cfg)?;
    let direction_input = direction_input(&geom, model);
    similarity_request_geometry(alg, ep, ot, rng, &geom, &direction_input, model.dim(), cfg)
}

/// Sans-I/O twin of [`similarity_request`]: Bob's role over a
/// [`FrameIo`] mailbox.
///
/// # Errors
///
/// Same as [`similarity_request`].
pub async fn similarity_request_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    model: &SvmModel,
    cfg: &SimilarityConfig,
) -> Result<f64, PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let geom = ModelGeometry::from_model(model, cfg)?;
    let direction_input = direction_input(&geom, model);
    similarity_request_geometry_io(alg, io, sel, rng, &geom, &direction_input, model.dim(), cfg)
        .await
}

/// [`similarity_request`] with a precomputed [`ModelGeometry`] and
/// direction input (`w_B` for linear models, `Z = Σ c_u τ(x_u)` for
/// kernels).
///
/// # Errors
///
/// Same as [`similarity_request`].
#[allow(clippy::too_many_arguments)]
pub fn similarity_request_geometry<A>(
    alg: &A,
    ep: &Endpoint,
    ot: &dyn ObliviousTransfer,
    rng: &mut dyn RngCore,
    geom: &ModelGeometry,
    direction_input: &[f64],
    model_dim: usize,
    cfg: &SimilarityConfig,
) -> Result<f64, PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let sel = ot.select();
    let mut engine = ProtocolEngine::new(|io| async move {
        similarity_request_geometry_io(alg, &io, sel, rng, geom, direction_input, model_dim, cfg)
            .await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O twin of [`similarity_request_geometry`].
///
/// # Errors
///
/// Same as [`similarity_request_geometry`].
#[allow(clippy::too_many_arguments)]
pub async fn similarity_request_geometry_io<A>(
    alg: &A,
    io: &FrameIo,
    sel: OtSelect,
    rng: &mut dyn RngCore,
    geom: &ModelGeometry,
    direction_input: &[f64],
    model_dim: usize,
    cfg: &SimilarityConfig,
) -> Result<f64, PpcsError>
where
    A: Algebra,
    A::Elem: Encodable,
{
    let _span = ppcs_telemetry::span(Phase::Similarity);
    cfg.protocol.validate()?;
    let dim = model_dim;

    io.send_msg(
        KIND_SIM_HELLO,
        &encode_hello(dim, geom.m_norm2, geom.w_norm2),
    )?;

    // Round 1.
    let mb_inputs: Vec<A::Elem> = centroid_input(geom, dim)
        .iter()
        .map(|v| alg.encode(*v, 1))
        .collect();
    let x1 = ompe_receive_io(alg, io, sel, rng, &mb_inputs, &cfg.ompe_linear()?).await?;

    // Round 2.
    let wb_inputs: Vec<A::Elem> = direction_input.iter().map(|v| alg.encode(*v, 1)).collect();
    let x2 = ompe_receive_io(alg, io, sel, rng, &wb_inputs, &cfg.ompe_linear()?).await?;

    // Round 3: feed the raw (still-encoded) cross terms back in. The
    // evaluation yields 4·T² (see `build_area_polynomial` on why the ¼
    // stays out of the field); apply the public prefactor on the reals.
    let t2_elem = ompe_receive_io(alg, io, sel, rng, &[x1, x2], &cfg.ompe_area()?).await?;
    let t2 = 0.25 * alg.decode(&t2_elem, OUTPUT_SCALE);
    Ok(t2.max(0.0).sqrt())
}

/// Builds Alice's round-3 secret
/// `4T²(x₁,x₂) = [(c₁−2d₁x₁)² + c₂][c₄ − c₃d₂(d₃+x₂)²]`
/// with the fixed-point scale layout documented at the top of this file.
#[allow(clippy::too_many_arguments)]
fn build_area_polynomial<A: Algebra>(
    alg: &A,
    c1_real: f64,
    l0: f64,
    c3_real: f64,
    c4_real: f64,
    ram: i64,
    raw: i64,
    rb_enc: &A::Elem,
) -> MvPolynomial<A> {
    let d1 = alg
        .inv(&alg.encode_int(ram))
        .expect("amplifiers are nonzero");
    let raw_inv = alg
        .inv(&alg.encode_int(raw))
        .expect("amplifiers are nonzero");
    let d2 = alg.mul(&raw_inv, &raw_inv);
    let d3 = alg.neg(rb_enc); // scale 2

    let c1 = alg.encode(c1_real, 2);
    let c2 = alg.encode(l0.powi(4), 4);
    let c3 = alg.encode(c3_real, 4);
    let c4 = alg.encode(c4_real, 8);

    let two = alg.encode_int(2);
    let four = alg.encode_int(4);

    // A-part: a₀ + a₁x₁ + a₂x₁², uniform scale 4.
    let a0 = alg.add(&alg.mul(&c1, &c1), &c2);
    let a1 = alg.neg(&alg.mul(&four, &alg.mul(&c1, &d1)));
    let a2 = alg.mul(&four, &alg.mul(&d1, &d1));

    // B-part: b₀ + b₁x₂ + b₂x₂², uniform scale 8.
    let c3d2 = alg.mul(&c3, &d2);
    let b0 = alg.sub(&c4, &alg.mul(&c3d2, &alg.mul(&d3, &d3)));
    let b1 = alg.neg(&alg.mul(&two, &alg.mul(&c3d2, &d3)));
    let b2 = alg.neg(&c3d2);

    // The public ¼ prefactor is deliberately NOT folded in here. Over the
    // prime field, multiplying by inv(4) only reproduces a real quarter
    // when the integer fixed-point product A·B happens to be ≡ 0 (mod 4);
    // for the other residues the result lands near r·(p+1)/4 — garbage
    // after decoding. The requester applies the (public) ¼ on the decoded
    // real value instead, which is exact for every backend.
    let a_coeffs = [a0, a1, a2];
    let b_coeffs = [b0, b1, b2];
    let mut terms = Vec::with_capacity(9);
    for (i, ai) in a_coeffs.iter().enumerate() {
        for (j, bj) in b_coeffs.iter().enumerate() {
            let coeff = alg.mul(ai, bj);
            terms.push((coeff, vec![i as u32, j as u32]));
        }
    }
    MvPolynomial::from_terms(2, terms)
}

fn encode_hello(dim: usize, m_norm2: f64, w_norm2: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.extend_from_slice(&(dim as u64).to_le_bytes());
    out.extend_from_slice(&m_norm2.to_le_bytes());
    out.extend_from_slice(&w_norm2.to_le_bytes());
    out
}

fn decode_hello(bytes: &[u8]) -> Result<(usize, f64, f64), PpcsError> {
    if bytes.len() != 24 {
        return Err(PpcsError::Protocol("malformed similarity hello".into()));
    }
    let dim = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")) as usize;
    let m = f64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let w = f64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    Ok((dim, m, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_math::{F64Algebra, FixedFpAlgebra};
    use ppcs_ot::TrustedSimOt;
    use ppcs_svm::{Dataset, Label, SmoParams};
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    static SIM_OT: TrustedSimOt = TrustedSimOt;

    fn train_rotated(dim: usize, angle_deg: f64, seed: u64, kernel: Kernel) -> SvmModel {
        // Boundary through the origin rotated by `angle_deg` in the
        // (0,1)-plane.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let theta = angle_deg.to_radians();
        let (c, s) = (theta.cos(), theta.sin());
        while ds.len() < 160 {
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let score = c * x[0] + s * x[1];
            if score.abs() < 0.1 {
                continue;
            }
            ds.push(x, Label::from_sign(score));
        }
        SvmModel::train(
            &ds,
            kernel,
            &SmoParams {
                c: 10.0,
                ..SmoParams::default()
            },
        )
    }

    #[test]
    fn boundary_points_of_axis_plane() {
        // Plane t₁ = 0 in 2-D, box [-1,1]²: boundary points are
        // (0, ±1) plus, sweeping t₂ free, none from w₂ = 0.
        let pts = boundary_points_linear(&[1.0, 0.0], 0.0, (-1.0, 1.0));
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p[0], 0.0);
            assert_eq!(p[1].abs(), 1.0);
        }
        let m = centroid(&pts).unwrap();
        assert_eq!(m, vec![0.0, 0.0]);
    }

    #[test]
    fn boundary_points_match_decision_scan_for_linear() {
        let w = [0.7, -0.4, 0.2];
        let b = 0.1;
        let exact = boundary_points_linear(&w, b, (-1.0, 1.0));
        let decision = |t: &[f64]| ppcs_svm::dot(&w, t) + b;
        let scanned = boundary_points_decision(&decision, 3, (-1.0, 1.0), 64);
        // Same centroid from both constructions.
        let me = centroid(&exact).unwrap();
        let ms = centroid(&scanned).unwrap();
        for (a, b) in me.iter().zip(&ms) {
            assert!((a - b).abs() < 1e-6, "{me:?} vs {ms:?}");
        }
    }

    #[test]
    fn plane_outside_box_has_no_boundary() {
        let pts = boundary_points_linear(&[1.0, 1.0], 10.0, (-1.0, 1.0));
        assert!(pts.is_empty());
        assert!(centroid(&pts).is_none());
    }

    #[test]
    fn identical_models_have_floor_similarity() {
        let cfg = SimilarityConfig::default();
        let m = train_rotated(2, 30.0, 1, Kernel::Linear);
        let t = similarity_plain(&m, &m, &cfg).unwrap();
        // T_min = ½·L₀²·sinθ₀ at coincident planes... as T² form:
        let t_min = triangle_area_squared(0.0, 1.0, cfg.l0, cfg.sin2_theta0()).sqrt();
        assert!((t - t_min).abs() < 1e-9, "{t} vs floor {t_min}");
    }

    #[test]
    fn similarity_grows_with_angle() {
        let cfg = SimilarityConfig::default();
        let base = train_rotated(2, 0.0, 2, Kernel::Linear);
        let mut prev = similarity_plain(&base, &base, &cfg).unwrap();
        for angle in [10.0, 25.0, 45.0, 80.0] {
            let other = train_rotated(2, angle, 3, Kernel::Linear);
            let t = similarity_plain(&base, &other, &cfg).unwrap();
            assert!(
                t > prev - 1e-6,
                "T should grow with angle: {t} after {prev} at {angle}°"
            );
            prev = t;
        }
    }

    #[test]
    fn private_similarity_matches_plain_f64() {
        let cfg = SimilarityConfig::default();
        let ma = train_rotated(2, 15.0, 4, Kernel::Linear);
        let mb = train_rotated(2, 60.0, 5, Kernel::Linear);
        let want = similarity_plain(&ma, &mb, &cfg).unwrap();

        let ma2 = ma.clone();
        let mb2 = mb.clone();
        let (res_a, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(10);
                similarity_respond(&F64Algebra::new(), &ep, &SIM_OT, &mut rng, &ma2, &cfg)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(11);
                similarity_request(&F64Algebra::new(), &ep, &SIM_OT, &mut rng, &mb2, &cfg).unwrap()
            },
        );
        res_a.unwrap();
        assert!(
            (got - want).abs() < 1e-6 * want.max(1.0),
            "private {got} vs plain {want}"
        );
    }

    #[test]
    fn private_similarity_matches_plain_fixed_point() {
        let cfg = SimilarityConfig {
            protocol: ProtocolConfig {
                amplifier_bits: 12,
                ..ProtocolConfig::default()
            },
            ..SimilarityConfig::default()
        };
        let ma = train_rotated(3, 20.0, 6, Kernel::Linear);
        let mb = train_rotated(3, 70.0, 7, Kernel::Linear);
        let want = similarity_plain(&ma, &mb, &cfg).unwrap();

        let alg = FixedFpAlgebra::new(16);
        let ma2 = ma.clone();
        let mb2 = mb.clone();
        let alg2 = alg;
        let (res_a, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(20);
                similarity_respond(&alg, &ep, &SIM_OT, &mut rng, &ma2, &cfg)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(21);
                similarity_request(&alg2, &ep, &SIM_OT, &mut rng, &mb2, &cfg).unwrap()
            },
        );
        res_a.unwrap();
        assert!(
            (got - want).abs() < 0.02 * want.max(0.1),
            "private {got} vs plain {want}"
        );
    }

    #[test]
    fn nonlinear_similarity_plain_and_private_agree() {
        let cfg = SimilarityConfig::default();
        let kernel = Kernel::Polynomial {
            a0: 0.5,
            b0: 0.0,
            degree: 3,
        };
        let ma = train_rotated(2, 10.0, 8, kernel);
        let mb = train_rotated(2, 55.0, 9, kernel);
        let want = similarity_plain(&ma, &mb, &cfg).unwrap();
        let (res_a, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(30);
                similarity_respond(&F64Algebra::new(), &ep, &SIM_OT, &mut rng, &ma, &cfg)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(31);
                similarity_request(&F64Algebra::new(), &ep, &SIM_OT, &mut rng, &mb, &cfg).unwrap()
            },
        );
        res_a.unwrap();
        assert!(
            (got - want).abs() < 1e-6 * want.max(1.0),
            "private {got} vs plain {want}"
        );
    }

    #[test]
    fn dimension_mismatch_detected() {
        let cfg = SimilarityConfig::default();
        let ma = train_rotated(2, 10.0, 12, Kernel::Linear);
        let mb = train_rotated(3, 10.0, 13, Kernel::Linear);
        let (res_a, _) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(40);
                similarity_respond(&F64Algebra::new(), &ep, &SIM_OT, &mut rng, &ma, &cfg)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(41);
                let _ = similarity_request(&F64Algebra::new(), &ep, &SIM_OT, &mut rng, &mb, &cfg);
            },
        );
        assert!(matches!(res_a.unwrap_err(), PpcsError::Protocol(_)));
    }

    #[test]
    fn rbf_kernel_is_rejected_for_similarity() {
        let cfg = SimilarityConfig::default();
        let m = train_rotated(2, 10.0, 14, Kernel::Rbf { gamma: 0.5 });
        assert!(matches!(
            ModelGeometry::from_model(&m, &cfg),
            Err(PpcsError::Expansion(_))
        ));
    }

    #[test]
    fn area_metric_distinguishes_degenerate_cases() {
        let cfg = SimilarityConfig::default();
        let s20 = cfg.sin2_theta0();
        // Parallel planes at distance L: T² = ¼(L⁴+L₀⁴)·sin²θ₀ > floor.
        let parallel = triangle_area_squared(0.5, 1.0, cfg.l0, s20);
        // Coincident centroids, crossed at θ: floor on the L part only.
        let crossed = triangle_area_squared(0.0, 0.5, cfg.l0, s20);
        let floor = triangle_area_squared(0.0, 1.0, cfg.l0, s20);
        assert!(parallel > floor);
        assert!(crossed > floor);
        assert_ne!(parallel, crossed);
    }
}
