//! The fleet resilience layer: health-checked routing of classification
//! sessions across N replica trainers.
//!
//! A single hardened [`TrainerServer`](crate::TrainerServer) survives
//! hostile *sessions*; this module survives hostile *replicas*. A
//! [`FleetClient`] owns a set of replica connectors and routes each
//! classification session through three cooperating mechanisms:
//!
//! * **Circuit breakers** ([`CircuitBreaker`]) — every replica carries a
//!   closed → open → half-open breaker. Consecutive transport failures
//!   trip it open; an open breaker rejects dispatch until its cooldown
//!   elapses, then admits exactly one half-open probe whose outcome
//!   closes or re-arms it. A probe whose attempt ends without a verdict
//!   (a busy shed, a client-side deadline expiry, a cancelled hedge
//!   loser) releases its slot back to open rather than wedging the
//!   breaker half-open. Time comes from a seedable [`FleetClock`], so
//!   the whole cycle is deterministic under [`ManualClock`] in tests.
//! * **Hedged failover** — when a hedge delay is configured and the
//!   primary attempt has not answered within it, a backup attempt is
//!   dispatched to the next healthy replica and the first success wins
//!   (the loser is cut through its driver's cancel token). Failures are
//!   triaged by [`transport_cause`]: deterministic protocol errors
//!   propagate immediately (replaying the same bytes elsewhere would
//!   fail the same way), transport errors count against the breaker and
//!   fail over.
//! * **End-to-end deadlines** — one wall-clock budget spans every
//!   redial, probe, and failover of a logical session: each attempt is
//!   driven under the *remaining* budget, not a fresh one.
//!
//! **Crash-restart recovery** rides the serving epoch: a restarted
//! trainer advertises a fresh epoch in its
//! [`KIND_HEALTH`](ppcs_transport::KIND_HEALTH) reply and its warm
//! ticket, so a client holding warm state from the previous incarnation
//! falls back to a cold handshake instead of resuming into a process
//! that no longer remembers it (see
//! [`WarmSessionCache`](crate::WarmSessionCache)).
//!
//! Every breaker transition, hedge fire, and failover is surfaced
//! through the attached [`MetricsRegistry`] (`ppcs_replica_state`,
//! `ppcs_hedges_fired_total`, `ppcs_failovers_total`,
//! `ppcs_breaker_opens_total`) and [`FlightRecorder`] (the
//! `DETAIL_BREAKER_*` / `DETAIL_FAILOVER` / `DETAIL_HEDGE_FIRED`
//! codes, with the replica index in the event's slot field).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use ppcs_math::Algebra;
use ppcs_ot::ObliviousTransfer;
use ppcs_svm::Label;
use ppcs_telemetry::{
    FlightEventKind, FlightRecorder, MetricsRegistry, DETAIL_BREAKER_CLOSED,
    DETAIL_BREAKER_HALF_OPEN, DETAIL_BREAKER_OPEN, DETAIL_FAILOVER, DETAIL_HEDGE_FIRED,
};
use ppcs_transport::{
    probe_health, probe_health_cancellable, Driver, Encodable, Frame, HealthStatus, Lane,
    SessionLimits, TransportError,
};

use crate::classify::{shard_evenly, transport_cause, Client, WarmSessionCache, KIND_CLS_FIN};
use crate::error::PpcsError;

/// A deterministic-friendly millisecond clock for breaker timing.
///
/// Production uses [`SystemClock`]; tests drive the breaker cycle
/// step-by-step with a [`ManualClock`], so open/half-open transitions
/// happen at exact, asserted instants instead of racing wall time.
pub trait FleetClock: Send + Sync {
    /// Milliseconds since an arbitrary (per-clock) origin. Must be
    /// monotone non-decreasing.
    fn now_ms(&self) -> u64;
}

/// Wall-clock [`FleetClock`], anchored at its creation instant.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetClock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A hand-cranked [`FleetClock`] for deterministic breaker tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ms: AtomicU64,
}

impl ManualClock {
    /// A clock reading `now_ms`.
    pub fn new(now_ms: u64) -> Self {
        Self {
            now_ms: AtomicU64::new(now_ms),
        }
    }

    /// Advances the clock by `ms`.
    pub fn advance(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::Release);
    }

    /// Jumps the clock to an absolute reading.
    pub fn set(&self, ms: u64) {
        self.now_ms.store(ms, Ordering::Release);
    }
}

impl FleetClock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Acquire)
    }
}

/// Circuit-breaker tuning for one replica.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive transport failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// Milliseconds an open breaker rejects dispatch before admitting a
    /// half-open probe.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_ms: 250,
        }
    }
}

/// The three breaker states; [`gauge`](BreakerState::gauge) gives the
/// stable numeric encoding used by the `ppcs_replica_state` metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Dispatch flows normally; consecutive failures are counted.
    Closed,
    /// Dispatch is rejected until the cooldown elapses.
    Open,
    /// One probe is admitted; its outcome closes or re-arms the breaker.
    HalfOpen,
}

impl BreakerState {
    /// The numeric gauge value (0 closed, 1 open, 2 half-open).
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    /// The stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What [`CircuitBreaker::allow`] decided for one dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// The breaker is closed; dispatch normally.
    Allow,
    /// The breaker is half-open and this dispatch claimed the single
    /// probe slot: its outcome decides the breaker's fate.
    Probe,
    /// The breaker is open (or the probe slot is taken); do not
    /// dispatch.
    Reject,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
    probe_inflight: bool,
}

/// A per-replica closed → open → half-open circuit breaker.
///
/// All timing is expressed in caller-supplied `now_ms` readings from a
/// [`FleetClock`], so the full state cycle is deterministic under a
/// [`ManualClock`].
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ms: 0,
                probe_inflight: false,
            }),
        }
    }

    /// The current state (open breakers stay "open" until an `allow`
    /// call observes the elapsed cooldown and moves them to half-open).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// Decides whether a dispatch may proceed at `now_ms`. An open
    /// breaker whose cooldown has elapsed transitions to half-open here
    /// and admits the caller as its single probe.
    pub fn allow(&self, now_ms: u64) -> BreakerDecision {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::Open => {
                if now_ms.saturating_sub(inner.opened_at_ms) >= self.cfg.cooldown_ms {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_inflight = true;
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Reject
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    BreakerDecision::Reject
                } else {
                    inner.probe_inflight = true;
                    BreakerDecision::Probe
                }
            }
        }
    }

    /// Records a successful attempt. Returns `true` when this closed a
    /// non-closed breaker (i.e. a state transition happened).
    pub fn record_success(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        let transitioned = inner.state != BreakerState::Closed;
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.probe_inflight = false;
        transitioned
    }

    /// Records a failed attempt at `now_ms`. Returns `true` when this
    /// tripped the breaker open (from closed past the threshold, or a
    /// failed half-open probe re-arming the cooldown).
    pub fn record_failure(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        match inner.state {
            BreakerState::Closed => {
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at_ms = now_ms;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at_ms = now_ms;
                inner.probe_inflight = false;
                true
            }
            // Already open (e.g. a hedged loser reporting late): keep
            // the original cooldown origin.
            BreakerState::Open => false,
        }
    }

    /// Releases an unconsumed half-open probe slot: the admitted probe
    /// attempt ended without a breaker verdict — a busy/draining shed,
    /// a client-side deadline expiry, a deterministic protocol error,
    /// or a cancelled hedge loser whose result was discarded. The
    /// breaker returns to open, keeping its original cooldown origin
    /// (already elapsed), so the next `allow` can admit a fresh probe
    /// instead of rejecting forever behind a slot nobody will settle.
    /// Returns `true` when this moved the breaker back to open.
    pub fn release_probe(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        if inner.state == BreakerState::HalfOpen && inner.probe_inflight {
            inner.state = BreakerState::Open;
            inner.probe_inflight = false;
            true
        } else {
            false
        }
    }
}

/// Fleet-wide routing configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Per-replica breaker tuning.
    pub breaker: BreakerConfig,
    /// When set, a backup attempt is dispatched to the next healthy
    /// replica if the primary has not answered within this delay.
    /// `None` disables hedging (pure sequential failover).
    pub hedge_delay: Option<Duration>,
    /// End-to-end wall-clock budget for one logical session, spanning
    /// every probe, redial, and failover. `None` leaves attempts
    /// unbounded.
    pub deadline: Option<Duration>,
    /// Whether each attempt opens with a [`KIND_HEALTH`]
    /// (`ppcs_transport::KIND_HEALTH`) probe on the freshly dialed lane
    /// before the session: a draining replica is then skipped without a
    /// breaker penalty, and a dead one fails fast inside
    /// [`probe_window`](FleetConfig::probe_window).
    pub probe: bool,
    /// Reply window for the pre-session health probe.
    pub probe_window: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            breaker: BreakerConfig::default(),
            hedge_delay: None,
            deadline: Some(Duration::from_secs(30)),
            probe: true,
            probe_window: Duration::from_millis(200),
        }
    }
}

/// Dials a fresh [`Lane`] to one replica. Called once per attempt, so a
/// restarted replica is reached at its new address as soon as the
/// connector resolves it.
pub type Connector = Box<dyn Fn() -> Result<Box<dyn Lane>, TransportError> + Send + Sync>;

struct Replica {
    connector: Connector,
    breaker: CircuitBreaker,
}

/// A classification client spread over N replica trainers: per-replica
/// circuit breakers, hedged failover, end-to-end deadlines, and
/// epoch-aware warm sessions (see the [module docs](self)).
///
/// The replica set is fixed after construction; per-attempt lanes are
/// dialed fresh through each replica's [`Connector`].
pub struct FleetClient<A: Algebra> {
    client: Client<A>,
    replicas: Vec<Replica>,
    clock: Arc<dyn FleetClock>,
    config: FleetConfig,
    metrics: Option<Arc<MetricsRegistry>>,
    recorder: Option<Arc<FlightRecorder>>,
    cache: WarmSessionCache,
}

impl<A: Algebra> FleetClient<A>
where
    A::Elem: Encodable,
{
    /// A fleet client around `client` with no replicas yet.
    pub fn new(client: Client<A>, config: FleetConfig) -> Self {
        Self {
            client,
            replicas: Vec::new(),
            clock: Arc::new(SystemClock::new()),
            config,
            metrics: None,
            recorder: None,
            cache: WarmSessionCache::new(),
        }
    }

    /// Replaces the breaker clock (tests pass a [`ManualClock`]).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn FleetClock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a telemetry registry: hedge fires, failovers, breaker
    /// opens, and the per-replica state gauge land there, and every
    /// session driver reports its wire traffic through it.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a flight recorder: breaker transitions, hedge fires,
    /// and failovers are recorded with the replica index as the slot.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Adds a replica and returns its index. The index keys the warm
    /// cache, the breaker, and every metric/recorder label for this
    /// replica.
    pub fn add_replica(&mut self, connector: Connector) -> usize {
        let idx = self.replicas.len();
        self.replicas.push(Replica {
            connector,
            breaker: CircuitBreaker::new(self.config.breaker),
        });
        if let Some(reg) = &self.metrics {
            reg.set_replica_state(idx as u32, BreakerState::Closed.gauge());
        }
        idx
    }

    /// Replicas currently registered.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The breaker state of replica `idx`.
    pub fn replica_state(&self, idx: usize) -> BreakerState {
        self.replicas[idx].breaker.state()
    }

    /// The warm-session cache shared by every attempt (keyed by replica
    /// index), exposed for staleness inspection in tests.
    pub fn warm_cache(&self) -> &WarmSessionCache {
        &self.cache
    }

    /// Probes replica `idx` on a fresh lane: liveness, drain state,
    /// serving epoch, and precompute-pool depth.
    ///
    /// # Errors
    ///
    /// Any dial or probe failure, unchanged; probing does not touch the
    /// replica's breaker.
    pub fn probe(&self, idx: usize) -> Result<HealthStatus, TransportError> {
        let lane = (self.replicas[idx].connector)()?;
        probe_health(lane.as_ref(), self.config.probe_window)
    }

    /// Classifies a batch in one logical session, failing over across
    /// replicas (and hedging, when configured) under one end-to-end
    /// deadline. Labels are exactly what a single-trainer
    /// [`Client::classify_batch`] would return for the same model.
    ///
    /// # Errors
    ///
    /// Any deterministic protocol error immediately; otherwise the last
    /// transport error once no replica can serve the session within the
    /// deadline.
    pub fn classify_batch(
        &self,
        ot: &dyn ObliviousTransfer,
        seed: u64,
        samples: &[Vec<f64>],
    ) -> Result<Vec<Label>, PpcsError> {
        let deadline = self.config.deadline.map(|d| Instant::now() + d);
        self.classify_failover(ot, seed, samples, deadline, false)
    }

    /// Classifies a batch scattered across every currently healthy
    /// replica, one chunk per replica; a chunk whose replica fails
    /// mid-session is requeued onto the survivors. Chunks are
    /// contiguous and reassembled in order, so the labels are exactly
    /// what a single-trainer session would return.
    ///
    /// # Errors
    ///
    /// Any deterministic protocol error immediately; the last transport
    /// error if a chunk exhausts every healthy replica; a protocol
    /// error when no replica is dispatchable at all.
    pub fn classify_batch_parallel(
        &self,
        ot: &dyn ObliviousTransfer,
        seed: u64,
        samples: &[Vec<f64>],
    ) -> Result<Vec<Label>, PpcsError> {
        let deadline = self.config.deadline.map(|d| Instant::now() + d);
        let now = self.clock.now_ms();
        // Each target remembers whether its dispatch claimed a breaker's
        // half-open probe slot, so the chunk's outcome can settle it.
        let mut targets: Vec<(usize, bool)> = Vec::new();
        for idx in 0..self.replicas.len() {
            match self.replicas[idx].breaker.allow(now) {
                BreakerDecision::Reject => {}
                BreakerDecision::Allow => targets.push((idx, false)),
                BreakerDecision::Probe => {
                    self.record_breaker_transition(idx, BreakerState::HalfOpen);
                    targets.push((idx, true));
                }
            }
        }
        if targets.is_empty() {
            return Err(PpcsError::Protocol(
                "no healthy replica available for dispatch".into(),
            ));
        }
        let chunks = shard_evenly(samples, targets.len());
        let results: Vec<Result<Vec<Label>, PpcsError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = targets
                .iter()
                .zip(&chunks)
                .enumerate()
                .map(|(i, (&(idx, _), chunk))| {
                    scope.spawn(move || {
                        self.attempt_session(
                            idx,
                            ot,
                            seed.wrapping_add(i as u64),
                            chunk,
                            deadline,
                            None,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet chunk thread panicked"))
                .collect()
        });

        // Settle every chunk before returning, so a deterministic
        // failure in one chunk does not leave another chunk's probe
        // slot claimed-but-unsettled.
        let mut out: Vec<Option<Vec<Label>>> = Vec::with_capacity(chunks.len());
        let mut deterministic_err: Option<PpcsError> = None;
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(labels) => out.push(Some(labels)),
                Err(e) => {
                    let (idx, probing) = targets[i];
                    self.settle_attempt_failure(idx, &e, probing);
                    if transport_cause(&e).is_none() && deterministic_err.is_none() {
                        deterministic_err = Some(e);
                    }
                    out.push(None);
                }
            }
        }
        if let Some(e) = deterministic_err {
            // Deterministic failure: no replica can do better.
            return Err(e);
        }

        // Requeue failed chunks through the failover path, sequentially:
        // rescue latency matters less than completing the batch. The
        // failed replica's breaker (tripped above) keeps it out of the
        // rescue rotation until its cooldown elapses.
        for (i, slot) in out.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let rescue_seed = seed ^ 0xF1EE_7C0D_E5CA_1A7Eu64.wrapping_mul(i as u64 + 1);
            *slot = Some(self.classify_failover(ot, rescue_seed, chunks[i], deadline, true)?);
        }

        let mut labels = Vec::with_capacity(samples.len());
        for chunk_labels in out {
            labels.extend(chunk_labels.expect("every chunk resolved or we returned early"));
        }
        Ok(labels)
    }

    /// The failover engine behind both entry points: walks the fleet
    /// (two passes, so breakers opened in the first pass can half-open
    /// under a manual clock), dispatching at most one logical session.
    /// `prior_failure` marks a dispatch that is already a rescue, so
    /// its first re-dispatch counts as a failover.
    fn classify_failover(
        &self,
        ot: &dyn ObliviousTransfer,
        seed: u64,
        samples: &[Vec<f64>],
        deadline: Option<Instant>,
        prior_failure: bool,
    ) -> Result<Vec<Label>, PpcsError> {
        if self.replicas.is_empty() {
            return Err(PpcsError::Protocol("fleet has no replicas".into()));
        }
        let mut last_err: Option<PpcsError> = None;
        let mut failed_over = prior_failure;
        for pass in 0..2u64 {
            for idx in 0..self.replicas.len() {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(last_err.unwrap_or_else(|| {
                            PpcsError::Transport(TransportError::Budget(
                                "fleet deadline elapsed before dispatch".into(),
                            ))
                        }));
                    }
                }
                let decision = self.replicas[idx].breaker.allow(self.clock.now_ms());
                if decision == BreakerDecision::Reject {
                    continue;
                }
                let probing = decision == BreakerDecision::Probe;
                if probing {
                    self.record_breaker_transition(idx, BreakerState::HalfOpen);
                }
                if failed_over {
                    self.record_failover(idx);
                }
                let attempt_seed = seed
                    .wrapping_add(pass.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(idx as u64);
                let backup = self.hedge_backup(idx);
                let result = match backup {
                    Some(backup) => self.attempt_hedged(
                        idx,
                        backup,
                        ot,
                        attempt_seed,
                        samples,
                        deadline,
                        probing,
                    ),
                    None => self.attempt_session(idx, ot, attempt_seed, samples, deadline, None),
                };
                match result {
                    Ok(labels) => return Ok(labels),
                    Err(e) => {
                        // attempt_hedged settles both of its attempts
                        // (breaker charges and probe release) itself;
                        // charging here again would double-count one
                        // failure and misattribute the backup's.
                        if backup.is_none() {
                            self.settle_attempt_failure(idx, &e, probing);
                        }
                        if transport_cause(&e).is_none() {
                            return Err(e);
                        }
                        failed_over = true;
                        last_err = Some(e);
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            PpcsError::Protocol("no healthy replica available for dispatch".into())
        }))
    }

    /// The next healthy replica after `primary` to hedge onto, when
    /// hedging is configured.
    fn hedge_backup(&self, primary: usize) -> Option<usize> {
        self.config.hedge_delay?;
        let n = self.replicas.len();
        (1..n)
            .map(|step| (primary + step) % n)
            .find(|&idx| self.replicas[idx].breaker.state() == BreakerState::Closed)
    }

    /// Dispatches the primary attempt, then a backup attempt on
    /// `backup` if no answer arrives within the hedge delay; first
    /// success wins and the loser is cut through its cancel token.
    ///
    /// Owns *all* breaker bookkeeping for both attempts: each failure
    /// is charged exactly once, to the replica that produced it, and
    /// when `probing` (the primary holds its breaker's half-open probe
    /// slot) the slot is released on every path where the primary's
    /// outcome goes unrecorded — including a cancelled loser whose
    /// result is discarded. The caller must not charge the returned
    /// error again.
    #[allow(clippy::too_many_arguments)]
    fn attempt_hedged(
        &self,
        primary: usize,
        backup: usize,
        ot: &dyn ObliviousTransfer,
        seed: u64,
        samples: &[Vec<f64>],
        deadline: Option<Instant>,
        probing: bool,
    ) -> Result<Vec<Label>, PpcsError> {
        let hedge_delay = self.config.hedge_delay.expect("hedging configured");
        let cancel_primary = Arc::new(AtomicBool::new(false));
        let cancel_backup = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<(usize, Result<Vec<Label>, PpcsError>)>();
        std::thread::scope(|scope| {
            let tx_primary = tx.clone();
            let cancel_p = cancel_primary.clone();
            scope.spawn(move || {
                let r = self.attempt_session(primary, ot, seed, samples, deadline, Some(cancel_p));
                let _ = tx_primary.send((primary, r));
            });
            let mut outstanding = 1usize;
            let mut first_answer = match rx.recv_timeout(hedge_delay) {
                Ok(answer) => Some(answer),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("primary sender outlives the wait")
                }
            };
            if first_answer.is_none() {
                // The primary is slow: fire the hedge.
                self.record_hedge_fired(backup);
                let tx_backup = tx.clone();
                let cancel_b = cancel_backup.clone();
                // Domain-separate the backup's randomness from the
                // still-running primary's.
                let backup_seed = seed ^ 0x4EDB_E57A_11E1_D0ED;
                scope.spawn(move || {
                    let r = self.attempt_session(
                        backup,
                        ot,
                        backup_seed,
                        samples,
                        deadline,
                        Some(cancel_b),
                    );
                    let _ = tx_backup.send((backup, r));
                });
                outstanding += 1;
            }
            drop(tx);
            let mut last_err: Option<PpcsError> = None;
            // Set once the primary's own outcome has been settled (or
            // consumed as the winning success); any return path where
            // it is still false discards the primary's result, so a
            // probing primary must have its probe slot released there.
            let mut primary_settled = false;
            loop {
                let (from, result) = match first_answer.take() {
                    Some(answer) => answer,
                    None => match rx.recv() {
                        Ok(answer) => answer,
                        Err(_) => break,
                    },
                };
                outstanding -= 1;
                let from_primary = from == primary;
                match result {
                    Ok(labels) => {
                        // Cut the loser; the scope joins it on exit.
                        cancel_primary.store(true, Ordering::Release);
                        cancel_backup.store(true, Ordering::Release);
                        if !from_primary && probing && !primary_settled {
                            self.release_probe_slot(primary);
                        }
                        return Ok(labels);
                    }
                    Err(e) => {
                        if transport_cause(&e).is_none() {
                            cancel_primary.store(true, Ordering::Release);
                            cancel_backup.store(true, Ordering::Release);
                            self.settle_attempt_failure(from, &e, probing && from_primary);
                            if !from_primary && probing && !primary_settled {
                                self.release_probe_slot(primary);
                            }
                            return Err(e);
                        }
                        // The coordinator owns breaker bookkeeping for
                        // the losing side too: a genuine failure (not a
                        // cancel cut) counts, exactly once, against the
                        // replica that produced it.
                        self.settle_attempt_failure(from, &e, probing && from_primary);
                        if from_primary {
                            primary_settled = true;
                        }
                        last_err = Some(e);
                        if outstanding == 0 {
                            break;
                        }
                    }
                }
            }
            Err(last_err.expect("loop exits with at least one failure"))
        })
    }

    /// One attempt against one replica: dial, optional health probe,
    /// then an epoch-aware warm session driven under the remaining
    /// deadline. Records breaker success internally; failures are
    /// triaged by the caller.
    fn attempt_session(
        &self,
        idx: usize,
        ot: &dyn ObliviousTransfer,
        seed: u64,
        samples: &[Vec<f64>],
        deadline: Option<Instant>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Result<Vec<Label>, PpcsError> {
        let replica = &self.replicas[idx];
        let lane = (replica.connector)().map_err(PpcsError::from)?;
        let lane = lane.as_ref();
        if self.config.probe {
            let window = match remaining(deadline)? {
                Some(rem) => rem.min(self.config.probe_window),
                None => self.config.probe_window,
            };
            let status = probe_health_cancellable(lane, window, cancel.as_deref())
                .map_err(PpcsError::from)?;
            if status.draining {
                // An orderly drain is routing information, not a fault:
                // surface it as a busy shed so the caller fails over
                // without a breaker penalty.
                return Err(PpcsError::from(TransportError::Busy {
                    retry_after_ms: None,
                }));
            }
            if let Some((_, cached_epoch)) = self.cache.get(idx as u64) {
                if cached_epoch != status.epoch {
                    // The replica restarted since we last spoke: the
                    // warm ticket would be re-announced anyway, but
                    // dropping it here saves the stale round.
                    self.cache.remove(idx as u64);
                }
            }
        }
        let mut limits = SessionLimits::unlimited();
        if let Some(rem) = remaining(deadline)? {
            limits = limits.with_deadline(rem.max(Duration::from_millis(1)));
        }
        let mut driver = Driver::new().with_limits(limits);
        if let Some(c) = cancel {
            driver = driver.with_cancel(c);
        }
        if let Some(reg) = &self.metrics {
            driver = driver.with_metrics(reg.clone());
        }
        let sel = ot.select();
        let mut engine =
            self.client
                .classify_warm_engine(sel, seed, samples, &self.cache, idx as u64, None);
        let values = driver.drive(lane, &mut engine)?;
        // Tell the replica's serve loop this lane is done. Best effort:
        // the server ends the lane on disconnect otherwise.
        let _ = lane.send(Frame::encode(KIND_CLS_FIN, &0u64));
        if replica.breaker.record_success() {
            self.record_breaker_transition(idx, BreakerState::Closed);
        }
        Ok(values.into_iter().map(|(label, _)| label).collect())
    }

    /// Breaker bookkeeping for one consumed transport failure: a busy
    /// shed (orderly backpressure) and a budget expiry (the *client's*
    /// fleet deadline ran out — every attempt here is driven under the
    /// remaining fleet budget, so a tight deadline says nothing about
    /// the replica's health) never count, anything else does. Returns
    /// whether the failure was charged to the replica's breaker.
    fn note_attempt_failure(&self, idx: usize, err: &PpcsError) -> bool {
        if matches!(
            transport_cause(err),
            Some(TransportError::Busy { .. }) | Some(TransportError::Budget(_)) | None
        ) {
            return false;
        }
        let now = self.clock.now_ms();
        if self.replicas[idx].breaker.record_failure(now) {
            if let Some(reg) = &self.metrics {
                reg.record_breaker_open();
            }
            self.record_breaker_transition(idx, BreakerState::Open);
        }
        true
    }

    /// Settles one failed attempt against replica `idx`: charges the
    /// breaker when the failure is genuine, and otherwise — when
    /// `probing` says the attempt held the breaker's half-open probe
    /// slot — releases the slot, so an uncharged outcome (busy shed,
    /// deadline expiry, deterministic protocol error) cannot wedge the
    /// breaker half-open forever.
    fn settle_attempt_failure(&self, idx: usize, err: &PpcsError, probing: bool) {
        let charged = self.note_attempt_failure(idx, err);
        if probing && !charged {
            self.release_probe_slot(idx);
        }
    }

    /// Releases replica `idx`'s half-open probe slot and mirrors the
    /// half-open → open move in the gauge and flight recorder. The
    /// breaker-opens counter is untouched: a released probe is not a
    /// fresh trip.
    fn release_probe_slot(&self, idx: usize) {
        if self.replicas[idx].breaker.release_probe() {
            self.record_breaker_transition(idx, BreakerState::Open);
        }
    }

    fn record_breaker_transition(&self, idx: usize, state: BreakerState) {
        if let Some(reg) = &self.metrics {
            reg.set_replica_state(idx as u32, state.gauge());
        }
        if let Some(rec) = &self.recorder {
            let detail = match state {
                BreakerState::Open => DETAIL_BREAKER_OPEN,
                BreakerState::HalfOpen => DETAIL_BREAKER_HALF_OPEN,
                BreakerState::Closed => DETAIL_BREAKER_CLOSED,
            };
            rec.record(FlightEventKind::StateTransition, idx as u32, 0, detail);
        }
    }

    fn record_failover(&self, to_idx: usize) {
        if let Some(reg) = &self.metrics {
            reg.record_failover();
        }
        if let Some(rec) = &self.recorder {
            rec.record(
                FlightEventKind::StateTransition,
                to_idx as u32,
                0,
                DETAIL_FAILOVER,
            );
        }
    }

    fn record_hedge_fired(&self, backup_idx: usize) {
        if let Some(reg) = &self.metrics {
            reg.record_hedge_fired();
        }
        if let Some(rec) = &self.recorder {
            rec.record(
                FlightEventKind::StateTransition,
                backup_idx as u32,
                0,
                DETAIL_HEDGE_FIRED,
            );
        }
    }
}

/// The budget left before `deadline`, or an error once it has elapsed.
fn remaining(deadline: Option<Instant>) -> Result<Option<Duration>, PpcsError> {
    match deadline {
        None => Ok(None),
        Some(d) => {
            let rem = d.saturating_duration_since(Instant::now());
            if rem.is_zero() {
                Err(PpcsError::Transport(TransportError::Budget(
                    "fleet deadline elapsed before dispatch".into(),
                )))
            } else {
                Ok(Some(rem))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms,
        })
    }

    #[test]
    fn breaker_full_cycle_is_deterministic_under_a_manual_clock() {
        let clock = ManualClock::new(0);
        let b = breaker(2, 100);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Allow);

        // Closed → Open at the threshold, not before.
        assert!(!b.record_failure(clock.now_ms()));
        assert_eq!(b.state(), BreakerState::Closed);
        clock.advance(5);
        assert!(b.record_failure(clock.now_ms()));
        assert_eq!(b.state(), BreakerState::Open);

        // Open rejects until the cooldown elapses...
        clock.set(104);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Reject);
        // ...then admits exactly one half-open probe.
        clock.set(105);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Reject);

        // The probe's success closes the breaker.
        assert!(b.record_success());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Allow);
    }

    #[test]
    fn failed_half_open_probe_rearms_the_cooldown() {
        let clock = ManualClock::new(0);
        let b = breaker(1, 50);
        assert!(b.record_failure(clock.now_ms()));
        clock.set(50);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Probe);
        clock.set(60);
        assert!(b.record_failure(clock.now_ms()), "probe failure re-opens");
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown restarts from the probe failure, not the first trip.
        clock.set(105);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Reject);
        clock.set(110);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Probe);
    }

    #[test]
    fn late_failures_against_an_open_breaker_keep_its_cooldown_origin() {
        let clock = ManualClock::new(0);
        let b = breaker(1, 100);
        assert!(b.record_failure(clock.now_ms()));
        // A hedged loser reporting late must not extend the cooldown.
        clock.set(90);
        assert!(!b.record_failure(clock.now_ms()));
        clock.set(100);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Probe);
    }

    #[test]
    fn released_probe_slot_reopens_and_admits_a_fresh_probe() {
        let clock = ManualClock::new(0);
        let b = breaker(1, 100);
        assert!(b.record_failure(clock.now_ms()));
        clock.set(100);
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Probe);
        assert_eq!(
            b.allow(clock.now_ms()),
            BreakerDecision::Reject,
            "slot taken"
        );

        // The probe ended with no verdict (busy shed / cancelled
        // loser): releasing the slot re-opens instead of wedging.
        assert!(b.release_probe());
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown origin is unchanged (already elapsed), so a
        // fresh probe is admitted immediately.
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Probe);

        // Releasing is a no-op once the probe's outcome was recorded.
        assert!(b.record_success());
        assert!(!b.release_probe(), "closed breaker holds no slot");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn busy_and_budget_failures_are_not_charged_to_the_breaker() {
        use crate::ProtocolConfig;
        use ppcs_math::F64Algebra;

        let client = Client::new(F64Algebra::new(), ProtocolConfig::functional());
        let mut fleet = FleetClient::new(
            client,
            FleetConfig {
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown_ms: 100,
                },
                ..FleetConfig::default()
            },
        );
        fleet.add_replica(Box::new(|| Err(TransportError::Disconnected)));

        // Orderly backpressure and the client's own deadline expiring
        // say nothing about the replica: threshold 1, still closed.
        fleet.note_attempt_failure(
            0,
            &PpcsError::Transport(TransportError::Busy {
                retry_after_ms: Some(5),
            }),
        );
        assert_eq!(fleet.replica_state(0), BreakerState::Closed);
        fleet.note_attempt_failure(
            0,
            &PpcsError::Transport(TransportError::Budget(
                "fleet deadline elapsed before dispatch".into(),
            )),
        );
        assert_eq!(fleet.replica_state(0), BreakerState::Closed);

        // A genuine transport failure still trips it.
        fleet.note_attempt_failure(0, &PpcsError::Transport(TransportError::Disconnected));
        assert_eq!(fleet.replica_state(0), BreakerState::Open);
    }

    #[test]
    fn settling_an_uncharged_probe_failure_releases_the_slot() {
        use crate::ProtocolConfig;
        use ppcs_math::F64Algebra;

        let clock = Arc::new(ManualClock::new(0));
        let client = Client::new(F64Algebra::new(), ProtocolConfig::functional());
        let mut fleet = FleetClient::new(
            client,
            FleetConfig {
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown_ms: 100,
                },
                ..FleetConfig::default()
            },
        )
        .with_clock(clock.clone());
        fleet.add_replica(Box::new(|| Err(TransportError::Disconnected)));

        // Trip open, elapse the cooldown, claim the probe slot.
        fleet.note_attempt_failure(0, &PpcsError::Transport(TransportError::Disconnected));
        clock.set(100);
        let b = &fleet.replicas[0].breaker;
        assert_eq!(b.allow(clock.now_ms()), BreakerDecision::Probe);

        // The probe's attempt was shed busy: the slot must come back.
        fleet.settle_attempt_failure(
            0,
            &PpcsError::Transport(TransportError::Busy {
                retry_after_ms: None,
            }),
            true,
        );
        assert_eq!(fleet.replica_state(0), BreakerState::Open);
        assert_eq!(
            fleet.replicas[0].breaker.allow(clock.now_ms()),
            BreakerDecision::Probe,
            "a fresh probe is admitted instead of rejecting forever"
        );
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let clock = ManualClock::new(0);
        let b = breaker(3, 100);
        assert!(!b.record_failure(clock.now_ms()));
        assert!(!b.record_failure(clock.now_ms()));
        assert!(!b.record_success(), "closed stays closed");
        assert!(!b.record_failure(clock.now_ms()));
        assert!(!b.record_failure(clock.now_ms()));
        assert!(b.record_failure(clock.now_ms()), "threshold counts fresh");
    }

    #[test]
    fn manual_clock_advances_and_jumps() {
        let clock = ManualClock::new(7);
        assert_eq!(clock.now_ms(), 7);
        clock.advance(3);
        assert_eq!(clock.now_ms(), 10);
        clock.set(2);
        assert_eq!(clock.now_ms(), 2);
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn breaker_state_gauges_are_stable() {
        assert_eq!(BreakerState::Closed.gauge(), 0);
        assert_eq!(BreakerState::Open.gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.gauge(), 2);
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
    }
}
