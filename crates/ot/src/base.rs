//! The base 1-out-of-2 oblivious transfer (Naor–Pinkas / Bellare–Micali
//! style) over a Diffie–Hellman group.
//!
//! Protocol (honest-but-curious):
//!
//! 1. Sender draws a group element `C = g^c` whose discrete log the
//!    receiver does not know, and sends `C`.
//! 2. Receiver with choice bit `b` draws `x`, sets `PK_b = g^x` and
//!    `PK_{1-b} = C / PK_b`, and sends `PK_0`. The receiver can know the
//!    discrete log of at most one of the two keys.
//! 3. Sender recovers `PK_1 = C / PK_0`, draws `r`, and sends
//!    `g^r, E_0 = m_0 ⊕ KDF(PK_0^r), E_1 = m_1 ⊕ KDF(PK_1^r)`.
//! 4. Receiver computes `(g^r)^x = PK_b^r` and decrypts `E_b`; the other
//!    pad is indistinguishable from random without the discrete log of
//!    `PK_{1-b}`.
//!
//! The role logic lives in the sans-I/O `*_io` functions, which speak to
//! a [`FrameIo`] mailbox and never see a transport; the same-named
//! blocking functions wrap them in a [`ProtocolEngine`] driven over an
//! [`Endpoint`].

use num_bigint::BigUint;
use ppcs_crypto::{ChaCha20, DhGroup};
use ppcs_transport::{drive_blocking, Endpoint, FrameIo, ProtocolEngine};
use rand::RngCore;

use crate::error::OtError;

/// Frame kinds used by the base OT (offset so higher layers can claim
/// their own ranges).
pub(crate) const KIND_OT12_C: u16 = 0x0100;
pub(crate) const KIND_OT12_PK0: u16 = 0x0101;
pub(crate) const KIND_OT12_PAYLOAD: u16 = 0x0102;

fn pad_apply(key: &[u8; 32], tag: u64, data: &mut [u8]) {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&tag.to_le_bytes());
    ChaCha20::new(key, &nonce, 0).apply(data);
}

/// Sender side of a single 1-out-of-2 OT.
///
/// `tag` must be unique per transfer within a session; it domain-separates
/// the derived pads.
///
/// # Errors
///
/// [`OtError::UnequalMessageLengths`] if `m0` and `m1` differ in length,
/// [`OtError::Transport`] / [`OtError::Protocol`] on channel or peer
/// misbehavior.
pub fn ot12_send(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    m0: &[u8],
    m1: &[u8],
    tag: u64,
) -> Result<(), OtError> {
    let mut engine =
        ProtocolEngine::new(|io| async move { ot12_send_io(group, &io, rng, m0, m1, tag).await });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O sender role of a single 1-out-of-2 OT (see [`ot12_send`]).
///
/// # Errors
///
/// Same as [`ot12_send`].
pub async fn ot12_send_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    m0: &[u8],
    m1: &[u8],
    tag: u64,
) -> Result<(), OtError> {
    if m0.len() != m1.len() {
        return Err(OtError::UnequalMessageLengths);
    }
    // Step 1: commit to C.
    let big_c = commit_c_io(group, io, rng)?;
    ot12_send_precommitted_io(group, io, rng, m0, m1, tag, &big_c).await
}

/// Draws the sender's commitment `C = g^c` and transmits it.
///
/// The sender never uses the discrete log `c` — `C` only has to be a
/// group element whose discrete log the receiver does not know — so one
/// commitment can safely serve every transfer of a batch session. This
/// is the base-phase work that batch mode hoists out of the per-transfer
/// loop (one modular exponentiation and one frame per base OT).
///
/// # Errors
///
/// Transport failures from sending the commitment frame.
pub fn commit_c(group: &DhGroup, ep: &Endpoint, rng: &mut dyn RngCore) -> Result<BigUint, OtError> {
    let mut engine = ProtocolEngine::new(|io| async move { commit_c_io(group, &io, rng) });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O sender half of [`commit_c`]: draws `C` and queues the
/// commitment frame. Synchronous because the commitment never waits for
/// the peer.
///
/// # Errors
///
/// Only a driver-injected transport failure.
pub fn commit_c_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
) -> Result<BigUint, OtError> {
    let c_exp = group.random_exponent(rng);
    let big_c = group.power_g(&c_exp);
    io.send_msg(KIND_OT12_C, &group.element_bytes(&big_c))?;
    Ok(big_c)
}

/// Receives the sender's commitment `C` (the receiver half of
/// [`commit_c`]).
///
/// # Errors
///
/// Transport failures, or [`OtError::Protocol`] for an invalid element.
pub fn receive_c(group: &DhGroup, ep: &Endpoint) -> Result<BigUint, OtError> {
    let mut engine = ProtocolEngine::new(|io| async move { receive_c_io(group, &io).await });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O receiver half of [`commit_c`].
///
/// # Errors
///
/// Same as [`receive_c`].
pub async fn receive_c_io(group: &DhGroup, io: &FrameIo) -> Result<BigUint, OtError> {
    let c_bytes: Vec<u8> = io.recv_msg(KIND_OT12_C).await?;
    group
        .element_from_bytes(&c_bytes)
        .ok_or_else(|| OtError::Protocol("sender sent invalid C".into()))
}

/// Sender side of a 1-out-of-2 OT whose commitment `C` was already
/// transmitted (steps 2–3 of the protocol).
///
/// # Errors
///
/// Same as [`ot12_send`].
pub fn ot12_send_precommitted(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    m0: &[u8],
    m1: &[u8],
    tag: u64,
    big_c: &BigUint,
) -> Result<(), OtError> {
    let mut engine = ProtocolEngine::new(|io| async move {
        ot12_send_precommitted_io(group, &io, rng, m0, m1, tag, big_c).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O sender role of [`ot12_send_precommitted`].
///
/// # Errors
///
/// Same as [`ot12_send`].
pub async fn ot12_send_precommitted_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    m0: &[u8],
    m1: &[u8],
    tag: u64,
    big_c: &BigUint,
) -> Result<(), OtError> {
    if m0.len() != m1.len() {
        return Err(OtError::UnequalMessageLengths);
    }
    let big_c = big_c.clone();
    // Step 2: receive PK_0, derive PK_1.
    let pk0_bytes: Vec<u8> = io.recv_msg(KIND_OT12_PK0).await?;
    let pk0 = group
        .element_from_bytes(&pk0_bytes)
        .ok_or_else(|| OtError::Protocol("receiver sent invalid PK_0".into()))?;
    let pk1 = group.mul(&big_c, &group.inv(&pk0));

    // Step 3: encrypt both messages under ephemeral DH pads.
    let r = group.random_exponent(rng);
    let g_r = group.power_g(&r);
    let k0 = group.derive_key(&group.exp(&pk0, &r), &tag_context(tag, 0));
    let k1 = group.derive_key(&group.exp(&pk1, &r), &tag_context(tag, 1));
    let mut e0 = m0.to_vec();
    let mut e1 = m1.to_vec();
    pad_apply(&k0, tag, &mut e0);
    pad_apply(&k1, tag, &mut e1);

    io.send_msg(KIND_OT12_PAYLOAD, &(group.element_bytes(&g_r), (e0, e1)))?;
    Ok(())
}

/// Receiver side of a single 1-out-of-2 OT; returns `m_choice`.
///
/// # Errors
///
/// [`OtError::Transport`] / [`OtError::Protocol`] on channel or peer
/// misbehavior.
pub fn ot12_receive(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    choice: bool,
    tag: u64,
) -> Result<Vec<u8>, OtError> {
    let mut engine =
        ProtocolEngine::new(
            |io| async move { ot12_receive_io(group, &io, rng, choice, tag).await },
        );
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O receiver role of [`ot12_receive`].
///
/// # Errors
///
/// Same as [`ot12_receive`].
pub async fn ot12_receive_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    choice: bool,
    tag: u64,
) -> Result<Vec<u8>, OtError> {
    // Step 1: receive C.
    let big_c = receive_c_io(group, io).await?;
    ot12_receive_precommitted_io(group, io, rng, choice, tag, &big_c).await
}

/// Receiver side of a 1-out-of-2 OT whose commitment `C` was already
/// received (steps 2–4 of the protocol).
///
/// # Errors
///
/// Same as [`ot12_receive`].
pub fn ot12_receive_precommitted(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    choice: bool,
    tag: u64,
    big_c: &BigUint,
) -> Result<Vec<u8>, OtError> {
    let mut engine = ProtocolEngine::new(|io| async move {
        ot12_receive_precommitted_io(group, &io, rng, choice, tag, big_c).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O receiver role of [`ot12_receive_precommitted`].
///
/// # Errors
///
/// Same as [`ot12_receive`].
pub async fn ot12_receive_precommitted_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    choice: bool,
    tag: u64,
    big_c: &BigUint,
) -> Result<Vec<u8>, OtError> {
    let big_c = big_c.clone();
    // Step 2: build the key pair so we know the discrete log of PK_choice
    // only.
    let x = group.random_exponent(rng);
    let pk_choice = group.power_g(&x);
    let pk0 = if choice {
        group.mul(&big_c, &group.inv(&pk_choice))
    } else {
        pk_choice.clone()
    };
    io.send_msg(KIND_OT12_PK0, &group.element_bytes(&pk0))?;

    // Step 3/4: decrypt our branch.
    let (g_r_bytes, (e0, e1)): (Vec<u8>, (Vec<u8>, Vec<u8>)) =
        io.recv_msg(KIND_OT12_PAYLOAD).await?;
    let g_r: BigUint = group
        .element_from_bytes(&g_r_bytes)
        .ok_or_else(|| OtError::Protocol("sender sent invalid g^r".into()))?;
    let shared = group.exp(&g_r, &x);
    let key = group.derive_key(&shared, &tag_context(tag, u8::from(choice)));
    let mut m = if choice { e1 } else { e0 };
    pad_apply(&key, tag, &mut m);
    Ok(m)
}

fn tag_context(tag: u64, branch: u8) -> Vec<u8> {
    let mut ctx = Vec::with_capacity(9);
    ctx.extend_from_slice(&tag.to_le_bytes());
    ctx.push(branch);
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_ot12(m0: &[u8], m1: &[u8], choice: bool) -> Vec<u8> {
        let group = DhGroup::modp_768();
        let (m0, m1) = (m0.to_vec(), m1.to_vec());
        let (_, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                ot12_send(group, &ep, &mut rng, &m0, &m1, 7).unwrap();
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                ot12_receive(group, &ep, &mut rng, choice, 7).unwrap()
            },
        );
        got
    }

    #[test]
    fn receiver_gets_chosen_message() {
        assert_eq!(run_ot12(b"zero!", b"one!!", false), b"zero!");
        assert_eq!(run_ot12(b"zero!", b"one!!", true), b"one!!");
    }

    #[test]
    fn unequal_lengths_rejected() {
        let group = DhGroup::modp_768();
        let (res, _) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                ot12_send(group, &ep, &mut rng, b"a", b"bb", 0)
            },
            move |_ep| {},
        );
        assert_eq!(res, Err(OtError::UnequalMessageLengths));
    }

    #[test]
    fn wrong_branch_key_does_not_decrypt() {
        // A curious receiver re-deriving the pad with the wrong branch
        // context must not recover the other message.
        let m0 = b"secret-zero".to_vec();
        let got = run_ot12(&m0, b"secret-one!", true);
        assert_ne!(got, b"secret-zero");
    }

    #[test]
    fn engine_pair_matches_blocking_path() {
        // The sans-I/O engines, pumped without any transport, produce the
        // same transfer as the blocking wrappers over a duplex channel.
        let group = DhGroup::modp_768();
        let mut rng_s = StdRng::seed_from_u64(1);
        let mut rng_r = StdRng::seed_from_u64(2);
        let mut sender = ProtocolEngine::new(|io| async move {
            ot12_send_io(group, &io, &mut rng_s, b"zero!", b"one!!", 7).await
        });
        let mut receiver = ProtocolEngine::new(|io| async move {
            ot12_receive_io(group, &io, &mut rng_r, true, 7).await
        });
        let (sent, got) =
            ppcs_transport::run_engine_pair(&mut sender, &mut receiver).expect("no deadlock");
        sent.expect("send");
        assert_eq!(got.expect("receive"), run_ot12(b"zero!", b"one!!", true));
    }
}
