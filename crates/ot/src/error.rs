//! Oblivious-transfer errors.

use core::fmt;
use ppcs_transport::TransportError;

/// Errors raised by the OT protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OtError {
    /// The underlying channel failed.
    Transport(TransportError),
    /// The receiver requested an index outside `0..num_messages`.
    InvalidIndex {
        /// The offending index.
        index: usize,
        /// The number of messages in the transfer.
        num_messages: usize,
    },
    /// The sender's messages do not all have the same length.
    UnequalMessageLengths,
    /// The peer deviated from the protocol (malformed group element,
    /// inconsistent counts, …).
    Protocol(String),
}

impl fmt::Display for OtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport failure: {e}"),
            Self::InvalidIndex {
                index,
                num_messages,
            } => write!(f, "index {index} out of range for {num_messages} messages"),
            Self::UnequalMessageLengths => write!(f, "all OT messages must have equal length"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for OtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for OtError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}
