//! Oblivious-transfer errors.

use core::fmt;
use ppcs_transport::{ErrorLayer, ProtocolError, TransportError};

/// Errors raised by the OT protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OtError {
    /// The underlying channel failed.
    Transport(TransportError),
    /// The receiver requested an index outside `0..num_messages`.
    InvalidIndex {
        /// The offending index.
        index: usize,
        /// The number of messages in the transfer.
        num_messages: usize,
    },
    /// The sender's messages do not all have the same length.
    UnequalMessageLengths,
    /// The peer deviated from the protocol (malformed group element,
    /// inconsistent counts, …).
    Protocol(String),
}

impl fmt::Display for OtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport failure: {e}"),
            Self::InvalidIndex {
                index,
                num_messages,
            } => write!(f, "index {index} out of range for {num_messages} messages"),
            Self::UnequalMessageLengths => write!(f, "all OT messages must have equal length"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for OtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for OtError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<OtError> for ProtocolError {
    fn from(e: OtError) -> Self {
        match e {
            // Preserve the transport-level layering (Timeout/Disconnected
            // → transport, Decode/UnexpectedFrame → codec).
            OtError::Transport(t) => Self::from(t),
            OtError::InvalidIndex { .. } | OtError::UnequalMessageLengths => {
                Self::new(ErrorLayer::Crypto, e)
            }
            OtError::Protocol(_) => Self::new(ErrorLayer::Protocol, e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ot_errors_map_to_layers() {
        let t: ProtocolError = OtError::Transport(TransportError::Timeout).into();
        assert_eq!(t.layer(), ErrorLayer::Transport);
        let c: ProtocolError = OtError::UnequalMessageLengths.into();
        assert_eq!(c.layer(), ErrorLayer::Crypto);
        assert!(matches!(
            c.downcast_ref::<OtError>(),
            Some(OtError::UnequalMessageLengths)
        ));
        let p: ProtocolError = OtError::Protocol("bad blob".into()).into();
        assert_eq!(p.layer(), ErrorLayer::Protocol);
    }
}
