//! Oblivious-transfer errors.

use core::fmt;
use ppcs_transport::{ErrorLayer, ProtocolError, TransportError};

/// Errors raised by the OT protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OtError {
    /// The underlying channel failed.
    Transport(TransportError),
    /// The receiver requested an index outside `0..num_messages`.
    InvalidIndex {
        /// The offending index.
        index: usize,
        /// The number of messages in the transfer.
        num_messages: usize,
    },
    /// The sender's messages do not all have the same length.
    UnequalMessageLengths,
    /// Precomputed offline material was produced under a different
    /// engine/group configuration than the session consuming it.
    ConfigMismatch {
        /// Fingerprint of the configuration the session runs under.
        expected: u64,
        /// Fingerprint the offline material was produced under.
        actual: u64,
    },
    /// The peer deviated from the protocol (malformed group element,
    /// inconsistent counts, …).
    Protocol(String),
}

impl fmt::Display for OtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport failure: {e}"),
            Self::InvalidIndex {
                index,
                num_messages,
            } => write!(f, "index {index} out of range for {num_messages} messages"),
            Self::UnequalMessageLengths => write!(f, "all OT messages must have equal length"),
            Self::ConfigMismatch { expected, actual } => write!(
                f,
                "offline material config {actual:#018x} does not match session config {expected:#018x}"
            ),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for OtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for OtError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<OtError> for ProtocolError {
    fn from(e: OtError) -> Self {
        match e {
            // Preserve the transport-level layering (Timeout/Disconnected
            // → transport, Decode/UnexpectedFrame → codec).
            OtError::Transport(t) => Self::from(t),
            OtError::InvalidIndex { .. }
            | OtError::UnequalMessageLengths
            | OtError::ConfigMismatch { .. } => Self::new(ErrorLayer::Crypto, e),
            OtError::Protocol(_) => Self::new(ErrorLayer::Protocol, e),
        }
    }
}

/// Reads a little-endian `u64` length/count field out of an untrusted
/// peer blob, as a structured error instead of a slice panic when the
/// blob is shorter than advertised.
pub(crate) fn read_u64_le(blob: &[u8], offset: usize, what: &str) -> Result<usize, OtError> {
    let bytes: [u8; 8] = blob
        .get(offset..offset + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| OtError::Protocol(format!("truncated {what} field")))?;
    Ok(u64::from_le_bytes(bytes) as usize)
}

/// `u32` twin of [`read_u64_le`].
pub(crate) fn read_u32_le(blob: &[u8], offset: usize, what: &str) -> Result<usize, OtError> {
    let bytes: [u8; 4] = blob
        .get(offset..offset + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| OtError::Protocol(format!("truncated {what} field")))?;
    Ok(u32::from_le_bytes(bytes) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_reads_are_structured_errors() {
        assert_eq!(read_u64_le(&[1, 0, 0, 0, 0, 0, 0, 0], 0, "n"), Ok(1));
        assert!(matches!(
            read_u64_le(&[1, 2, 3], 0, "n"),
            Err(OtError::Protocol(_))
        ));
        assert_eq!(read_u32_le(&[7, 0, 0, 0], 0, "len"), Ok(7));
        assert!(matches!(
            read_u32_le(&[7, 0, 0, 0], 1, "len"),
            Err(OtError::Protocol(_))
        ));
    }

    #[test]
    fn ot_errors_map_to_layers() {
        let t: ProtocolError = OtError::Transport(TransportError::Timeout).into();
        assert_eq!(t.layer(), ErrorLayer::Transport);
        let c: ProtocolError = OtError::UnequalMessageLengths.into();
        assert_eq!(c.layer(), ErrorLayer::Crypto);
        assert!(matches!(
            c.downcast_ref::<OtError>(),
            Some(OtError::UnequalMessageLengths)
        ));
        let p: ProtocolError = OtError::Protocol("bad blob".into()).into();
        assert_eq!(p.layer(), ErrorLayer::Protocol);
    }
}
