//! IKNP oblivious-transfer extension (Ishai–Kilian–Nissim–Petrank,
//! CRYPTO'03, semi-honest variant).
//!
//! A batch of `m` 1-out-of-2 OTs costs only `κ = 128` public-key base
//! OTs (run in the *reverse* direction) plus symmetric work — the
//! standard trick that makes OT-heavy protocols such as the paper's
//! k-out-of-N selection practical at scale.
//!
//! Construction sketch: the extension receiver holds choice bits
//! `r ∈ {0,1}^m` and two `m×κ` bit matrices `T⁰ = PRG(seeds⁰)`,
//! `T¹ = PRG(seeds¹)`; the base OTs give the sender one seed column per
//! position according to its secret `s ∈ {0,1}^κ`. After the receiver
//! publishes `U = T⁰ ⊕ T¹ ⊕ r·1ᵀ`, the sender's matrix `Q` satisfies
//! `q_j = t_j ⊕ r_j·s` row-wise, so `H(j, q_j)` and `H(j, q_j ⊕ s)` are
//! pads for `m_{j,0}`/`m_{j,1}` of which the receiver can compute
//! exactly `H(j, t_j) = H(j, q_j ⊕ r_j·s)` — its chosen one.

use ppcs_crypto::{ChaCha20, DhGroup, Sha256};
use ppcs_transport::{drive_blocking, Endpoint, FrameIo, ProtocolEngine};
use rand::{Rng, RngCore};

use crate::base::{ot12_receive_io, ot12_send_io};
use crate::error::{read_u32_le, OtError};

/// Computational security parameter: number of base OTs / matrix columns.
pub const KAPPA: usize = 128;

const KIND_EXT_U: u16 = 0x0280;
const KIND_EXT_PAYLOAD: u16 = 0x0281;

/// Tag space offset for the reverse-direction base OTs.
const BASE_TAG_OFFSET: u64 = 0x4000_0000;

fn prg_column(seed: &[u8; 32], column: usize, bytes: usize) -> Vec<u8> {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&(column as u64).to_le_bytes());
    nonce[8] = 0xEE;
    ChaCha20::new(seed, &nonce, 0).keystream(bytes)
}

fn row_hash(row_index: usize, row: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ppcs-iknp-row");
    h.update(&(row_index as u64).to_le_bytes());
    h.update(row);
    h.finalize()
}

#[inline]
fn get_bit(bytes: &[u8], idx: usize) -> bool {
    bytes[idx / 8] >> (idx % 8) & 1 == 1
}

#[inline]
fn set_bit(bytes: &mut [u8], idx: usize, v: bool) {
    if v {
        bytes[idx / 8] |= 1 << (idx % 8);
    } else {
        bytes[idx / 8] &= !(1 << (idx % 8));
    }
}

/// Transposes a column-major bit matrix (`cols` vectors of `row_bytes`)
/// into row-major `κ`-bit rows.
fn transpose_columns(columns: &[Vec<u8>], num_rows: usize) -> Vec<Vec<u8>> {
    let row_bytes = columns.len().div_ceil(8);
    let mut rows = vec![vec![0u8; row_bytes]; num_rows];
    for (c, col) in columns.iter().enumerate() {
        for (r, row) in rows.iter_mut().enumerate() {
            set_bit(row, c, get_bit(col, r));
        }
    }
    rows
}

/// Sender side of an IKNP batch: transfers `pairs[j] = (m₀, m₁)` such
/// that the receiver learns exactly one of each pair.
///
/// Both messages of a pair must have equal length; different pairs may
/// differ.
///
/// # Errors
///
/// [`OtError::UnequalMessageLengths`] on a malformed pair, plus
/// transport/protocol failures.
pub fn iknp_send(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    pairs: &[(Vec<u8>, Vec<u8>)],
) -> Result<(), OtError> {
    let mut engine =
        ProtocolEngine::new(|io| async move { iknp_send_io(group, &io, rng, pairs).await });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O sender role of an IKNP batch (see [`iknp_send`]).
///
/// # Errors
///
/// Same as [`iknp_send`].
pub async fn iknp_send_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    pairs: &[(Vec<u8>, Vec<u8>)],
) -> Result<(), OtError> {
    let m = pairs.len();
    if m == 0 {
        return Ok(());
    }
    for (a, b) in pairs {
        if a.len() != b.len() {
            return Err(OtError::UnequalMessageLengths);
        }
    }
    let col_bytes = m.div_ceil(8);

    // Reverse-direction base OTs: we are the *receiver* with secret
    // choice bits s.
    let mut s_bits = vec![0u8; KAPPA.div_ceil(8)];
    rng.fill_bytes(&mut s_bits);
    let mut q_columns = Vec::with_capacity(KAPPA);
    let mut seeds = Vec::with_capacity(KAPPA);
    for i in 0..KAPPA {
        let seed_bytes = ot12_receive_io(
            group,
            io,
            rng,
            get_bit(&s_bits, i),
            BASE_TAG_OFFSET + i as u64,
        )
        .await?;
        let seed: [u8; 32] = seed_bytes
            .try_into()
            .map_err(|_| OtError::Protocol("base-OT seed has wrong length".into()))?;
        seeds.push(seed);
    }

    // Receive U and build Q column-wise: q_i = PRG(seed_i) ⊕ s_i·u_i.
    let u_blob: Vec<u8> = io.recv_msg(KIND_EXT_U).await?;
    if u_blob.len() != KAPPA * col_bytes {
        return Err(OtError::Protocol(format!(
            "U matrix has {} bytes, expected {}",
            u_blob.len(),
            KAPPA * col_bytes
        )));
    }
    for i in 0..KAPPA {
        let mut col = prg_column(&seeds[i], i, col_bytes);
        if get_bit(&s_bits, i) {
            for (c, u) in col
                .iter_mut()
                .zip(&u_blob[i * col_bytes..(i + 1) * col_bytes])
            {
                *c ^= u;
            }
        }
        q_columns.push(col);
    }
    let q_rows = transpose_columns(&q_columns, m);

    // Pad and ship both branches of every pair.
    let mut payload = Vec::new();
    let s_row = {
        // s as a κ-bit row for the q_j ⊕ s branch.
        let mut row = vec![0u8; KAPPA.div_ceil(8)];
        row.copy_from_slice(&s_bits[..KAPPA.div_ceil(8)]);
        row
    };
    for (j, (m0, m1)) in pairs.iter().enumerate() {
        let pad0 = row_hash(j, &q_rows[j]);
        let mut q1 = q_rows[j].clone();
        for (q, s) in q1.iter_mut().zip(&s_row) {
            *q ^= s;
        }
        let pad1 = row_hash(j, &q1);

        payload.extend_from_slice(&(m0.len() as u32).to_le_bytes());
        payload.extend(xor_stream(&pad0, j, m0));
        payload.extend(xor_stream(&pad1, j, m1));
    }
    io.send_msg(KIND_EXT_PAYLOAD, &payload)?;
    Ok(())
}

/// Receiver side of an IKNP batch: learns `pairs[j].(choices[j])`.
///
/// # Errors
///
/// Transport/protocol failures.
pub fn iknp_receive(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    choices: &[bool],
) -> Result<Vec<Vec<u8>>, OtError> {
    let mut engine =
        ProtocolEngine::new(|io| async move { iknp_receive_io(group, &io, rng, choices).await });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O receiver role of an IKNP batch (see [`iknp_receive`]).
///
/// # Errors
///
/// Same as [`iknp_receive`].
pub async fn iknp_receive_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    choices: &[bool],
) -> Result<Vec<Vec<u8>>, OtError> {
    let m = choices.len();
    if m == 0 {
        return Ok(Vec::new());
    }
    let col_bytes = m.div_ceil(8);

    // Choice bits as a column.
    let mut r_col = vec![0u8; col_bytes];
    for (j, &c) in choices.iter().enumerate() {
        set_bit(&mut r_col, j, c);
    }

    // Base OTs (we are the sender of seed pairs).
    let mut seed_pairs = Vec::with_capacity(KAPPA);
    for i in 0..KAPPA {
        let mut s0 = [0u8; 32];
        let mut s1 = [0u8; 32];
        rng.fill_bytes(&mut s0);
        rng.fill_bytes(&mut s1);
        ot12_send_io(group, io, rng, &s0, &s1, BASE_TAG_OFFSET + i as u64).await?;
        seed_pairs.push((s0, s1));
    }

    // T⁰ columns and the public U = T⁰ ⊕ T¹ ⊕ r.
    let mut t_columns = Vec::with_capacity(KAPPA);
    let mut u_blob = Vec::with_capacity(KAPPA * col_bytes);
    for (i, (s0, s1)) in seed_pairs.iter().enumerate() {
        let t0 = prg_column(s0, i, col_bytes);
        let t1 = prg_column(s1, i, col_bytes);
        for j in 0..col_bytes {
            u_blob.push(t0[j] ^ t1[j] ^ r_col[j]);
        }
        t_columns.push(t0);
    }
    io.send_msg(KIND_EXT_U, &u_blob)?;

    let t_rows = transpose_columns(&t_columns, m);

    // Open our branch of every pair.
    let payload: Vec<u8> = io.recv_msg(KIND_EXT_PAYLOAD).await?;
    let mut out = Vec::with_capacity(m);
    let mut cursor = 0usize;
    for (j, &choice) in choices.iter().enumerate() {
        if cursor + 4 > payload.len() {
            return Err(OtError::Protocol("truncated extension payload".into()));
        }
        let len = read_u32_le(&payload, cursor, "extension pair length")?;
        cursor += 4;
        if cursor + 2 * len > payload.len() {
            return Err(OtError::Protocol("truncated extension payload".into()));
        }
        let branch = if choice {
            &payload[cursor + len..cursor + 2 * len]
        } else {
            &payload[cursor..cursor + len]
        };
        let pad = row_hash(j, &t_rows[j]);
        out.push(xor_stream(&pad, j, branch));
        cursor += 2 * len;
    }
    if cursor != payload.len() {
        return Err(OtError::Protocol(
            "trailing bytes in extension payload".into(),
        ));
    }
    Ok(out)
}

/// Expands a 32-byte pad into a keystream and XORs it over `data`
/// (domain-separated per row).
fn xor_stream(pad: &[u8; 32], row: usize, data: &[u8]) -> Vec<u8> {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&(row as u64).to_le_bytes());
    nonce[8] = 0xDD;
    let mut out = data.to_vec();
    ChaCha20::new(pad, &nonce, 0).apply(&mut out);
    out
}

/// Draws random choice bits (test helper and a convenience for random-OT
/// use cases).
pub fn random_choices<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Vec<bool> {
    (0..m).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_iknp(pairs: Vec<(Vec<u8>, Vec<u8>)>, choices: Vec<bool>) -> Vec<Vec<u8>> {
        let group = DhGroup::modp_768();
        let (send, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                iknp_send(group, &ep, &mut rng, &pairs)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                iknp_receive(group, &ep, &mut rng, &choices)
            },
        );
        send.expect("send");
        got.expect("receive")
    }

    #[test]
    fn batch_returns_chosen_branches() {
        let m = 300;
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..m)
            .map(|j| {
                (
                    format!("zero-{j}").into_bytes(),
                    format!("one!-{j}").into_bytes(),
                )
            })
            .collect();
        let choices: Vec<bool> = (0..m).map(|j| j % 3 == 0).collect();
        let got = run_iknp(pairs.clone(), choices.clone());
        for (j, (msg, &c)) in got.iter().zip(&choices).enumerate() {
            let want = if c { &pairs[j].1 } else { &pairs[j].0 };
            assert_eq!(msg, want, "row {j}");
        }
    }

    #[test]
    fn variable_length_pairs() {
        let pairs = vec![
            (vec![1u8; 4], vec![2u8; 4]),
            (vec![3u8; 64], vec![4u8; 64]),
            (vec![5u8; 1], vec![6u8; 1]),
        ];
        let got = run_iknp(pairs, vec![true, false, true]);
        assert_eq!(got[0], vec![2u8; 4]);
        assert_eq!(got[1], vec![3u8; 64]);
        assert_eq!(got[2], vec![6u8; 1]);
    }

    #[test]
    fn empty_batch_is_ok() {
        assert!(run_iknp(Vec::new(), Vec::new()).is_empty());
    }

    #[test]
    fn unequal_pair_rejected() {
        let group = DhGroup::modp_768();
        let (send, _) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                iknp_send(group, &ep, &mut rng, &[(vec![1], vec![2, 3])])
            },
            move |_ep| {},
        );
        assert_eq!(send.unwrap_err(), OtError::UnequalMessageLengths);
    }

    #[test]
    fn transpose_is_involutive_on_square() {
        let mut rng = StdRng::seed_from_u64(9);
        let cols: Vec<Vec<u8>> = (0..16)
            .map(|_| (0..2).map(|_| rng.gen()).collect())
            .collect();
        let rows = transpose_columns(&cols, 16);
        let back = transpose_columns(&rows, 16);
        for (a, b) in cols.iter().zip(&back) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bit_helpers() {
        let mut b = vec![0u8; 2];
        set_bit(&mut b, 3, true);
        set_bit(&mut b, 11, true);
        assert!(get_bit(&b, 3));
        assert!(get_bit(&b, 11));
        assert!(!get_bit(&b, 4));
        set_bit(&mut b, 3, false);
        assert!(!get_bit(&b, 3));
    }
}
