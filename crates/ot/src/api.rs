//! The object-safe k-out-of-N OT interface consumed by OMPE, plus the two
//! engines: cryptographic Naor–Pinkas and the ideal-functionality
//! simulator used for large-scale functional benchmarks.
//!
//! Role logic written sans-I/O cannot hold a `&dyn ObliviousTransfer`
//! *and* stay transport-free (the trait's blocking methods take an
//! `Endpoint`), so each engine exposes an [`OtSelect`] value — a plain
//! `Copy` selector — and the [`ot_send_io`]/[`ot_receive_io`] dispatch
//! functions execute the corresponding sans-I/O role over a
//! [`FrameIo`]. The blocking trait methods remain thin wrappers that
//! drive the same role logic over an `Endpoint`.

use num_bigint::BigUint;
use ppcs_crypto::DhGroup;
use ppcs_telemetry::Phase;
use ppcs_transport::{drive_blocking, Endpoint, FrameIo, ProtocolEngine};
use rand::RngCore;

use crate::base::{commit_c, commit_c_io, receive_c, receive_c_io};
use crate::error::OtError;
use crate::kn::{
    otkn_receive, otkn_receive_with_c, otkn_receive_with_c_io, otkn_send, otkn_send_with_c,
    otkn_send_with_c_io,
};
use crate::knx::{knx_receive_io, knx_send_io};

const KIND_SIM_INDICES: u16 = 0x0300;
const KIND_SIM_MESSAGES: u16 = 0x0301;

/// Per-batch OT session state: base-phase material an engine draws once
/// and reuses for every transfer of a batch. Created by
/// [`ObliviousTransfer::begin_batch_send`] /
/// [`ObliviousTransfer::begin_batch_receive`]; opaque to callers.
#[derive(Clone, Debug, Default)]
pub struct OtBatchState {
    /// Naor–Pinkas: the base-OT commitment `C`, transmitted once per
    /// batch. `None` for engines without a base phase.
    np_c: Option<BigUint>,
}

impl OtBatchState {
    /// Batch state carrying a Naor–Pinkas commitment produced offline
    /// (see [`crate::offline`]).
    pub(crate) fn with_np_c(big_c: BigUint) -> Self {
        Self { np_c: Some(big_c) }
    }
}

/// Transport-free engine selector for sans-I/O role logic.
///
/// Obtained from [`ObliviousTransfer::select`]; `Copy`, so role
/// functions can thread it through without borrowing the engine. Each
/// variant carries exactly the configuration its sans-I/O roles need.
#[derive(Clone, Copy, Debug)]
pub enum OtSelect {
    /// Cryptographic Naor–Pinkas k-out-of-N over the given group.
    NaorPinkas {
        /// The MODP group for the base OTs.
        group: &'static DhGroup,
    },
    /// IKNP-extension-backed k-out-of-N over the given base-OT group.
    Iknp {
        /// The MODP group for the `κ` base OTs.
        group: &'static DhGroup,
    },
    /// Ideal-functionality simulator (no cryptography).
    TrustedSim,
}

/// A k-out-of-N oblivious transfer engine.
///
/// The sender calls [`send`](ObliviousTransfer::send) with all `N`
/// messages (and the agreed `k`); the receiver calls
/// [`receive`](ObliviousTransfer::receive) with its `k` indices and gets
/// exactly those messages back, in order.
pub trait ObliviousTransfer: Send + Sync {
    /// Sender side of a k-out-of-N transfer.
    ///
    /// # Errors
    ///
    /// Implementation-specific [`OtError`]s; all report transport
    /// failures and unequal message lengths.
    fn send(
        &self,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        messages: &[Vec<u8>],
        k: usize,
    ) -> Result<(), OtError>;

    /// Receiver side; returns the messages at `indices`.
    ///
    /// # Errors
    ///
    /// Implementation-specific [`OtError`]s; all validate index ranges.
    fn receive(
        &self,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        num_messages: usize,
        indices: &[usize],
    ) -> Result<Vec<Vec<u8>>, OtError>;

    /// A short label for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// The transport-free selector for this engine, consumed by sans-I/O
    /// role logic via [`ot_send_io`] / [`ot_receive_io`].
    fn select(&self) -> OtSelect;

    /// One-time sender-side base-phase setup for a batch of transfers
    /// over `ep`.
    ///
    /// The default is a no-op for engines without a base phase. The
    /// Naor–Pinkas engine draws and transmits its commitment `C = g^c`
    /// here, so every later transfer of the batch skips one modular
    /// exponentiation and one frame per base OT. The peer must call
    /// [`begin_batch_receive`](ObliviousTransfer::begin_batch_receive)
    /// symmetrically.
    ///
    /// # Errors
    ///
    /// Transport failures while transmitting setup material.
    fn begin_batch_send(
        &self,
        _ep: &Endpoint,
        _rng: &mut dyn RngCore,
    ) -> Result<OtBatchState, OtError> {
        Ok(OtBatchState::default())
    }

    /// Receiver half of [`begin_batch_send`](ObliviousTransfer::begin_batch_send).
    ///
    /// # Errors
    ///
    /// Transport failures while receiving setup material.
    fn begin_batch_receive(&self, _ep: &Endpoint) -> Result<OtBatchState, OtError> {
        Ok(OtBatchState::default())
    }

    /// [`send`](ObliviousTransfer::send) reusing per-batch state.
    ///
    /// # Errors
    ///
    /// Same as [`send`](ObliviousTransfer::send).
    fn send_batched(
        &self,
        _state: &OtBatchState,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        messages: &[Vec<u8>],
        k: usize,
    ) -> Result<(), OtError> {
        self.send(ep, rng, messages, k)
    }

    /// [`receive`](ObliviousTransfer::receive) reusing per-batch state.
    ///
    /// # Errors
    ///
    /// Same as [`receive`](ObliviousTransfer::receive).
    fn receive_batched(
        &self,
        _state: &OtBatchState,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        num_messages: usize,
        indices: &[usize],
    ) -> Result<Vec<Vec<u8>>, OtError> {
        self.receive(ep, rng, num_messages, indices)
    }
}

/// Sans-I/O sender-side base-phase setup for the engine selected by
/// `sel` (see [`ObliviousTransfer::begin_batch_send`]).
///
/// # Errors
///
/// Transport failures while transmitting setup material.
pub async fn ot_begin_send_io(
    sel: OtSelect,
    io: &FrameIo,
    rng: &mut dyn RngCore,
) -> Result<OtBatchState, OtError> {
    match sel {
        OtSelect::NaorPinkas { group } => {
            let _span = ppcs_telemetry::span(Phase::BaseOt);
            Ok(OtBatchState {
                np_c: Some(commit_c_io(group, io, rng)?),
            })
        }
        OtSelect::Iknp { .. } | OtSelect::TrustedSim => Ok(OtBatchState::default()),
    }
}

/// Sans-I/O receiver half of [`ot_begin_send_io`].
///
/// # Errors
///
/// Transport failures while receiving setup material.
pub async fn ot_begin_receive_io(sel: OtSelect, io: &FrameIo) -> Result<OtBatchState, OtError> {
    match sel {
        OtSelect::NaorPinkas { group } => {
            let _span = ppcs_telemetry::span(Phase::BaseOt);
            Ok(OtBatchState {
                np_c: Some(receive_c_io(group, io).await?),
            })
        }
        OtSelect::Iknp { .. } | OtSelect::TrustedSim => Ok(OtBatchState::default()),
    }
}

/// Sans-I/O sender side of a k-out-of-N transfer with the engine
/// selected by `sel`, reusing per-batch `state`.
///
/// # Errors
///
/// Engine-specific [`OtError`]s; all report transport failures and
/// unequal message lengths.
pub async fn ot_send_io(
    sel: OtSelect,
    state: &OtBatchState,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    k: usize,
) -> Result<(), OtError> {
    match sel {
        OtSelect::NaorPinkas { group } => {
            let _span = ppcs_telemetry::span(Phase::KnOt);
            otkn_send_with_c_io(group, io, rng, messages, k, state.np_c.as_ref()).await
        }
        OtSelect::Iknp { group } => {
            let _span = ppcs_telemetry::span(Phase::OtExt);
            knx_send_io(group, io, rng, messages, k).await
        }
        OtSelect::TrustedSim => {
            let _span = ppcs_telemetry::span(Phase::KnOt);
            sim_send_io(io, messages, k).await
        }
    }
}

/// Sans-I/O receiver side of a k-out-of-N transfer with the engine
/// selected by `sel`, reusing per-batch `state`; returns the messages at
/// `indices`, in order.
///
/// # Errors
///
/// Engine-specific [`OtError`]s; all validate index ranges.
pub async fn ot_receive_io(
    sel: OtSelect,
    state: &OtBatchState,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    num_messages: usize,
    indices: &[usize],
) -> Result<Vec<Vec<u8>>, OtError> {
    match sel {
        OtSelect::NaorPinkas { group } => {
            let _span = ppcs_telemetry::span(Phase::KnOt);
            otkn_receive_with_c_io(group, io, rng, num_messages, indices, state.np_c.as_ref()).await
        }
        OtSelect::Iknp { group } => {
            let _span = ppcs_telemetry::span(Phase::OtExt);
            knx_receive_io(group, io, rng, num_messages, indices).await
        }
        OtSelect::TrustedSim => {
            let _span = ppcs_telemetry::span(Phase::KnOt);
            sim_receive_io(io, num_messages, indices).await
        }
    }
}

/// Sans-I/O sender role of the ideal-functionality simulator (see
/// [`TrustedSimOt`]).
///
/// # Errors
///
/// [`OtError::UnequalMessageLengths`], malformed peer blobs, plus
/// transport failures.
pub async fn sim_send_io(io: &FrameIo, messages: &[Vec<u8>], k: usize) -> Result<(), OtError> {
    let msg_len = messages.first().map_or(0, Vec::len);
    if messages.iter().any(|m| m.len() != msg_len) {
        return Err(OtError::UnequalMessageLengths);
    }
    let blob: Vec<u8> = io.recv_msg(KIND_SIM_INDICES).await?;
    if !blob.len().is_multiple_of(8) {
        return Err(OtError::Protocol("malformed index blob".into()));
    }
    let mut indices = Vec::with_capacity(blob.len() / 8);
    for off in (0..blob.len()).step_by(8) {
        indices.push(crate::error::read_u64_le(&blob, off, "sim index")?);
    }
    if indices.len() != k {
        return Err(OtError::Protocol(format!(
            "receiver opened {} positions, agreed k = {k}",
            indices.len()
        )));
    }
    let mut out = Vec::with_capacity(indices.len() * msg_len);
    for &i in &indices {
        let m = messages.get(i).ok_or(OtError::InvalidIndex {
            index: i,
            num_messages: messages.len(),
        })?;
        out.extend_from_slice(m);
    }
    io.send_msg(KIND_SIM_MESSAGES, &out)?;
    Ok(())
}

/// Sans-I/O receiver role of the ideal-functionality simulator (see
/// [`TrustedSimOt`]).
///
/// # Errors
///
/// [`OtError::InvalidIndex`], malformed peer blobs, plus transport
/// failures.
pub async fn sim_receive_io(
    io: &FrameIo,
    num_messages: usize,
    indices: &[usize],
) -> Result<Vec<Vec<u8>>, OtError> {
    for &i in indices {
        if i >= num_messages {
            return Err(OtError::InvalidIndex {
                index: i,
                num_messages,
            });
        }
    }
    let mut blob = Vec::with_capacity(indices.len() * 8);
    for &i in indices {
        blob.extend_from_slice(&(i as u64).to_le_bytes());
    }
    io.send_msg(KIND_SIM_INDICES, &blob)?;
    let out: Vec<u8> = io.recv_msg(KIND_SIM_MESSAGES).await?;
    if indices.is_empty() {
        return Ok(Vec::new());
    }
    if !out.len().is_multiple_of(indices.len()) {
        return Err(OtError::Protocol("malformed message blob".into()));
    }
    let msg_len = out.len() / indices.len();
    Ok(out.chunks_exact(msg_len).map(<[u8]>::to_vec).collect())
}

/// Cryptographic k-out-of-N OT (Naor–Pinkas base OTs over a MODP group).
///
/// # Examples
///
/// ```
/// use ppcs_ot::{NaorPinkasOt, ObliviousTransfer};
/// use ppcs_transport::run_pair;
/// use rand::SeedableRng;
///
/// let ot = NaorPinkasOt::fast_insecure(); // 768-bit group: tests only
/// let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 4]).collect();
/// let msgs2 = msgs.clone();
/// let ot2 = ot.clone();
/// let (_, got) = run_pair(
///     move |ep| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(1);
///         ot.send(&ep, &mut rng, &msgs, 2).unwrap();
///     },
///     move |ep| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(2);
///         ot2.receive(&ep, &mut rng, 8, &[6, 1]).unwrap()
///     },
/// );
/// assert_eq!(got, vec![msgs2[6].clone(), msgs2[1].clone()]);
/// ```
#[derive(Clone, Debug)]
pub struct NaorPinkasOt {
    group: &'static DhGroup,
}

impl NaorPinkasOt {
    /// Security-grade engine over the RFC 3526 2048-bit MODP group.
    pub fn new() -> Self {
        Self {
            group: DhGroup::modp_2048(),
        }
    }

    /// Fast engine over a 768-bit group — for tests and micro-benchmarks
    /// only; 768-bit discrete logs are not a modern security margin.
    pub fn fast_insecure() -> Self {
        Self {
            group: DhGroup::modp_768(),
        }
    }

    /// The underlying group.
    pub fn group(&self) -> &'static DhGroup {
        self.group
    }
}

impl Default for NaorPinkasOt {
    fn default() -> Self {
        Self::new()
    }
}

impl ObliviousTransfer for NaorPinkasOt {
    fn send(
        &self,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        messages: &[Vec<u8>],
        k: usize,
    ) -> Result<(), OtError> {
        otkn_send(self.group, ep, rng, messages, k)
    }

    fn receive(
        &self,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        num_messages: usize,
        indices: &[usize],
    ) -> Result<Vec<Vec<u8>>, OtError> {
        otkn_receive(self.group, ep, rng, num_messages, indices)
    }

    fn name(&self) -> &'static str {
        if core::ptr::eq(self.group, DhGroup::modp_2048()) {
            "naor-pinkas-2048"
        } else {
            "naor-pinkas-768"
        }
    }

    fn select(&self) -> OtSelect {
        OtSelect::NaorPinkas { group: self.group }
    }

    fn begin_batch_send(
        &self,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
    ) -> Result<OtBatchState, OtError> {
        Ok(OtBatchState {
            np_c: Some(commit_c(self.group, ep, rng)?),
        })
    }

    fn begin_batch_receive(&self, ep: &Endpoint) -> Result<OtBatchState, OtError> {
        Ok(OtBatchState {
            np_c: Some(receive_c(self.group, ep)?),
        })
    }

    fn send_batched(
        &self,
        state: &OtBatchState,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        messages: &[Vec<u8>],
        k: usize,
    ) -> Result<(), OtError> {
        otkn_send_with_c(self.group, ep, rng, messages, k, state.np_c.as_ref())
    }

    fn receive_batched(
        &self,
        state: &OtBatchState,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        num_messages: usize,
        indices: &[usize],
    ) -> Result<Vec<Vec<u8>>, OtError> {
        otkn_receive_with_c(
            self.group,
            ep,
            rng,
            num_messages,
            indices,
            state.np_c.as_ref(),
        )
    }
}

/// Ideal-functionality OT: the receiver reveals its indices to an assumed
/// trusted channel and gets exactly the selected messages back.
///
/// This models the OT as an ideal functionality so that protocol-level
/// experiments can run at dataset scale (Fig. 9 of the paper sweeps tens
/// of thousands of classifications). It provides **no sender privacy
/// against the transport** and must never be used where the OT's
/// cryptographic guarantees matter; the benchmark harness reports which
/// engine produced each number.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrustedSimOt;

impl TrustedSimOt {
    /// Creates the simulator engine.
    pub fn new() -> Self {
        Self
    }
}

impl ObliviousTransfer for TrustedSimOt {
    fn send(
        &self,
        ep: &Endpoint,
        _rng: &mut dyn RngCore,
        messages: &[Vec<u8>],
        k: usize,
    ) -> Result<(), OtError> {
        let mut engine =
            ProtocolEngine::new(|io| async move { sim_send_io(&io, messages, k).await });
        drive_blocking(ep, &mut engine)
    }

    fn receive(
        &self,
        ep: &Endpoint,
        _rng: &mut dyn RngCore,
        num_messages: usize,
        indices: &[usize],
    ) -> Result<Vec<Vec<u8>>, OtError> {
        let mut engine =
            ProtocolEngine::new(
                |io| async move { sim_receive_io(&io, num_messages, indices).await },
            );
        drive_blocking(ep, &mut engine)
    }

    fn name(&self) -> &'static str {
        "trusted-sim"
    }

    fn select(&self) -> OtSelect {
        OtSelect::TrustedSim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exercise(ot: impl ObliviousTransfer + Clone + 'static) {
        let msgs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 8]).collect();
        let msgs_s = msgs.clone();
        let ot_r = ot.clone();
        let indices = vec![9usize, 0, 4];
        let idx = indices.clone();
        let (_, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                ot.send(&ep, &mut rng, &msgs_s, 3).unwrap();
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                ot_r.receive(&ep, &mut rng, 10, &idx).unwrap()
            },
        );
        for (g, &i) in got.iter().zip(&indices) {
            assert_eq!(g, &msgs[i]);
        }
    }

    #[test]
    fn naor_pinkas_engine_works() {
        exercise(NaorPinkasOt::fast_insecure());
    }

    #[test]
    fn trusted_sim_engine_works() {
        exercise(TrustedSimOt::new());
    }

    #[test]
    fn trusted_sim_rejects_wrong_k() {
        let ot = TrustedSimOt::new();
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 4]).collect();
        let (res, _) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                TrustedSimOt::new().send(&ep, &mut rng, &msgs, 2)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                // Receiver tries to open 3 positions when k = 2.
                let _ = ot.receive(&ep, &mut rng, 4, &[0, 1, 2]);
            },
        );
        assert!(matches!(res.unwrap_err(), OtError::Protocol(_)));
    }

    #[test]
    fn batched_transfers_share_one_commitment() {
        let ot = NaorPinkasOt::fast_insecure();
        let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 8]).collect();
        let msgs_s = msgs.clone();
        let ot_r = ot.clone();
        let rounds = 3usize;
        let (_, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(5);
                let state = ot.begin_batch_send(&ep, &mut rng).unwrap();
                for _ in 0..rounds {
                    ot.send_batched(&state, &ep, &mut rng, &msgs_s, 2).unwrap();
                }
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(6);
                let state = ot_r.begin_batch_receive(&ep).unwrap();
                (0..rounds)
                    .map(|r| {
                        ot_r.receive_batched(&state, &ep, &mut rng, 6, &[r, 5 - r])
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            },
        );
        for (r, round) in got.iter().enumerate() {
            assert_eq!(round[0], msgs[r]);
            assert_eq!(round[1], msgs[5 - r]);
        }
    }

    #[test]
    fn default_batch_state_is_a_noop() {
        let ot = TrustedSimOt::new();
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 4]).collect();
        let msgs_s = msgs.clone();
        let (_, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                let state = TrustedSimOt::new().begin_batch_send(&ep, &mut rng).unwrap();
                TrustedSimOt::new()
                    .send_batched(&state, &ep, &mut rng, &msgs_s, 1)
                    .unwrap();
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                let state = ot.begin_batch_receive(&ep).unwrap();
                ot.receive_batched(&state, &ep, &mut rng, 4, &[2]).unwrap()
            },
        );
        assert_eq!(got, vec![msgs[2].clone()]);
    }

    #[test]
    fn engines_report_names() {
        assert_eq!(NaorPinkasOt::new().name(), "naor-pinkas-2048");
        assert_eq!(NaorPinkasOt::fast_insecure().name(), "naor-pinkas-768");
        assert_eq!(TrustedSimOt::new().name(), "trusted-sim");
    }

    #[test]
    fn dispatch_matches_blocking_engines() {
        // The sans-I/O dispatch path must return the same messages as the
        // blocking trait methods for every engine.
        use ppcs_transport::{run_engine_pair, ProtocolEngine};
        let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i ^ 0x5A; 6]).collect();
        let indices = vec![7usize, 0, 3];
        for sel in [
            NaorPinkasOt::fast_insecure().select(),
            crate::knx::IknpOt::fast_insecure().select(),
            TrustedSimOt::new().select(),
        ] {
            let msgs_s = msgs.clone();
            let idx = indices.clone();
            let mut rng_s = StdRng::seed_from_u64(11);
            let mut rng_r = StdRng::seed_from_u64(12);
            let mut sender = ProtocolEngine::new(|io| async move {
                let state = ot_begin_send_io(sel, &io, &mut rng_s).await?;
                ot_send_io(sel, &state, &io, &mut rng_s, &msgs_s, 3).await
            });
            let mut receiver = ProtocolEngine::new(|io| async move {
                let state = ot_begin_receive_io(sel, &io).await?;
                ot_receive_io(sel, &state, &io, &mut rng_r, 8, &idx).await
            });
            let (sent, received) = run_engine_pair(&mut sender, &mut receiver).expect("pump");
            sent.expect("send ok");
            let got = received.expect("receive ok");
            for (g, &i) in got.iter().zip(&indices) {
                assert_eq!(g, &msgs[i], "engine {sel:?}, index {i}");
            }
        }
    }
}
