//! k-out-of-N oblivious transfer over the IKNP extension: the same
//! construction as [`kn`](crate::kn) (per-query bit keys + encrypted
//! message tables), but all `k·⌈log₂N⌉` underlying 1-of-2 transfers run
//! in a single extension batch costing `κ = 128` public-key operations
//! total instead of four per bit.

use ppcs_crypto::DhGroup;
use ppcs_transport::{drive_blocking, Endpoint, FrameIo, ProtocolEngine};
use rand::RngCore;

use crate::api::{ObliviousTransfer, OtSelect};
use crate::error::{read_u64_le, OtError};
use crate::ext::{iknp_receive_io, iknp_send_io};
use crate::kn::{encrypt_message, message_key, num_bits};

const KIND_KNX_TABLE: u16 = 0x0290;

/// k-out-of-N OT engine backed by the IKNP extension.
///
/// Amortizes the public-key cost across the whole selection: one batch
/// of `κ` base OTs regardless of `k` and `N`. The engine of choice when
/// a session transfers many positions (large decoy factors or large
/// masking degrees).
///
/// # Examples
///
/// ```
/// use ppcs_ot::{IknpOt, ObliviousTransfer};
/// use ppcs_transport::run_pair;
/// use rand::SeedableRng;
///
/// let msgs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 8]).collect();
/// let expect = vec![msgs[3].clone(), msgs[9].clone()];
/// let (send, got) = run_pair(
///     move |ep| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(1);
///         IknpOt::fast_insecure().send(&ep, &mut rng, &msgs, 2)
///     },
///     move |ep| {
///         let mut rng = rand::rngs::StdRng::seed_from_u64(2);
///         IknpOt::fast_insecure().receive(&ep, &mut rng, 16, &[3, 9]).unwrap()
///     },
/// );
/// send.unwrap();
/// assert_eq!(got, expect);
/// ```
#[derive(Clone, Debug)]
pub struct IknpOt {
    group: &'static DhGroup,
}

impl IknpOt {
    /// Security-grade engine (2048-bit base OTs).
    pub fn new() -> Self {
        Self {
            group: DhGroup::modp_2048(),
        }
    }

    /// Fast engine over the 768-bit test group — tests and benches only.
    pub fn fast_insecure() -> Self {
        Self {
            group: DhGroup::modp_768(),
        }
    }
}

impl Default for IknpOt {
    fn default() -> Self {
        Self::new()
    }
}

/// Sans-I/O sender role of an extension-backed k-out-of-N transfer.
///
/// # Errors
///
/// [`OtError::UnequalMessageLengths`], zero-message batches, plus
/// transport/protocol failures.
pub async fn knx_send_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    k: usize,
) -> Result<(), OtError> {
    let n = messages.len();
    if n == 0 {
        return Err(OtError::Protocol("cannot transfer zero messages".into()));
    }
    let msg_len = messages[0].len();
    if messages.iter().any(|m| m.len() != msg_len) {
        return Err(OtError::UnequalMessageLengths);
    }
    let bits = num_bits(n);

    // Fresh 32-byte key pairs for every (query, bit) slot, shipped
    // through one extension batch.
    let mut pairs = Vec::with_capacity(k * bits);
    let mut key_table = Vec::with_capacity(k);
    for _query in 0..k {
        let mut per_query = Vec::with_capacity(bits);
        for _bit in 0..bits {
            let mut k0 = [0u8; 32];
            let mut k1 = [0u8; 32];
            rng.fill_bytes(&mut k0);
            rng.fill_bytes(&mut k1);
            pairs.push((k0.to_vec(), k1.to_vec()));
            per_query.push((k0, k1));
        }
        key_table.push(per_query);
    }
    iknp_send_io(group, io, rng, &pairs).await?;

    // Per-query encrypted message tables, exactly as in the
    // non-extended construction.
    for (query, per_query) in key_table.iter().enumerate() {
        let mut blob = Vec::with_capacity(16 + n * msg_len);
        blob.extend_from_slice(&(n as u64).to_le_bytes());
        blob.extend_from_slice(&(msg_len as u64).to_le_bytes());
        for (i, msg) in messages.iter().enumerate() {
            let selected: Vec<[u8; 32]> = (0..bits)
                .map(|b| {
                    if (i >> b) & 1 == 0 {
                        per_query[b].0
                    } else {
                        per_query[b].1
                    }
                })
                .collect();
            let key = message_key(&selected, i, query as u64);
            let mut c = msg.clone();
            encrypt_message(&key, i, &mut c);
            blob.extend_from_slice(&c);
        }
        io.send_msg(KIND_KNX_TABLE, &blob)?;
    }
    Ok(())
}

/// Sans-I/O receiver role of an extension-backed k-out-of-N transfer.
///
/// # Errors
///
/// [`OtError::InvalidIndex`] on out-of-range indices, plus
/// transport/protocol failures.
pub async fn knx_receive_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    num_messages: usize,
    indices: &[usize],
) -> Result<Vec<Vec<u8>>, OtError> {
    for &i in indices {
        if i >= num_messages {
            return Err(OtError::InvalidIndex {
                index: i,
                num_messages,
            });
        }
    }
    let bits = num_bits(num_messages);
    let choices: Vec<bool> = indices
        .iter()
        .flat_map(|&index| (0..bits).map(move |b| (index >> b) & 1 == 1))
        .collect();
    let keys_flat = iknp_receive_io(group, io, rng, &choices).await?;

    let mut out = Vec::with_capacity(indices.len());
    for (query, &index) in indices.iter().enumerate() {
        let blob: Vec<u8> = io.recv_msg(KIND_KNX_TABLE).await?;
        if blob.len() < 16 {
            return Err(OtError::Protocol("message table too short".into()));
        }
        let n = read_u64_le(&blob, 0, "table message count")?;
        let msg_len = read_u64_le(&blob, 8, "table message length")?;
        if n != num_messages || blob.len() != 16 + n * msg_len {
            return Err(OtError::Protocol("message table shape mismatch".into()));
        }
        let mut keys = Vec::with_capacity(bits);
        for b in 0..bits {
            let key: [u8; 32] = keys_flat[query * bits + b]
                .as_slice()
                .try_into()
                .map_err(|_| OtError::Protocol("bit key has wrong length".into()))?;
            keys.push(key);
        }
        let key = message_key(&keys, index, query as u64);
        let mut m = blob[16 + index * msg_len..16 + (index + 1) * msg_len].to_vec();
        encrypt_message(&key, index, &mut m);
        out.push(m);
    }
    Ok(out)
}

impl ObliviousTransfer for IknpOt {
    fn send(
        &self,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        messages: &[Vec<u8>],
        k: usize,
    ) -> Result<(), OtError> {
        let mut engine = ProtocolEngine::new(|io| async move {
            knx_send_io(self.group, &io, rng, messages, k).await
        });
        drive_blocking(ep, &mut engine)
    }

    fn receive(
        &self,
        ep: &Endpoint,
        rng: &mut dyn RngCore,
        num_messages: usize,
        indices: &[usize],
    ) -> Result<Vec<Vec<u8>>, OtError> {
        let mut engine = ProtocolEngine::new(|io| async move {
            knx_receive_io(self.group, &io, rng, num_messages, indices).await
        });
        drive_blocking(ep, &mut engine)
    }

    fn name(&self) -> &'static str {
        if core::ptr::eq(self.group, DhGroup::modp_2048()) {
            "iknp-2048"
        } else {
            "iknp-768"
        }
    }

    fn select(&self) -> OtSelect {
        OtSelect::Iknp { group: self.group }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exercise(n: usize, indices: Vec<usize>) {
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![(i * 13) as u8; 24]).collect();
        let msgs_s = msgs.clone();
        let idx = indices.clone();
        let k = indices.len();
        let (send, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(5);
                IknpOt::fast_insecure().send(&ep, &mut rng, &msgs_s, k)
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(6);
                IknpOt::fast_insecure().receive(&ep, &mut rng, n, &idx)
            },
        );
        send.expect("send");
        let got = got.expect("receive");
        for (g, &i) in got.iter().zip(&indices) {
            assert_eq!(g, &msgs[i], "index {i}");
        }
    }

    #[test]
    fn small_selection() {
        exercise(8, vec![0, 7, 3]);
    }

    #[test]
    fn larger_selection_with_repeats() {
        exercise(33, vec![32, 0, 16, 16, 5, 21, 9]);
    }

    #[test]
    fn single_message_universe() {
        exercise(1, vec![0, 0]);
    }

    #[test]
    fn rejects_out_of_range() {
        let (_, res) = run_pair(
            move |_ep| {},
            move |ep| {
                let mut rng = StdRng::seed_from_u64(6);
                IknpOt::fast_insecure().receive(&ep, &mut rng, 4, &[4])
            },
        );
        assert_eq!(
            res.unwrap_err(),
            OtError::InvalidIndex {
                index: 4,
                num_messages: 4
            }
        );
    }

    #[test]
    fn agrees_with_plain_naor_pinkas_engine() {
        // Both engines implement the same ideal functionality.
        use crate::api::NaorPinkasOt;
        let msgs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 8]).collect();
        let indices = vec![9usize, 2, 2, 0];
        for engine in [
            Box::new(IknpOt::fast_insecure()) as Box<dyn ObliviousTransfer>,
            Box::new(NaorPinkasOt::fast_insecure()),
        ] {
            let msgs_s = msgs.clone();
            let idx = indices.clone();
            let engine: &dyn ObliviousTransfer = engine.as_ref();
            let (send, got) = std::thread::scope(|scope| {
                let (a, b) = ppcs_transport::duplex();
                let ha = scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1);
                    engine.send(&a, &mut rng, &msgs_s, 4)
                });
                let hb = scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(2);
                    engine.receive(&b, &mut rng, 10, &idx)
                });
                (ha.join().unwrap(), hb.join().unwrap())
            });
            send.expect("send");
            let got = got.expect("receive");
            for (g, &i) in got.iter().zip(&indices) {
                assert_eq!(g, &msgs[i]);
            }
        }
    }
}
