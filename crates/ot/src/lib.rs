//! # ppcs-ot
//!
//! Oblivious transfer, the cryptographic workhorse of the ppcs protocols
//! (Section III-B of the paper): 1-out-of-2, 1-out-of-N, and k-out-of-N
//! transfers, all over in-tree primitives.
//!
//! Three interchangeable engines implement the [`ObliviousTransfer`] trait:
//!
//! * [`NaorPinkasOt`] — real public-key OT (Naor–Pinkas base OTs over the
//!   RFC 3526 MODP-2048 group; a 768-bit group is available for tests);
//! * [`IknpOt`] — the same k-of-N functionality over the IKNP OT
//!   *extension*: `κ = 128` base OTs amortized across the whole batch,
//!   the engine of choice for selection-heavy sessions;
//! * [`TrustedSimOt`] — an ideal-functionality stand-in that lets the
//!   benchmark harness sweep paper-scale workloads (32k-sample datasets)
//!   without paying thousands of modular exponentiations per sample. It
//!   is clearly labeled and never used where OT security is the claim
//!   under test.
//!
//! The building blocks ([`ot12_send`]/[`ot12_receive`],
//! [`ot1n_send`]/[`ot1n_receive`], [`otkn_send`]/[`otkn_receive`]) are
//! exported for direct use and for the protocol-level tests.
//!
//! ## Sans-I/O roles
//!
//! Every protocol here is implemented as transport-free role logic over
//! a [`FrameIo`](ppcs_transport::FrameIo) mailbox (the `*_io` functions);
//! the blocking functions above are thin wrappers that drive the same
//! logic over an `Endpoint`. Role code that must stay generic over the
//! engine takes an [`OtSelect`] value (from
//! [`ObliviousTransfer::select`]) and calls the [`ot_send_io`] /
//! [`ot_receive_io`] dispatchers, so no `Endpoint` — and no engine
//! borrow — appears in its signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod base;
mod error;
mod ext;
mod kn;
mod knx;
mod offline;

pub use api::{
    ot_begin_receive_io, ot_begin_send_io, ot_receive_io, ot_send_io, sim_receive_io, sim_send_io,
    NaorPinkasOt, ObliviousTransfer, OtBatchState, OtSelect, TrustedSimOt,
};
pub use base::{
    commit_c, commit_c_io, ot12_receive, ot12_receive_io, ot12_receive_precommitted,
    ot12_receive_precommitted_io, ot12_send, ot12_send_io, ot12_send_precommitted,
    ot12_send_precommitted_io, receive_c, receive_c_io,
};
pub use error::OtError;
pub use ext::{iknp_receive, iknp_receive_io, iknp_send, iknp_send_io, random_choices, KAPPA};
pub use kn::{
    ot1n_receive, ot1n_receive_with_c, ot1n_receive_with_c_io, ot1n_send, ot1n_send_with_c,
    ot1n_send_with_c_io, otkn_receive, otkn_receive_with_c, otkn_receive_with_c_io, otkn_send,
    otkn_send_with_c, otkn_send_with_c_io,
};
pub use knx::{knx_receive_io, knx_send_io, IknpOt};
pub use offline::{ot_begin_send_precomputed_io, select_fingerprint, OtOfflineCommitment};
