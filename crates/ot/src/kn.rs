//! 1-out-of-N and k-out-of-N oblivious transfer.
//!
//! 1-out-of-N follows the classic Naor–Pinkas reduction: the sender draws
//! `⌈log₂ N⌉` key pairs, encrypts message `i` under the keys selected by
//! the bits of `i`, publishes all `N` ciphertexts, and runs one base
//! 1-out-of-2 OT per bit position so the receiver learns exactly the keys
//! for its index `σ` — hence can open only `c_σ`.
//!
//! k-out-of-N runs `k` independent 1-out-of-N queries with fresh key
//! material and fresh ciphertexts per query (reusing ciphertexts across
//! queries would let the receiver combine keys from different queries to
//! open unchosen messages). This matches the paper's use: the OMPE
//! receiver opens its `m` cover positions among the `M` submitted points.
//!
//! As in [`base`](crate::base), the `*_io` functions are the sans-I/O
//! role logic; the blocking functions drive them over an `Endpoint`.

use num_bigint::BigUint;
use ppcs_crypto::{ChaCha20, DhGroup, Sha256};
use ppcs_transport::{drive_blocking, Endpoint, FrameIo, ProtocolEngine};
use rand::RngCore;

use crate::base::{
    ot12_receive_io, ot12_receive_precommitted_io, ot12_send_io, ot12_send_precommitted_io,
};
use crate::error::{read_u64_le, OtError};

pub(crate) const KIND_OT1N_CIPHERTEXTS: u16 = 0x0200;

pub(crate) fn num_bits(n: usize) -> usize {
    debug_assert!(n >= 1);
    (usize::BITS - (n - 1).max(1).leading_zeros()) as usize
}

/// Derives the per-message pad key from the bit keys selected by `index`.
pub(crate) fn message_key(bit_keys: &[[u8; 32]], index: usize, query: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ppcs-ot1n-pad");
    h.update(&query.to_le_bytes());
    h.update(&(index as u64).to_le_bytes());
    for k in bit_keys {
        h.update(k);
    }
    h.finalize()
}

pub(crate) fn encrypt_message(key: &[u8; 32], index: usize, data: &mut [u8]) {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&(index as u64).to_le_bytes());
    ChaCha20::new(key, &nonce, 0).apply(data);
}

/// Sender side of one 1-out-of-N query.
///
/// `query` numbers the query within a session (domain separation);
/// `tag_base` is the base tag for the underlying 1-of-2 OTs.
///
/// # Errors
///
/// [`OtError::UnequalMessageLengths`] if messages differ in length, plus
/// transport/protocol failures.
pub fn ot1n_send(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    query: u64,
) -> Result<(), OtError> {
    ot1n_send_with_c(group, ep, rng, messages, query, None)
}

/// [`ot1n_send`] with an optional precommitted base-OT commitment `C`
/// (see [`commit_c`](crate::base::commit_c)); `None` draws and transmits
/// a fresh one per base OT.
///
/// # Errors
///
/// Same as [`ot1n_send`].
pub fn ot1n_send_with_c(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    query: u64,
    big_c: Option<&BigUint>,
) -> Result<(), OtError> {
    let mut engine = ProtocolEngine::new(|io| async move {
        ot1n_send_with_c_io(group, &io, rng, messages, query, big_c).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O sender role of one 1-out-of-N query (see
/// [`ot1n_send_with_c`]).
///
/// # Errors
///
/// Same as [`ot1n_send`].
pub async fn ot1n_send_with_c_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    query: u64,
    big_c: Option<&BigUint>,
) -> Result<(), OtError> {
    let n = messages.len();
    if n == 0 {
        return Err(OtError::Protocol("cannot transfer zero messages".into()));
    }
    let msg_len = messages[0].len();
    if messages.iter().any(|m| m.len() != msg_len) {
        return Err(OtError::UnequalMessageLengths);
    }
    let bits = num_bits(n);

    // Fresh key pairs for each bit position.
    let mut key_pairs = Vec::with_capacity(bits);
    for _ in 0..bits {
        let mut k0 = [0u8; 32];
        let mut k1 = [0u8; 32];
        rng.fill_bytes(&mut k0);
        rng.fill_bytes(&mut k1);
        key_pairs.push((k0, k1));
    }

    // Encrypt every message under the keys its index bits select.
    let mut ciphertexts = Vec::with_capacity(n);
    for (i, m) in messages.iter().enumerate() {
        let selected: Vec<[u8; 32]> = (0..bits)
            .map(|b| {
                if (i >> b) & 1 == 0 {
                    key_pairs[b].0
                } else {
                    key_pairs[b].1
                }
            })
            .collect();
        let key = message_key(&selected, i, query);
        let mut c = m.clone();
        encrypt_message(&key, i, &mut c);
        ciphertexts.push(c);
    }
    let mut blob = Vec::with_capacity(n * msg_len + 16);
    blob.extend_from_slice(&(n as u64).to_le_bytes());
    blob.extend_from_slice(&(msg_len as u64).to_le_bytes());
    for c in &ciphertexts {
        blob.extend_from_slice(c);
    }
    io.send_msg(KIND_OT1N_CIPHERTEXTS, &blob)?;

    // One base OT per bit position.
    for (b, (k0, k1)) in key_pairs.iter().enumerate() {
        let tag = query.wrapping_mul(1 << 16).wrapping_add(b as u64);
        match big_c {
            Some(c) => ot12_send_precommitted_io(group, io, rng, k0, k1, tag, c).await?,
            None => ot12_send_io(group, io, rng, k0, k1, tag).await?,
        }
    }
    Ok(())
}

/// Receiver side of one 1-out-of-N query; returns `m_index`.
///
/// # Errors
///
/// [`OtError::InvalidIndex`] if `index >= num_messages`, plus
/// transport/protocol failures.
pub fn ot1n_receive(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    num_messages: usize,
    index: usize,
    query: u64,
) -> Result<Vec<u8>, OtError> {
    ot1n_receive_with_c(group, ep, rng, num_messages, index, query, None)
}

/// [`ot1n_receive`] with an optional precommitted base-OT commitment
/// `C`; must match the sender's choice.
///
/// # Errors
///
/// Same as [`ot1n_receive`].
pub fn ot1n_receive_with_c(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    num_messages: usize,
    index: usize,
    query: u64,
    big_c: Option<&BigUint>,
) -> Result<Vec<u8>, OtError> {
    let mut engine = ProtocolEngine::new(|io| async move {
        ot1n_receive_with_c_io(group, &io, rng, num_messages, index, query, big_c).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O receiver role of one 1-out-of-N query (see
/// [`ot1n_receive_with_c`]).
///
/// # Errors
///
/// Same as [`ot1n_receive`].
pub async fn ot1n_receive_with_c_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    num_messages: usize,
    index: usize,
    query: u64,
    big_c: Option<&BigUint>,
) -> Result<Vec<u8>, OtError> {
    if index >= num_messages {
        return Err(OtError::InvalidIndex {
            index,
            num_messages,
        });
    }
    let blob: Vec<u8> = io.recv_msg(KIND_OT1N_CIPHERTEXTS).await?;
    if blob.len() < 16 {
        return Err(OtError::Protocol("ciphertext blob too short".into()));
    }
    let n = read_u64_le(&blob, 0, "ciphertext count")?;
    let msg_len = read_u64_le(&blob, 8, "ciphertext length")?;
    if n != num_messages {
        return Err(OtError::Protocol(format!(
            "sender transferred {n} messages, receiver expected {num_messages}"
        )));
    }
    if blob.len() != 16 + n * msg_len {
        return Err(OtError::Protocol("ciphertext blob length mismatch".into()));
    }

    let bits = num_bits(n);
    let mut keys = Vec::with_capacity(bits);
    for b in 0..bits {
        let tag = query.wrapping_mul(1 << 16).wrapping_add(b as u64);
        let choice = (index >> b) & 1 == 1;
        let key_bytes = match big_c {
            Some(c) => ot12_receive_precommitted_io(group, io, rng, choice, tag, c).await?,
            None => ot12_receive_io(group, io, rng, choice, tag).await?,
        };
        let key: [u8; 32] = key_bytes
            .try_into()
            .map_err(|_| OtError::Protocol("bit key has wrong length".into()))?;
        keys.push(key);
    }

    let key = message_key(&keys, index, query);
    let mut m = blob[16 + index * msg_len..16 + (index + 1) * msg_len].to_vec();
    encrypt_message(&key, index, &mut m);
    Ok(m)
}

/// Sender side of a k-out-of-N transfer (k fresh 1-out-of-N queries).
///
/// # Errors
///
/// Propagates the per-query errors of [`ot1n_send`].
pub fn otkn_send(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    k: usize,
) -> Result<(), OtError> {
    otkn_send_with_c(group, ep, rng, messages, k, None)
}

/// [`otkn_send`] with an optional precommitted base-OT commitment `C`
/// shared by every query of the transfer.
///
/// # Errors
///
/// Propagates the per-query errors of [`ot1n_send`].
pub fn otkn_send_with_c(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    k: usize,
    big_c: Option<&BigUint>,
) -> Result<(), OtError> {
    let mut engine = ProtocolEngine::new(|io| async move {
        otkn_send_with_c_io(group, &io, rng, messages, k, big_c).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O sender role of a k-out-of-N transfer (see
/// [`otkn_send_with_c`]).
///
/// # Errors
///
/// Propagates the per-query errors of [`ot1n_send`].
pub async fn otkn_send_with_c_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    messages: &[Vec<u8>],
    k: usize,
    big_c: Option<&BigUint>,
) -> Result<(), OtError> {
    for query in 0..k {
        ot1n_send_with_c_io(group, io, rng, messages, query as u64, big_c).await?;
    }
    Ok(())
}

/// Receiver side of a k-out-of-N transfer; returns the messages at
/// `indices`, in order.
///
/// # Errors
///
/// Propagates the per-query errors of [`ot1n_receive`].
pub fn otkn_receive(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    num_messages: usize,
    indices: &[usize],
) -> Result<Vec<Vec<u8>>, OtError> {
    otkn_receive_with_c(group, ep, rng, num_messages, indices, None)
}

/// [`otkn_receive`] with an optional precommitted base-OT commitment
/// `C` shared by every query of the transfer.
///
/// # Errors
///
/// Propagates the per-query errors of [`ot1n_receive`].
pub fn otkn_receive_with_c(
    group: &DhGroup,
    ep: &Endpoint,
    rng: &mut dyn RngCore,
    num_messages: usize,
    indices: &[usize],
    big_c: Option<&BigUint>,
) -> Result<Vec<Vec<u8>>, OtError> {
    let mut engine = ProtocolEngine::new(|io| async move {
        otkn_receive_with_c_io(group, &io, rng, num_messages, indices, big_c).await
    });
    drive_blocking(ep, &mut engine)
}

/// Sans-I/O receiver role of a k-out-of-N transfer (see
/// [`otkn_receive_with_c`]).
///
/// # Errors
///
/// Propagates the per-query errors of [`ot1n_receive`].
pub async fn otkn_receive_with_c_io(
    group: &DhGroup,
    io: &FrameIo,
    rng: &mut dyn RngCore,
    num_messages: usize,
    indices: &[usize],
    big_c: Option<&BigUint>,
) -> Result<Vec<Vec<u8>>, OtError> {
    let mut out = Vec::with_capacity(indices.len());
    for (query, &index) in indices.iter().enumerate() {
        out.push(
            ot1n_receive_with_c_io(group, io, rng, num_messages, index, query as u64, big_c)
                .await?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppcs_transport::run_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn messages(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
            .collect()
    }

    #[test]
    fn one_of_n_returns_selected() {
        let group = DhGroup::modp_768();
        for n in [1usize, 2, 3, 7, 16, 33] {
            let msgs = messages(n, 24);
            for index in [0, n / 2, n - 1] {
                let msgs_s = msgs.clone();
                let (_, got) = run_pair(
                    move |ep| {
                        let mut rng = StdRng::seed_from_u64(10);
                        ot1n_send(group, &ep, &mut rng, &msgs_s, 3).unwrap();
                    },
                    move |ep| {
                        let mut rng = StdRng::seed_from_u64(20);
                        ot1n_receive(group, &ep, &mut rng, n, index, 3).unwrap()
                    },
                );
                assert_eq!(got, msgs[index], "n={n}, index={index}");
            }
        }
    }

    #[test]
    fn k_of_n_returns_all_selected_in_order() {
        let group = DhGroup::modp_768();
        let n = 12;
        let msgs = messages(n, 16);
        let indices = vec![11usize, 0, 5, 5, 2];
        let msgs_s = msgs.clone();
        let idx = indices.clone();
        let (_, got) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                otkn_send(group, &ep, &mut rng, &msgs_s, 5).unwrap();
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                otkn_receive(group, &ep, &mut rng, n, &idx).unwrap()
            },
        );
        for (i, &index) in indices.iter().enumerate() {
            assert_eq!(got[i], msgs[index]);
        }
    }

    #[test]
    fn out_of_range_index_rejected() {
        let group = DhGroup::modp_768();
        let (_, res) = run_pair(
            move |_ep| {},
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                ot1n_receive(group, &ep, &mut rng, 4, 4, 0)
            },
        );
        assert_eq!(
            res.unwrap_err(),
            OtError::InvalidIndex {
                index: 4,
                num_messages: 4
            }
        );
    }

    #[test]
    fn mismatched_count_detected() {
        let group = DhGroup::modp_768();
        let msgs = messages(8, 8);
        let (_, res) = run_pair(
            move |ep| {
                let mut rng = StdRng::seed_from_u64(1);
                // Sender believes there are 8 messages...
                let _ = ot1n_send(group, &ep, &mut rng, &msgs, 0);
            },
            move |ep| {
                let mut rng = StdRng::seed_from_u64(2);
                // ...receiver expects 16.
                ot1n_receive(group, &ep, &mut rng, 16, 3, 0)
            },
        );
        assert!(matches!(res.unwrap_err(), OtError::Protocol(_)));
    }

    #[test]
    fn num_bits_is_correct() {
        assert_eq!(num_bits(1), 1);
        assert_eq!(num_bits(2), 1);
        assert_eq!(num_bits(3), 2);
        assert_eq!(num_bits(4), 2);
        assert_eq!(num_bits(5), 3);
        assert_eq!(num_bits(1024), 10);
        assert_eq!(num_bits(1025), 11);
    }
}
