//! Offline/online phase split for the OT engines.
//!
//! The only input-independent, non-trivial work on the OT sender's
//! critical path is the Naor–Pinkas base-OT commitment `C = g^c`: one
//! modular exponentiation in the MODP group, drawn once per batch and
//! transmitted before any transfer. [`OtOfflineCommitment::precompute`]
//! performs that exponentiation ahead of time (e.g. from a server's idle
//! loop) and [`ot_begin_send_precomputed_io`] replays it onto a live
//! session — the wire format is identical to the monolithic
//! [`ot_begin_send_io`](crate::ot_begin_send_io) path, so the receiver
//! cannot tell the difference.
//!
//! Every piece of offline material is tagged with a configuration
//! fingerprint ([`select_fingerprint`]): material precomputed under one
//! engine/group (say the 768-bit test group) is refused with
//! [`OtError::ConfigMismatch`] when a session under another
//! configuration (say the security-grade 2048-bit group) tries to
//! consume it.

use num_bigint::BigUint;
use ppcs_crypto::DhGroup;
use ppcs_telemetry::Phase;
use ppcs_transport::FrameIo;
use rand::RngCore;

use crate::api::{OtBatchState, OtSelect};
use crate::base::KIND_OT12_C;
use crate::error::OtError;

/// A stable 64-bit fingerprint of an OT engine configuration: the engine
/// kind in the high half, the group identity in the low half. Used to
/// bind precomputed material to the configuration that produced it.
pub fn select_fingerprint(sel: OtSelect) -> u64 {
    fn group_tag(group: &'static DhGroup) -> u64 {
        if core::ptr::eq(group, DhGroup::modp_2048()) {
            2048
        } else if core::ptr::eq(group, DhGroup::modp_768()) {
            768
        } else {
            1
        }
    }
    match sel {
        OtSelect::NaorPinkas { group } => (1 << 32) | group_tag(group),
        OtSelect::Iknp { group } => (2 << 32) | group_tag(group),
        OtSelect::TrustedSim => 3 << 32,
    }
}

/// Input-independent sender-side base-phase material for one OT batch,
/// produced off the critical path by [`precompute`](Self::precompute).
///
/// For [`OtSelect::NaorPinkas`] this holds the commitment `C = g^c`
/// (the modular exponentiation already paid); the extension and
/// simulator engines have no sender base phase, so their material is
/// fingerprint-only and consuming it is free.
#[derive(Clone, Debug)]
pub struct OtOfflineCommitment {
    fingerprint: u64,
    big_c: Option<BigUint>,
}

impl OtOfflineCommitment {
    /// Performs the input-independent sender base-phase work for `sel`.
    pub fn precompute(sel: OtSelect, rng: &mut dyn RngCore) -> Self {
        let big_c = match sel {
            OtSelect::NaorPinkas { group } => {
                let _span = ppcs_telemetry::span(Phase::Precompute);
                let c_exp = group.random_exponent(rng);
                Some(group.power_g(&c_exp))
            }
            OtSelect::Iknp { .. } | OtSelect::TrustedSim => None,
        };
        Self {
            fingerprint: select_fingerprint(sel),
            big_c,
        }
    }

    /// The configuration fingerprint this material was produced under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Online half of the sender base phase over precomputed material:
/// transmits the stored commitment instead of exponentiating inline.
/// Byte-identical on the wire to `ot_begin_send_io` with the same `C`.
///
/// # Errors
///
/// [`OtError::ConfigMismatch`] when `offline` was produced under a
/// different engine/group than `sel`; transport failures otherwise.
pub fn ot_begin_send_precomputed_io(
    sel: OtSelect,
    io: &FrameIo,
    offline: &OtOfflineCommitment,
) -> Result<OtBatchState, OtError> {
    let expected = select_fingerprint(sel);
    if offline.fingerprint != expected {
        return Err(OtError::ConfigMismatch {
            expected,
            actual: offline.fingerprint,
        });
    }
    match (sel, &offline.big_c) {
        (OtSelect::NaorPinkas { group }, Some(big_c)) => {
            let _span = ppcs_telemetry::span(Phase::BaseOt);
            io.send_msg(KIND_OT12_C, &group.element_bytes(big_c))?;
            Ok(OtBatchState::with_np_c(big_c.clone()))
        }
        // A Naor–Pinkas fingerprint always carries a commitment, so the
        // remaining arms are the base-phase-free engines.
        _ => Ok(OtBatchState::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ot_begin_receive_io, ot_receive_io, ot_send_io, NaorPinkasOt, TrustedSimOt};
    use crate::knx::IknpOt;
    use crate::ObliviousTransfer;
    use ppcs_transport::{run_engine_pair, ProtocolEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fingerprints_separate_engines_and_groups() {
        let fps = [
            select_fingerprint(NaorPinkasOt::new().select()),
            select_fingerprint(NaorPinkasOt::fast_insecure().select()),
            select_fingerprint(IknpOt::new().select()),
            select_fingerprint(IknpOt::fast_insecure().select()),
            select_fingerprint(TrustedSimOt::new().select()),
        ];
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn precomputed_commitment_matches_monolithic_transfers() {
        for sel in [
            NaorPinkasOt::fast_insecure().select(),
            IknpOt::fast_insecure().select(),
            TrustedSimOt::new().select(),
        ] {
            let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i.wrapping_mul(3); 6]).collect();
            let indices = vec![5usize, 2, 7];
            let mut offline_rng = StdRng::seed_from_u64(77);
            let offline = OtOfflineCommitment::precompute(sel, &mut offline_rng);
            let msgs_s = msgs.clone();
            let idx = indices.clone();
            let mut rng_s = StdRng::seed_from_u64(21);
            let mut rng_r = StdRng::seed_from_u64(22);
            let mut sender = ProtocolEngine::new(|io| async move {
                let state = ot_begin_send_precomputed_io(sel, &io, &offline)?;
                ot_send_io(sel, &state, &io, &mut rng_s, &msgs_s, 3).await
            });
            let mut receiver = ProtocolEngine::new(|io| async move {
                let state = ot_begin_receive_io(sel, &io).await?;
                ot_receive_io(sel, &state, &io, &mut rng_r, 8, &idx).await
            });
            let (sent, received) = run_engine_pair(&mut sender, &mut receiver).expect("pump");
            sent.expect("send ok");
            let got = received.expect("receive ok");
            for (g, &i) in got.iter().zip(&indices) {
                assert_eq!(g, &msgs[i], "engine {sel:?}, index {i}");
            }
        }
    }

    #[test]
    fn cross_config_consumption_is_refused() {
        let mut rng = StdRng::seed_from_u64(5);
        let offline =
            OtOfflineCommitment::precompute(NaorPinkasOt::fast_insecure().select(), &mut rng);
        let secure = NaorPinkasOt::new().select();
        let mut sender = ProtocolEngine::new(|io| async move {
            ot_begin_send_precomputed_io(secure, &io, &offline).map(|_| ())
        });
        let mut idle = ProtocolEngine::new(|_io| async move { Ok::<(), OtError>(()) });
        let (sent, _) = run_engine_pair(&mut sender, &mut idle).expect("pump");
        assert!(matches!(sent.unwrap_err(), OtError::ConfigMismatch { .. }));
    }
}
