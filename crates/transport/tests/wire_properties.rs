//! Property tests for the wire codec: every encodable value must
//! round-trip exactly, and the decoder must never panic on arbitrary
//! bytes.

use bytes::{Bytes, BytesMut};
use ppcs_math::Fp256;
use ppcs_transport::{decode_seq, encode_seq, Encodable, Frame};
use proptest::prelude::*;

fn roundtrip<T: Encodable + PartialEq + std::fmt::Debug>(v: &T) -> T {
    let mut out = BytesMut::new();
    v.encode(&mut out);
    let mut input = out.freeze();
    let decoded = T::decode(&mut input).expect("roundtrip decode");
    assert!(input.is_empty(), "decoder must consume everything");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn f64_roundtrip(v in any::<f64>()) {
        let back = roundtrip(&v);
        // NaN compares unequal; compare bit patterns.
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn bytes_roundtrip(v in prop::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn fp256_roundtrip(limbs in prop::array::uniform4(any::<u64>())) {
        let v = Fp256::from_raw(limbs);
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn pair_sequences_roundtrip(items in prop::collection::vec((any::<u64>(), any::<f64>()), 0..50)) {
        let mut out = BytesMut::new();
        encode_seq(&items, &mut out);
        let mut input = out.freeze();
        let decoded: Vec<(u64, f64)> = decode_seq(&mut input).expect("decode");
        prop_assert_eq!(decoded.len(), items.len());
        for (a, b) in decoded.iter().zip(&items) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Any of these may error, none may panic.
        let mut b = Bytes::from(bytes.clone());
        let _ = u64::decode(&mut b);
        let mut b = Bytes::from(bytes.clone());
        let _ = Vec::<u8>::decode(&mut b);
        let mut b = Bytes::from(bytes.clone());
        let _ = decode_seq::<f64>(&mut b);
        let mut b = Bytes::from(bytes.clone());
        let _ = Fp256::decode(&mut b);
        let mut b = Bytes::from(bytes);
        let _ = <(u64, f64)>::decode(&mut b);
    }

    #[test]
    fn frame_decode_rejects_trailing_garbage(v in any::<u64>(), extra in 1usize..16) {
        let mut out = BytesMut::new();
        v.encode(&mut out);
        out.extend_from_slice(&vec![0u8; extra]);
        let frame = Frame { kind: 1, payload: out.freeze() };
        prop_assert!(frame.decode_as::<u64>(1).is_err());
    }

    #[test]
    fn seq_roundtrips_and_every_truncation_errors(
        items in prop::collection::vec(any::<u64>(), 0..40),
        cut in any::<prop::sample::Index>(),
    ) {
        // Full encoding round-trips exactly…
        let mut out = BytesMut::new();
        encode_seq(&items, &mut out);
        let full = out.freeze();
        let mut input = full.clone();
        let decoded: Vec<u64> = decode_seq(&mut input).expect("full decode");
        prop_assert_eq!(&decoded, &items);
        prop_assert!(input.is_empty(), "decode_seq must consume everything");

        // …and every strict prefix is rejected, never panics, and never
        // fabricates elements past the truncation point.
        if full.len() > 1 {
            let cut_at = 1 + cut.index(full.len() - 1); // 1..full.len()
            let mut truncated = full.slice(0..cut_at);
            prop_assert!(
                decode_seq::<u64>(&mut truncated).is_err(),
                "truncated at {cut_at}/{} must error",
                full.len()
            );
        }
    }

    #[test]
    fn seq_rejects_adversarial_length_prefix(
        excess in 1u64..u64::MAX / 2,
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // A hostile count prefix larger than the bytes that follow must
        // be rejected up front, not drive an unbounded allocation.
        let mut out = BytesMut::new();
        let available = (body.len() / 8) as u64;
        let claimed = available + excess;
        out.extend_from_slice(&claimed.to_le_bytes());
        out.extend_from_slice(&body);
        let mut input = out.freeze();
        prop_assert!(decode_seq::<u64>(&mut input).is_err());
    }

    #[test]
    fn frame_encodable_roundtrip(kind in any::<u16>(), payload in prop::collection::vec(any::<u8>(), 0..100)) {
        let frame = Frame { kind, payload: Bytes::from(payload) };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn frame_decode_never_panics_on_truncation(kind in any::<u16>(), payload in prop::collection::vec(any::<u8>(), 0..50), cut in any::<prop::sample::Index>()) {
        let frame = Frame { kind, payload: Bytes::from(payload) };
        let mut out = BytesMut::new();
        frame.encode(&mut out);
        let full = out.freeze();
        let cut_at = cut.index(full.len());
        let mut truncated = full.slice(0..cut_at);
        prop_assert!(Frame::decode(&mut truncated).is_err());
    }
}
