//! TCP backend for [`Endpoint`](crate::Endpoint): the same protocols
//! that run over in-memory channels run across real sockets.
//!
//! Wire framing: `kind: u16 LE | payload_len: u32 LE | payload`, matching
//! the byte accounting of [`Frame::wire_len`](crate::Frame::wire_len).

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;

use crate::channel::Frame;
use crate::error::TransportError;

/// Maximum accepted payload size (64 MiB) — guards against a corrupt or
/// hostile length prefix allocating unbounded memory.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A framed TCP connection carrying [`Frame`]s.
#[derive(Debug)]
pub(crate) struct TcpConnection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpConnection {
    pub(crate) fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(io_err)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let writer = BufWriter::new(stream);
        Ok(Self { reader, writer })
    }

    pub(crate) fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let len: u32 = frame
            .payload
            .len()
            .try_into()
            .map_err(|_| TransportError::Decode("frame payload exceeds u32 length".into()))?;
        if len > MAX_PAYLOAD {
            return Err(TransportError::Decode(format!(
                "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
            )));
        }
        self.writer
            .write_all(&frame.kind.to_le_bytes())
            .and_then(|()| self.writer.write_all(&len.to_le_bytes()))
            .and_then(|()| self.writer.write_all(&frame.payload))
            .and_then(|()| self.writer.flush())
            .map_err(io_err)
    }

    pub(crate) fn recv(&mut self) -> Result<Frame, TransportError> {
        let mut header = [0u8; 6];
        self.reader.read_exact(&mut header).map_err(io_err)?;
        let kind = u16::from_le_bytes(header[0..2].try_into().expect("2 bytes"));
        let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(TransportError::Decode(format!(
                "peer announced a {len}-byte frame, cap is {MAX_PAYLOAD}"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload).map_err(io_err)?;
        Ok(Frame {
            kind,
            payload: Bytes::from(payload),
        })
    }

    pub(crate) fn set_read_timeout(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<(), TransportError> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(io_err)
    }
}

fn io_err(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => TransportError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::ConnectionAborted => TransportError::Disconnected,
        _ => TransportError::Decode(format!("socket error: {e}")),
    }
}

/// Connects to a listening ppcs peer.
///
/// # Errors
///
/// [`TransportError::Decode`] wrapping the underlying socket error.
pub fn tcp_connect<A: ToSocketAddrs>(addr: A) -> Result<crate::Endpoint, TransportError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    crate::Endpoint::from_tcp(stream)
}

/// Accepts one inbound connection on `listener`.
///
/// # Errors
///
/// [`TransportError::Decode`] wrapping the underlying socket error.
pub fn tcp_accept(listener: &TcpListener) -> Result<crate::Endpoint, TransportError> {
    let (stream, _peer) = listener.accept().map_err(io_err)?;
    crate::Endpoint::from_tcp(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endpoint;

    fn tcp_pair() -> (Endpoint, Endpoint) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let join = std::thread::spawn(move || tcp_connect(addr).expect("connect"));
        let server = tcp_accept(&listener).expect("accept");
        let client = join.join().expect("client thread");
        (server, client)
    }

    #[test]
    fn tcp_roundtrip() {
        let (server, client) = tcp_pair();
        client.send_msg(3, &42u64).expect("send");
        assert_eq!(server.recv_msg::<u64>(3).expect("recv"), 42);
        server.send_msg(4, &vec![1u8, 2, 3]).expect("send");
        assert_eq!(client.recv_msg::<Vec<u8>>(4).expect("recv"), vec![1, 2, 3]);
    }

    #[test]
    fn tcp_counts_traffic() {
        let (server, client) = tcp_pair();
        client.send_msg(1, &7u64).expect("send");
        let _ = server.recv().expect("recv");
        assert_eq!(client.stats().bytes_sent, 6 + 8);
        assert_eq!(server.stats().bytes_received, 6 + 8);
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (server, client) = tcp_pair();
        drop(client);
        assert_eq!(server.recv().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn tcp_timeout_honored() {
        let (mut server, _client) = tcp_pair();
        server.set_recv_timeout(Some(Duration::from_millis(20)));
        assert_eq!(server.recv().unwrap_err(), TransportError::Timeout);
    }

    #[test]
    fn tcp_large_frame() {
        let (server, client) = tcp_pair();
        let big = vec![0xabu8; 1 << 20];
        client.send_msg(9, &big).expect("send");
        assert_eq!(server.recv_msg::<Vec<u8>>(9).expect("recv"), big);
    }
}
