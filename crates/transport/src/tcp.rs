//! TCP backend for [`Endpoint`](crate::Endpoint): the same protocols
//! that run over in-memory channels run across real sockets.
//!
//! Wire framing: `kind: u16 LE | payload_len: u32 LE | payload`, matching
//! the byte accounting of [`Frame::wire_len`](crate::Frame::wire_len).

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;

use crate::channel::Frame;
use crate::error::TransportError;

/// Maximum accepted payload size (64 MiB) — guards against a corrupt or
/// hostile length prefix allocating unbounded memory.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A framed TCP connection carrying [`Frame`]s.
#[derive(Debug)]
pub(crate) struct TcpConnection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The read timeout last applied to the socket, so the per-receive
    /// [`set_read_timeout`](Self::set_read_timeout) only pays a syscall
    /// when [`Endpoint::set_recv_timeout`](crate::Endpoint::set_recv_timeout)
    /// actually changed the deadline. `None` = never applied.
    applied_read_timeout: Option<Option<Duration>>,
}

impl TcpConnection {
    pub(crate) fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(io_err)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let writer = BufWriter::new(stream);
        Ok(Self {
            reader,
            writer,
            applied_read_timeout: None,
        })
    }

    pub(crate) fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let len: u32 = frame
            .payload
            .len()
            .try_into()
            .map_err(|_| TransportError::Decode("frame payload exceeds u32 length".into()))?;
        if len > MAX_PAYLOAD {
            return Err(TransportError::Decode(format!(
                "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
            )));
        }
        self.writer
            .write_all(&frame.kind.to_le_bytes())
            .and_then(|()| self.writer.write_all(&len.to_le_bytes()))
            .and_then(|()| self.writer.write_all(&frame.payload))
            .and_then(|()| self.writer.flush())
            .map_err(io_err)
    }

    pub(crate) fn recv(&mut self) -> Result<Frame, TransportError> {
        let mut header = [0u8; 6];
        self.reader.read_exact(&mut header).map_err(io_err)?;
        let kind = u16::from_le_bytes(header[0..2].try_into().expect("2 bytes"));
        let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(TransportError::Decode(format!(
                "peer announced a {len}-byte frame, cap is {MAX_PAYLOAD}"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload).map_err(io_err)?;
        Ok(Frame {
            kind,
            payload: Bytes::from(payload),
        })
    }

    /// Applies the endpoint's receive deadline to the socket.
    ///
    /// `std` rejects a zero read timeout, so `Some(0)` is clamped to the
    /// smallest representable deadline instead of erroring — callers get
    /// "time out as fast as the OS allows" semantics.
    pub(crate) fn set_read_timeout(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<(), TransportError> {
        let effective = match timeout {
            Some(d) if d.is_zero() => Some(Duration::from_nanos(1)),
            other => other,
        };
        if self.applied_read_timeout == Some(effective) {
            return Ok(());
        }
        self.reader
            .get_ref()
            .set_read_timeout(effective)
            .map_err(io_err)?;
        self.applied_read_timeout = Some(effective);
        Ok(())
    }
}

/// Classifies an I/O error from a **blocking** socket.
///
/// ## `WouldBlock` vs `TimedOut` normalization
///
/// On a blocking socket armed with a read deadline (`SO_RCVTIMEO`), an
/// expired deadline is reported as `WouldBlock` on Linux/BSD and
/// `TimedOut` on Windows — the *same* condition under two names — so
/// both map to [`TransportError::Timeout`] here and `Timeout` always
/// means "the configured receive deadline elapsed".
///
/// On a **nonblocking** socket the same `WouldBlock` code means merely
/// "no data yet", which is not an error at all, let alone a timeout.
/// [`NbConn`] therefore intercepts `WouldBlock` before classification
/// (see [`nb_would_block`]) and surfaces `Timeout` only when the async
/// driver's timer wheel says the per-receive deadline truly elapsed —
/// keeping `TransportError::Timeout` identical in meaning across the
/// blocking and async paths.
fn io_err(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => TransportError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::ConnectionAborted => TransportError::Disconnected,
        _ => TransportError::Io(e.to_string()),
    }
}

/// Whether `e` is the nonblocking "no data yet" condition that must
/// **not** be classified as a timeout. `Interrupted` is grouped here
/// because the right response is the same: try again later.
fn nb_would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
    )
}

/// A **nonblocking** framed TCP connection for the async serving path:
/// an incremental frame parser on the read side and a flush-on-ready
/// backpressure queue on the write side, speaking the exact wire format
/// of the blocking [`TcpConnection`] (`kind u16 LE | len u32 LE |
/// payload`, coalesced batches under
/// [`KIND_COALESCED`](crate::KIND_COALESCED)).
///
/// All methods are try-style and never block: reads drain the socket to
/// `WouldBlock` (as edge-triggered registration requires), writes queue
/// and flush as far as the kernel accepts. Per the normalization
/// documented on [`io_err`], `WouldBlock` here is "not ready" — a
/// [`TransportError::Timeout`] can only be imposed from above by the
/// async driver's timer wheel.
#[derive(Debug)]
pub(crate) struct NbConn {
    stream: TcpStream,
    /// Raw inbound bytes not yet parsed into frames.
    read_buf: Vec<u8>,
    /// Parsed logical frames (coalesced batches already unpacked),
    /// ready for delivery.
    parsed: std::collections::VecDeque<Frame>,
    /// Encoded outbound bytes the kernel has not accepted yet;
    /// `write_pos` marks the flushed prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// The peer half-closed the stream (read side saw EOF).
    eof: bool,
    /// A fatal framing/socket failure; sticky, reported from every
    /// subsequent call.
    failed: Option<TransportError>,
    stats: std::sync::Arc<crate::channel::SharedStats>,
    /// When the current `EPOLLOUT` stall began: set on the first
    /// backpressured flush, cleared when the queue fully drains.
    stall_since: Option<std::time::Instant>,
    /// Duration of the most recently *completed* stall, waiting for
    /// [`take_stall_ns`](Self::take_stall_ns) to collect it.
    completed_stall_ns: Option<u64>,
}

impl NbConn {
    /// Chunk size for socket reads.
    const READ_CHUNK: usize = 64 * 1024;

    pub(crate) fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(io_err)?;
        stream.set_nonblocking(true).map_err(io_err)?;
        Ok(Self {
            stream,
            read_buf: Vec::new(),
            parsed: std::collections::VecDeque::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            eof: false,
            failed: None,
            stats: std::sync::Arc::new(crate::channel::SharedStats::default()),
            stall_since: None,
            completed_stall_ns: None,
        })
    }

    pub(crate) fn fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// Snapshot of wire-traffic counters (sends counted when queued,
    /// matching the blocking endpoint's count-at-`send` accounting).
    pub(crate) fn stats(&self) -> crate::channel::TrafficStats {
        self.stats.snapshot()
    }

    /// Reads everything the socket has (to `WouldBlock`) and parses
    /// complete frames. Call on every readable event — edge-triggered
    /// registration delivers no second chance.
    pub(crate) fn fill(&mut self) -> Result<(), TransportError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let mut chunk = [0u8; Self::READ_CHUNK];
        loop {
            match std::io::Read::read(&mut self.stream, &mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if nb_would_block(&e) => break,
                Err(e) => {
                    // A reset/abort on the read side is a disconnect,
                    // never a timeout: classify with the blocking rules
                    // minus the WouldBlock arm filtered above.
                    let err = io_err(e);
                    self.failed = Some(err.clone());
                    return Err(err);
                }
            }
        }
        self.parse_frames()
    }

    /// Parses as many complete frames as the buffer holds.
    fn parse_frames(&mut self) -> Result<(), TransportError> {
        let mut pos = 0usize;
        while self.read_buf.len() - pos >= Frame::HEADER_LEN {
            let kind = u16::from_le_bytes(self.read_buf[pos..pos + 2].try_into().expect("2 bytes"));
            let len =
                u32::from_le_bytes(self.read_buf[pos + 2..pos + 6].try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                let err = TransportError::Decode(format!(
                    "peer announced a {len}-byte frame, cap is {MAX_PAYLOAD}"
                ));
                self.failed = Some(err.clone());
                return Err(err);
            }
            let total = Frame::HEADER_LEN + len as usize;
            if self.read_buf.len() - pos < total {
                break;
            }
            let payload =
                Bytes::copy_from_slice(&self.read_buf[pos + Frame::HEADER_LEN..pos + total]);
            pos += total;
            let frame = Frame { kind, payload };
            self.stats.record_received(kind, frame.wire_len() as u64);
            if kind == crate::channel::KIND_COALESCED {
                match crate::channel::uncoalesce(&frame.payload) {
                    Ok(batch) => self.parsed.extend(batch),
                    Err(e) => {
                        self.failed = Some(e.clone());
                        return Err(e);
                    }
                }
            } else {
                self.parsed.push_back(frame);
            }
        }
        if pos == self.read_buf.len() {
            self.read_buf.clear();
        } else if pos > 0 {
            self.read_buf.drain(..pos);
        }
        Ok(())
    }

    /// Pops the next parsed logical frame: `Ok(Some)` on a frame,
    /// `Ok(None)` when the peer simply has not sent one yet,
    /// `Err(Disconnected)` once the stream is drained *and* closed.
    pub(crate) fn try_recv(&mut self) -> Result<Option<Frame>, TransportError> {
        if let Some(f) = self.parsed.pop_front() {
            return Ok(Some(f));
        }
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.eof {
            // A partial trailing frame is a truncated stream, exactly
            // what the blocking path's read_exact reports.
            return Err(TransportError::Disconnected);
        }
        Ok(None)
    }

    /// Encodes `frame` onto the write queue and counts it as sent
    /// (matching the blocking endpoint, which counts at `send` time).
    /// Call [`flush`](Self::flush) to move bytes toward the kernel.
    pub(crate) fn queue(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let len: u32 = frame
            .payload
            .len()
            .try_into()
            .map_err(|_| TransportError::Decode("frame payload exceeds u32 length".into()))?;
        if len > MAX_PAYLOAD {
            return Err(TransportError::Decode(format!(
                "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
            )));
        }
        self.write_buf.extend_from_slice(&frame.kind.to_le_bytes());
        self.write_buf.extend_from_slice(&len.to_le_bytes());
        self.write_buf.extend_from_slice(&frame.payload);
        self.stats.record_sent(frame.kind, frame.wire_len() as u64);
        Ok(())
    }

    /// Writes queued bytes until the kernel pushes back. `Ok(true)`
    /// when the queue fully drained, `Ok(false)` when backpressure
    /// remains and the next writable event must resume the flush.
    pub(crate) fn flush(&mut self) -> Result<bool, TransportError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        while self.write_pos < self.write_buf.len() {
            match std::io::Write::write(&mut self.stream, &self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    let err = TransportError::Disconnected;
                    self.failed = Some(err.clone());
                    return Err(err);
                }
                Ok(n) => self.write_pos += n,
                Err(e) if nb_would_block(&e) => {
                    // The kernel pushed back: an EPOLLOUT stall begins
                    // (or continues) until the queue fully drains.
                    self.stall_since.get_or_insert_with(std::time::Instant::now);
                    return Ok(false);
                }
                Err(e) => {
                    let err = io_err(e);
                    self.failed = Some(err.clone());
                    return Err(err);
                }
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        if let Some(since) = self.stall_since.take() {
            self.completed_stall_ns = Some(since.elapsed().as_nanos() as u64);
        }
        Ok(true)
    }

    /// Whether backpressured bytes are waiting for a writable event.
    pub(crate) fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Bytes queued but not yet accepted by the kernel — the
    /// write-buffer depth health metric.
    pub(crate) fn pending_write_bytes(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Collects the duration of the most recently completed `EPOLLOUT`
    /// stall, once per stall (`None` when no stall finished since the
    /// last call).
    pub(crate) fn take_stall_ns(&mut self) -> Option<u64> {
        self.completed_stall_ns.take()
    }

    /// Whether parsed frames are ready for immediate delivery (no
    /// readiness event required).
    pub(crate) fn has_buffered(&self) -> bool {
        !self.parsed.is_empty()
    }
}

/// Connects to a listening ppcs peer.
///
/// # Errors
///
/// [`TransportError::Io`] wrapping the underlying socket error.
pub fn tcp_connect<A: ToSocketAddrs>(addr: A) -> Result<crate::Endpoint, TransportError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    crate::Endpoint::from_tcp(stream)
}

/// Accepts one inbound connection on `listener`.
///
/// # Errors
///
/// [`TransportError::Io`] wrapping the underlying socket error.
pub fn tcp_accept(listener: &TcpListener) -> Result<crate::Endpoint, TransportError> {
    let (stream, _peer) = listener.accept().map_err(io_err)?;
    crate::Endpoint::from_tcp(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endpoint;

    fn tcp_pair() -> (Endpoint, Endpoint) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let join = std::thread::spawn(move || tcp_connect(addr).expect("connect"));
        let server = tcp_accept(&listener).expect("accept");
        let client = join.join().expect("client thread");
        (server, client)
    }

    #[test]
    fn tcp_roundtrip() {
        let (server, client) = tcp_pair();
        client.send_msg(3, &42u64).expect("send");
        assert_eq!(server.recv_msg::<u64>(3).expect("recv"), 42);
        server.send_msg(4, &vec![1u8, 2, 3]).expect("send");
        assert_eq!(client.recv_msg::<Vec<u8>>(4).expect("recv"), vec![1, 2, 3]);
    }

    #[test]
    fn tcp_counts_traffic() {
        let (server, client) = tcp_pair();
        client.send_msg(1, &7u64).expect("send");
        let _ = server.recv().expect("recv");
        assert_eq!(client.stats().bytes_sent, 6 + 8);
        assert_eq!(server.stats().bytes_received, 6 + 8);
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (server, client) = tcp_pair();
        drop(client);
        assert_eq!(server.recv().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn tcp_timeout_honored() {
        let (server, _client) = tcp_pair();
        server.set_recv_timeout(Some(Duration::from_millis(20)));
        assert_eq!(server.recv().unwrap_err(), TransportError::Timeout);
    }

    #[test]
    fn tcp_timeout_can_be_retuned_between_receives() {
        let (server, client) = tcp_pair();
        // A short deadline times out, then a longer one set on the same
        // connection lets a late frame through — the cached timeout must
        // be re-applied when the endpoint deadline changes.
        server.set_recv_timeout(Some(Duration::from_millis(10)));
        assert_eq!(server.recv().unwrap_err(), TransportError::Timeout);
        server.set_recv_timeout(Some(Duration::from_secs(5)));
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            client.send_msg(1, &99u64).expect("send");
            client
        });
        assert_eq!(server.recv_msg::<u64>(1).expect("recv"), 99);
        drop(sender.join().expect("sender thread"));
    }

    #[test]
    fn tcp_zero_timeout_is_clamped_not_rejected() {
        let (server, _client) = tcp_pair();
        server.set_recv_timeout(Some(Duration::ZERO));
        // std's set_read_timeout errors on a zero duration; the clamp
        // turns it into an immediate Timeout instead of an Io error.
        assert_eq!(server.recv().unwrap_err(), TransportError::Timeout);
    }

    #[test]
    fn generic_socket_errors_map_to_io_variant() {
        let err = io_err(std::io::Error::other("weird NIC failure"));
        assert!(matches!(err, TransportError::Io(_)), "got {err:?}");
        assert_eq!(
            io_err(std::io::Error::from(std::io::ErrorKind::TimedOut)),
            TransportError::Timeout
        );
        assert_eq!(
            io_err(std::io::Error::from(std::io::ErrorKind::ConnectionReset)),
            TransportError::Disconnected
        );
    }

    #[test]
    fn tcp_large_frame() {
        let (server, client) = tcp_pair();
        let big = vec![0xabu8; 1 << 20];
        client.send_msg(9, &big).expect("send");
        assert_eq!(server.recv_msg::<Vec<u8>>(9).expect("recv"), big);
    }

    fn raw_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (server, client)
    }

    #[test]
    fn nb_conn_never_reports_timeout_for_would_block() {
        // Satellite semantics: on the nonblocking path, "no data yet"
        // is Ok(None), not TransportError::Timeout — a Timeout can only
        // come from the async driver's timer wheel.
        let (server, _client) = raw_pair();
        let mut nb = NbConn::new(server).expect("nb conn");
        nb.fill().expect("fill on an empty socket is not an error");
        assert_eq!(nb.try_recv().expect("no frame is not an error"), None);
        assert!(nb.flush().expect("empty flush"), "nothing queued");
    }

    #[test]
    fn nb_conn_parses_incrementally_across_partial_reads() {
        let (server, mut client) = raw_pair();
        let mut nb = NbConn::new(server).expect("nb conn");
        let frame = Frame::encode(5, &vec![7u8; 1000]);
        let mut wire = Vec::new();
        wire.extend_from_slice(&frame.kind.to_le_bytes());
        wire.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&frame.payload);
        // Feed the frame in two halves with a drain attempt in between.
        use std::io::Write;
        client.write_all(&wire[..500]).expect("first half");
        client.flush().expect("flush");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while nb.read_buf.len() < 500 {
            nb.fill().expect("fill");
            assert!(std::time::Instant::now() < deadline, "first half lost");
        }
        assert_eq!(nb.try_recv().expect("partial"), None, "incomplete frame");
        client.write_all(&wire[500..]).expect("second half");
        client.flush().expect("flush");
        let got = loop {
            nb.fill().expect("fill");
            if let Some(f) = nb.try_recv().expect("recv") {
                break f;
            }
            assert!(std::time::Instant::now() < deadline, "frame never parsed");
        };
        assert_eq!(got, frame);
        assert_eq!(nb.stats().bytes_received, frame.wire_len() as u64);
    }

    #[test]
    fn nb_conn_unpacks_coalesced_batches() {
        let (server, client) = raw_pair();
        let mut nb = NbConn::new(server).expect("nb conn");
        let sender = crate::Endpoint::from_tcp(client).expect("endpoint");
        let frames = vec![Frame::encode(2, &1u64), Frame::encode(2, &2u64)];
        sender.send_coalesced(&frames).expect("send");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < 2 {
            nb.fill().expect("fill");
            while let Some(f) = nb.try_recv().expect("recv") {
                got.push(f);
            }
            assert!(std::time::Instant::now() < deadline, "batch never arrived");
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn nb_conn_detects_disconnect_after_drain() {
        let (server, client) = raw_pair();
        let mut nb = NbConn::new(server).expect("nb conn");
        let sender = crate::Endpoint::from_tcp(client).expect("endpoint");
        sender.send(Frame::encode(1, &9u64)).expect("send");
        drop(sender);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        // The queued frame is still delivered before the EOF surfaces.
        let got = loop {
            nb.fill().expect("fill");
            if let Some(f) = nb.try_recv().expect("recv") {
                break f;
            }
            assert!(std::time::Instant::now() < deadline, "frame never arrived");
        };
        assert_eq!(got.decode_as::<u64>(1).expect("decode"), 9);
        loop {
            nb.fill().expect("fill past EOF is not an error");
            match nb.try_recv() {
                Err(TransportError::Disconnected) => break,
                Ok(None) => {}
                other => panic!("expected Disconnected, got {other:?}"),
            }
            assert!(std::time::Instant::now() < deadline, "EOF never surfaced");
        }
    }

    #[test]
    fn nb_conn_rejects_oversized_announcements_stickily() {
        let (server, mut client) = raw_pair();
        let mut nb = NbConn::new(server).expect("nb conn");
        use std::io::Write;
        let mut header = Vec::new();
        header.extend_from_slice(&7u16.to_le_bytes());
        header.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        client.write_all(&header).expect("write");
        client.flush().expect("flush");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match nb.fill() {
                Err(TransportError::Decode(msg)) => {
                    assert!(msg.contains("cap"), "names the cap: {msg}");
                    break;
                }
                Ok(()) => assert!(std::time::Instant::now() < deadline, "never rejected"),
                Err(e) => panic!("expected Decode, got {e:?}"),
            }
        }
        // Sticky: every subsequent call reports the same failure.
        assert!(matches!(nb.try_recv(), Err(TransportError::Decode(_))));
        assert!(matches!(nb.flush(), Err(TransportError::Decode(_))));
    }

    #[test]
    fn nb_conn_flush_reports_backpressure_and_resumes() {
        let (server, client) = raw_pair();
        let mut nb = NbConn::new(server).expect("nb conn");
        // Shrink buffers (best effort) and queue far more than the
        // kernel will take in one gulp so flush must backpressure.
        let big = Frame::encode(3, &vec![0x5au8; 4 << 20]);
        nb.queue(&big).expect("queue");
        assert!(nb.wants_write());
        let receiver = crate::Endpoint::from_tcp(client).expect("endpoint");
        let reader = std::thread::spawn(move || {
            receiver.set_recv_timeout(Some(Duration::from_secs(10)));
            receiver.recv().expect("receive the big frame")
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !nb.flush().expect("flush") {
            assert!(std::time::Instant::now() < deadline, "flush never drained");
        }
        assert!(!nb.wants_write());
        let got = reader.join().expect("reader thread");
        assert_eq!(got, big);
        assert_eq!(nb.stats().bytes_sent, big.wire_len() as u64);
    }
}
