//! TCP backend for [`Endpoint`](crate::Endpoint): the same protocols
//! that run over in-memory channels run across real sockets.
//!
//! Wire framing: `kind: u16 LE | payload_len: u32 LE | payload`, matching
//! the byte accounting of [`Frame::wire_len`](crate::Frame::wire_len).

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;

use crate::channel::Frame;
use crate::error::TransportError;

/// Maximum accepted payload size (64 MiB) — guards against a corrupt or
/// hostile length prefix allocating unbounded memory.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A framed TCP connection carrying [`Frame`]s.
#[derive(Debug)]
pub(crate) struct TcpConnection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The read timeout last applied to the socket, so the per-receive
    /// [`set_read_timeout`](Self::set_read_timeout) only pays a syscall
    /// when [`Endpoint::set_recv_timeout`](crate::Endpoint::set_recv_timeout)
    /// actually changed the deadline. `None` = never applied.
    applied_read_timeout: Option<Option<Duration>>,
}

impl TcpConnection {
    pub(crate) fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(io_err)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let writer = BufWriter::new(stream);
        Ok(Self {
            reader,
            writer,
            applied_read_timeout: None,
        })
    }

    pub(crate) fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let len: u32 = frame
            .payload
            .len()
            .try_into()
            .map_err(|_| TransportError::Decode("frame payload exceeds u32 length".into()))?;
        if len > MAX_PAYLOAD {
            return Err(TransportError::Decode(format!(
                "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
            )));
        }
        self.writer
            .write_all(&frame.kind.to_le_bytes())
            .and_then(|()| self.writer.write_all(&len.to_le_bytes()))
            .and_then(|()| self.writer.write_all(&frame.payload))
            .and_then(|()| self.writer.flush())
            .map_err(io_err)
    }

    pub(crate) fn recv(&mut self) -> Result<Frame, TransportError> {
        let mut header = [0u8; 6];
        self.reader.read_exact(&mut header).map_err(io_err)?;
        let kind = u16::from_le_bytes(header[0..2].try_into().expect("2 bytes"));
        let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(TransportError::Decode(format!(
                "peer announced a {len}-byte frame, cap is {MAX_PAYLOAD}"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload).map_err(io_err)?;
        Ok(Frame {
            kind,
            payload: Bytes::from(payload),
        })
    }

    /// Applies the endpoint's receive deadline to the socket.
    ///
    /// `std` rejects a zero read timeout, so `Some(0)` is clamped to the
    /// smallest representable deadline instead of erroring — callers get
    /// "time out as fast as the OS allows" semantics.
    pub(crate) fn set_read_timeout(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<(), TransportError> {
        let effective = match timeout {
            Some(d) if d.is_zero() => Some(Duration::from_nanos(1)),
            other => other,
        };
        if self.applied_read_timeout == Some(effective) {
            return Ok(());
        }
        self.reader
            .get_ref()
            .set_read_timeout(effective)
            .map_err(io_err)?;
        self.applied_read_timeout = Some(effective);
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => TransportError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::ConnectionAborted => TransportError::Disconnected,
        _ => TransportError::Io(e.to_string()),
    }
}

/// Connects to a listening ppcs peer.
///
/// # Errors
///
/// [`TransportError::Io`] wrapping the underlying socket error.
pub fn tcp_connect<A: ToSocketAddrs>(addr: A) -> Result<crate::Endpoint, TransportError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    crate::Endpoint::from_tcp(stream)
}

/// Accepts one inbound connection on `listener`.
///
/// # Errors
///
/// [`TransportError::Io`] wrapping the underlying socket error.
pub fn tcp_accept(listener: &TcpListener) -> Result<crate::Endpoint, TransportError> {
    let (stream, _peer) = listener.accept().map_err(io_err)?;
    crate::Endpoint::from_tcp(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endpoint;

    fn tcp_pair() -> (Endpoint, Endpoint) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let join = std::thread::spawn(move || tcp_connect(addr).expect("connect"));
        let server = tcp_accept(&listener).expect("accept");
        let client = join.join().expect("client thread");
        (server, client)
    }

    #[test]
    fn tcp_roundtrip() {
        let (server, client) = tcp_pair();
        client.send_msg(3, &42u64).expect("send");
        assert_eq!(server.recv_msg::<u64>(3).expect("recv"), 42);
        server.send_msg(4, &vec![1u8, 2, 3]).expect("send");
        assert_eq!(client.recv_msg::<Vec<u8>>(4).expect("recv"), vec![1, 2, 3]);
    }

    #[test]
    fn tcp_counts_traffic() {
        let (server, client) = tcp_pair();
        client.send_msg(1, &7u64).expect("send");
        let _ = server.recv().expect("recv");
        assert_eq!(client.stats().bytes_sent, 6 + 8);
        assert_eq!(server.stats().bytes_received, 6 + 8);
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (server, client) = tcp_pair();
        drop(client);
        assert_eq!(server.recv().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn tcp_timeout_honored() {
        let (server, _client) = tcp_pair();
        server.set_recv_timeout(Some(Duration::from_millis(20)));
        assert_eq!(server.recv().unwrap_err(), TransportError::Timeout);
    }

    #[test]
    fn tcp_timeout_can_be_retuned_between_receives() {
        let (server, client) = tcp_pair();
        // A short deadline times out, then a longer one set on the same
        // connection lets a late frame through — the cached timeout must
        // be re-applied when the endpoint deadline changes.
        server.set_recv_timeout(Some(Duration::from_millis(10)));
        assert_eq!(server.recv().unwrap_err(), TransportError::Timeout);
        server.set_recv_timeout(Some(Duration::from_secs(5)));
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            client.send_msg(1, &99u64).expect("send");
            client
        });
        assert_eq!(server.recv_msg::<u64>(1).expect("recv"), 99);
        drop(sender.join().expect("sender thread"));
    }

    #[test]
    fn tcp_zero_timeout_is_clamped_not_rejected() {
        let (server, _client) = tcp_pair();
        server.set_recv_timeout(Some(Duration::ZERO));
        // std's set_read_timeout errors on a zero duration; the clamp
        // turns it into an immediate Timeout instead of an Io error.
        assert_eq!(server.recv().unwrap_err(), TransportError::Timeout);
    }

    #[test]
    fn generic_socket_errors_map_to_io_variant() {
        let err = io_err(std::io::Error::other("weird NIC failure"));
        assert!(matches!(err, TransportError::Io(_)), "got {err:?}");
        assert_eq!(
            io_err(std::io::Error::from(std::io::ErrorKind::TimedOut)),
            TransportError::Timeout
        );
        assert_eq!(
            io_err(std::io::Error::from(std::io::ErrorKind::ConnectionReset)),
            TransportError::Disconnected
        );
    }

    #[test]
    fn tcp_large_frame() {
        let (server, client) = tcp_pair();
        let big = vec![0xabu8; 1 << 20];
        client.send_msg(9, &big).expect("send");
        assert_eq!(server.recv_msg::<Vec<u8>>(9).expect("recv"), big);
    }
}
