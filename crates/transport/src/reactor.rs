//! A hand-rolled edge-triggered epoll reactor and hashed timer wheel —
//! the readiness substrate under [`AsyncDriver`](crate::AsyncDriver).
//!
//! The workspace is fully vendored and offline, so there is no tokio,
//! no mio, and no libc: on Linux the reactor talks to `epoll` through
//! raw syscalls issued with inline assembly (the crate's single
//! `allow(unsafe_code)` scope), and everywhere else — or when the
//! `PPCS_REACTOR=sleep` kill switch is set — it degrades to a
//! short-sleep poller that reports every registered token as
//! maybe-ready. Spurious readiness is safe by construction: consumers
//! drive nonblocking try-I/O loops that simply find nothing to do.
//!
//! Three pieces:
//!
//! * [`Reactor`] — register an fd under a `u64` token, then
//!   [`wait`](Reactor::wait) for readiness [`ReactorEvent`]s.
//!   Registration is edge-triggered for both directions, so consumers
//!   must drain reads to `WouldBlock` and flush writes to `WouldBlock`
//!   on every event.
//! * [`Waker`] — a cross-thread handle (a connected loopback UDP pair)
//!   that interrupts a blocked [`Reactor::wait`], used by drain/cut
//!   signals to make shutdown event-driven instead of poll-quantized.
//! * [`TimerWheel`] — a 256-slot hashed wheel with millisecond-class
//!   granularity carrying per-session budget deadlines (wall-clock,
//!   per-receive, cancel-poll slices), replacing the per-thread
//!   blocking deadlines of the synchronous driver.

use std::collections::HashMap;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

use crate::error::TransportError;

/// One readiness notification from [`Reactor::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReactorEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or the peer hung up / errored, which
    /// a read will surface).
    pub readable: bool,
    /// The fd's send buffer has room again.
    pub writable: bool,
}

/// The token [`Reactor::wait`] never reports: reserved for the waker.
const WAKE_TOKEN: u64 = u64::MAX;

/// Raw `epoll` syscalls, issued with inline assembly because the
/// vendored dependency set has no libc. This module is the only
/// `unsafe` surface in the crate; everything above it speaks safe
/// `RawFd` + `u64` tokens.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod sys {
    use std::os::fd::RawFd;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;
    const EPOLL_CLOEXEC: u64 = 0x80000;
    const EINTR: i64 = 4;

    /// The kernel's event record. x86_64 declares it packed (a 12-byte
    /// struct); every other architecture uses natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: u64 = 291;
        pub const EPOLL_CTL: u64 = 233;
        pub const EPOLL_PWAIT: u64 = 281;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: u64 = 20;
        pub const EPOLL_CTL: u64 = 21;
        pub const EPOLL_PWAIT: u64 = 22;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    /// `epoll_create1(EPOLL_CLOEXEC)`; `None` if the kernel refuses.
    pub fn epoll_create1() -> Option<RawFd> {
        // SAFETY: epoll_create1 takes one immediate flag argument and
        // touches no caller memory.
        let ret = unsafe { syscall(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        (ret >= 0).then_some(ret as RawFd)
    }

    /// `epoll_ctl(epfd, op, fd, event)`. `event` may be `None` for DEL.
    pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> i64 {
        let ptr = event.map_or(0u64, |e| e as *mut EpollEvent as u64);
        // SAFETY: `ptr` is either null (DEL) or a live &mut EpollEvent
        // that outlives the call; the kernel only reads it.
        unsafe { syscall(nr::EPOLL_CTL, epfd as u64, op as u64, fd as u64, ptr, 0, 0) }
    }

    /// `epoll_pwait(epfd, events, maxevents, timeout_ms, NULL, 0)`,
    /// retrying on `EINTR`. Returns the number of events filled.
    pub fn epoll_wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> i64 {
        loop {
            // SAFETY: `events` is a live mutable slice the kernel fills
            // up to `events.len()` records; the null sigmask makes
            // epoll_pwait behave exactly like epoll_wait.
            let ret = unsafe {
                syscall(
                    nr::EPOLL_PWAIT,
                    epfd as u64,
                    events.as_mut_ptr() as u64,
                    events.len() as u64,
                    timeout_ms as u64,
                    0,
                    0,
                )
            };
            if ret != -EINTR {
                return ret;
            }
        }
    }

    /// `close(fd)` — the epoll fd is not wrapped in any std type, so it
    /// must be released by hand when the reactor drops.
    pub fn close(fd: RawFd) {
        #[cfg(target_arch = "x86_64")]
        const CLOSE: u64 = 3;
        #[cfg(target_arch = "aarch64")]
        const CLOSE: u64 = 57;
        // SAFETY: close takes one fd argument and touches no memory.
        let _ = unsafe { syscall(CLOSE, fd as u64, 0, 0, 0, 0, 0) };
    }
}

/// Readiness backend: real epoll where available, a short-sleep poller
/// otherwise (non-Linux platforms, kernels refusing `epoll_create1`, or
/// the `PPCS_REACTOR=sleep` kill switch).
#[derive(Debug)]
enum Backend {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll { epfd: RawFd },
    /// Fallback: every registered token is reported maybe-ready after a
    /// bounded nap, which is correct (if less efficient) for consumers
    /// that probe with nonblocking try-I/O.
    Sleep,
}

/// An edge-triggered readiness reactor over raw fds.
///
/// Register sockets with [`register`](Reactor::register) (interest is
/// always read + write, edge-triggered), then loop on
/// [`wait`](Reactor::wait). A [`Waker`] obtained before the loop can
/// interrupt a blocked wait from any thread.
#[derive(Debug)]
pub struct Reactor {
    backend: Backend,
    /// Registered tokens and their fds — the sleep backend reports all
    /// of them on every wait, and `Drop` uses the fds for cleanup.
    registered: HashMap<u64, RawFd>,
    /// Receive side of the waker channel, registered under
    /// [`WAKE_TOKEN`]; drained on every wake.
    wake_rx: UdpSocket,
    /// Template for new [`Waker`]s.
    wake_tx: UdpSocket,
}

impl Reactor {
    /// Opens a reactor, choosing epoll when the platform offers it and
    /// the `PPCS_REACTOR=sleep` kill switch is unset.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the loopback waker pair cannot be set
    /// up (the readiness backend itself cannot fail: it degrades to the
    /// sleep poller instead).
    pub fn new() -> Result<Self, TransportError> {
        let io = |e: std::io::Error| TransportError::Io(format!("reactor waker: {e}"));
        let wake_rx = UdpSocket::bind("127.0.0.1:0").map_err(io)?;
        let wake_tx = UdpSocket::bind("127.0.0.1:0").map_err(io)?;
        wake_tx
            .connect(wake_rx.local_addr().map_err(io)?)
            .map_err(io)?;
        wake_rx.set_nonblocking(true).map_err(io)?;
        let backend = Self::pick_backend();
        let mut reactor = Self {
            backend,
            registered: HashMap::new(),
            wake_rx,
            wake_tx,
        };
        reactor.register(reactor.wake_rx.as_raw_fd(), WAKE_TOKEN)?;
        Ok(reactor)
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn pick_backend() -> Backend {
        if std::env::var("PPCS_REACTOR").is_ok_and(|v| v.eq_ignore_ascii_case("sleep")) {
            return Backend::Sleep;
        }
        match sys::epoll_create1() {
            Some(epfd) => Backend::Epoll { epfd },
            None => Backend::Sleep,
        }
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    fn pick_backend() -> Backend {
        Backend::Sleep
    }

    /// Whether this reactor runs on real epoll (false: sleep fallback).
    pub fn is_epoll(&self) -> bool {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            matches!(self.backend, Backend::Epoll { .. })
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            false
        }
    }

    /// A cross-thread handle that interrupts a blocked [`wait`](Reactor::wait).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the waker socket cannot be cloned.
    pub fn waker(&self) -> Result<Waker, TransportError> {
        Ok(Waker {
            tx: self
                .wake_tx
                .try_clone()
                .map_err(|e| TransportError::Io(format!("clone waker: {e}")))?,
        })
    }

    /// Registers `fd` under `token` with edge-triggered read + write
    /// interest. The fd must already be in nonblocking mode; the caller
    /// keeps ownership and must [`deregister`](Reactor::deregister)
    /// before closing it.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the kernel rejects the registration.
    pub fn register(&mut self, fd: RawFd, token: u64) -> Result<(), TransportError> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backend::Epoll { epfd } = self.backend {
            let mut ev = sys::EpollEvent {
                events: sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET,
                data: token,
            };
            let ret = sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, fd, Some(&mut ev));
            if ret < 0 {
                return Err(TransportError::Io(format!(
                    "epoll_ctl(ADD, fd {fd}) failed with errno {}",
                    -ret
                )));
            }
        }
        self.registered.insert(token, fd);
        Ok(())
    }

    /// Removes `token`'s fd from the interest set. Harmless if the
    /// token was never registered.
    pub fn deregister(&mut self, token: u64) {
        if let Some(_fd) = self.registered.remove(&token) {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            if let Backend::Epoll { epfd } = self.backend {
                let _ = sys::epoll_ctl(epfd, sys::EPOLL_CTL_DEL, _fd, None);
            }
        }
    }

    /// Blocks until readiness arrives, the timeout elapses, or a
    /// [`Waker`] fires, appending events to `out` (the waker's own
    /// token is consumed internally and never reported). Returns the
    /// number of events appended.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<ReactorEvent>) -> usize {
        let before = out.len();
        match &self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll { epfd } => {
                let timeout_ms: i32 = match timeout {
                    None => -1,
                    Some(t) if t.is_zero() => 0,
                    // Round sub-millisecond deadlines up to 1 ms so a
                    // short timed wait actually sleeps.
                    Some(t) => t.as_millis().max(1).min(i32::MAX as u128) as i32,
                };
                let mut buf = [sys::EpollEvent::default(); 64];
                let n = sys::epoll_wait(*epfd, &mut buf, timeout_ms);
                let mut woke = false;
                for ev in buf.iter().take(n.max(0) as usize) {
                    let token = ev.data;
                    let bits = ev.events;
                    if token == WAKE_TOKEN {
                        woke = true;
                        continue;
                    }
                    let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                    out.push(ReactorEvent {
                        token,
                        // Hangups and errors surface through a read.
                        readable: bits & sys::EPOLLIN != 0 || hangup,
                        writable: bits & sys::EPOLLOUT != 0,
                    });
                }
                if woke {
                    self.drain_wakes();
                }
            }
            Backend::Sleep => {
                // Bounded nap, then report everything maybe-ready.
                let nap = timeout.unwrap_or(SLEEP_SLICE).min(SLEEP_SLICE);
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
                self.drain_wakes();
                for token in self.registered.keys() {
                    if *token != WAKE_TOKEN {
                        out.push(ReactorEvent {
                            token: *token,
                            readable: true,
                            writable: true,
                        });
                    }
                }
            }
        }
        out.len() - before
    }

    fn drain_wakes(&self) {
        let mut buf = [0u8; 16];
        while self.wake_rx.recv(&mut buf).is_ok() {}
    }
}

/// The sleep backend's poll quantum.
const SLEEP_SLICE: Duration = Duration::from_millis(1);

impl Drop for Reactor {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backend::Epoll { epfd } = self.backend {
            sys::close(epfd);
        }
    }
}

/// Interrupts a blocked [`Reactor::wait`] from any thread. Cheap to
/// clone through [`Reactor::waker`]; wakes coalesce.
#[derive(Debug)]
pub struct Waker {
    tx: UdpSocket,
}

impl Waker {
    /// Wakes the reactor. Never blocks; a full socket buffer means a
    /// wake is already pending, which is all a wake can convey.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }
}

/// A hashed timer wheel: 256 slots of [`TimerWheel::GRANULARITY`],
/// carrying `(deadline, token, generation)` entries. Insertions and
/// cancellations are O(1); [`advance`](TimerWheel::advance) drains the
/// slots the clock has passed and reports which tokens are due.
///
/// Cancellation is generational: re-arming a token with a bumped
/// generation silently invalidates every older entry, so the wheel
/// never needs to find and remove stale timers.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    /// The slot index the wheel has advanced to.
    cursor: usize,
    /// The wall-clock time of the cursor's slot boundary.
    cursor_time: Instant,
    /// Live entry count (including stale generations not yet drained).
    armed: usize,
}

#[derive(Clone, Copy, Debug)]
struct TimerEntry {
    deadline: Instant,
    token: u64,
    generation: u64,
}

impl TimerWheel {
    /// Slot width: deadlines are observed within one granule plus the
    /// reactor's wait latency, comfortably inside the 20 ms budget
    /// slices the blocking driver polls at.
    pub const GRANULARITY: Duration = Duration::from_millis(4);

    const SLOTS: usize = 256;

    /// An empty wheel anchored at `now`.
    pub fn new(now: Instant) -> Self {
        Self {
            slots: vec![Vec::new(); Self::SLOTS],
            cursor: 0,
            cursor_time: now,
            armed: 0,
        }
    }

    /// Arms a timer for `token` (under `generation`) at `deadline`.
    /// Deadlines already in the past land in the current slot and fire
    /// on the next [`advance`](TimerWheel::advance).
    pub fn arm(&mut self, deadline: Instant, token: u64, generation: u64) {
        let offset = deadline.saturating_duration_since(self.cursor_time);
        let granules = (offset.as_nanos() / Self::GRANULARITY.as_nanos()) as usize;
        // Entries farther out than one revolution stay in their hashed
        // slot and are re-checked against their real deadline when the
        // cursor reaches them — `advance` re-arms the not-yet-due.
        let slot = (self.cursor + granules) % Self::SLOTS;
        self.slots[slot].push(TimerEntry {
            deadline,
            token,
            generation,
        });
        self.armed += 1;
    }

    /// Whether any entries are armed (stale generations included).
    pub fn is_idle(&self) -> bool {
        self.armed == 0
    }

    /// The duration until the next slot that holds any entry, from
    /// `now` — an upper bound on how long the reactor may sleep without
    /// missing a timer. `None` when the wheel is idle.
    pub fn next_due(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        let mut soonest: Option<Instant> = None;
        for slot in &self.slots {
            for e in slot {
                soonest = Some(match soonest {
                    Some(s) if s <= e.deadline => s,
                    _ => e.deadline,
                });
            }
        }
        Some(soonest.expect("armed > 0").saturating_duration_since(now))
    }

    /// Advances the wheel to `now`, appending `(token, generation)` for
    /// every entry whose deadline has passed. Entries hashed into a
    /// passed slot but due a revolution later are re-armed, not fired.
    /// The caller matches generations to discard stale timers.
    pub fn advance(&mut self, now: Instant, due: &mut Vec<(u64, u64)>) {
        let mut timed = Vec::new();
        self.advance_timed(now, &mut timed);
        due.extend(
            timed
                .into_iter()
                .map(|(token, generation, _)| (token, generation)),
        );
    }

    /// Like [`advance`](TimerWheel::advance), but each fired entry also
    /// carries the deadline it was armed for, so the caller can measure
    /// wheel drift (`now - deadline`) as a reactor health metric.
    pub fn advance_timed(&mut self, now: Instant, due: &mut Vec<(u64, u64, Instant)>) {
        let mut carry: Vec<TimerEntry> = Vec::new();
        loop {
            let slot_end = self.cursor_time + Self::GRANULARITY;
            if slot_end > now {
                break;
            }
            let drained = std::mem::take(&mut self.slots[self.cursor]);
            self.armed -= drained.len();
            for e in drained {
                if e.deadline <= now {
                    due.push((e.token, e.generation, e.deadline));
                } else {
                    carry.push(e);
                }
            }
            self.cursor = (self.cursor + 1) % Self::SLOTS;
            self.cursor_time = slot_end;
        }
        // Also fire entries in the *current* slot whose deadline has
        // passed — sub-granule deadlines must not wait a revolution.
        let current = &mut self.slots[self.cursor];
        let mut i = 0;
        while i < current.len() {
            if current[i].deadline <= now {
                let e = current.swap_remove(i);
                self.armed -= 1;
                due.push((e.token, e.generation, e.deadline));
            } else {
                i += 1;
            }
        }
        // Entries drained from a passed slot but due a revolution later
        // go back on the wheel (their slot release was already counted,
        // and `arm` counts the re-insertion).
        for e in carry {
            self.arm(e.deadline, e.token, e.generation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn nb_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (server, client)
    }

    #[test]
    fn epoll_reports_readability_edge() {
        let mut reactor = Reactor::new().expect("reactor");
        let (server, mut client) = nb_pair();
        reactor.register(server.as_raw_fd(), 7).expect("register");
        let mut events = Vec::new();
        // Nothing to read yet: a short wait stays quiet (epoll) or
        // reports a spurious ready (sleep backend) — either is legal,
        // so only the post-write behavior is asserted.
        client.write_all(b"x").expect("write");
        client.flush().expect("flush");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            events.clear();
            reactor.wait(Some(Duration::from_millis(50)), &mut events);
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readiness never arrived");
        }
        reactor.deregister(7);
    }

    #[test]
    fn waker_interrupts_wait() {
        let mut reactor = Reactor::new().expect("reactor");
        let waker = reactor.waker().expect("waker");
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let started = Instant::now();
        let mut events = Vec::new();
        reactor.wait(Some(Duration::from_secs(10)), &mut events);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wake should interrupt the 10 s wait early"
        );
        assert!(
            events.iter().all(|e| e.token != WAKE_TOKEN),
            "the wake token never surfaces"
        );
        handle.join().expect("waker thread");
    }

    #[test]
    fn sleep_backend_reports_registered_tokens() {
        let mut reactor = Reactor::new().expect("reactor");
        reactor.backend = Backend::Sleep;
        let (server, _client) = nb_pair();
        reactor.register(server.as_raw_fd(), 3).expect("register");
        let mut events = Vec::new();
        reactor.wait(Some(Duration::from_millis(1)), &mut events);
        assert!(
            events
                .iter()
                .any(|e| e.token == 3 && e.readable && e.writable),
            "sleep backend reports every token maybe-ready: {events:?}"
        );
    }

    #[test]
    fn edge_triggered_requires_draining() {
        let mut reactor = Reactor::new().expect("reactor");
        if !reactor.is_epoll() {
            return; // Only meaningful on the epoll backend.
        }
        let (mut server, mut client) = nb_pair();
        reactor.register(server.as_raw_fd(), 9).expect("register");
        client.write_all(b"ab").expect("write");
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            events.clear();
            reactor.wait(Some(Duration::from_millis(50)), &mut events);
            if events.iter().any(|e| e.token == 9 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline);
        }
        // Drain to WouldBlock, as edge-triggered consumers must.
        let mut buf = [0u8; 16];
        loop {
            match server.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
        // No new bytes → no new edge.
        events.clear();
        reactor.wait(Some(Duration::from_millis(30)), &mut events);
        assert!(
            events.iter().all(|e| e.token != 9 || !e.readable),
            "drained fd must not re-report readable without new data: {events:?}"
        );
    }

    #[test]
    fn timer_wheel_fires_in_order_and_respects_generations() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        wheel.arm(start + Duration::from_millis(8), 1, 0);
        wheel.arm(start + Duration::from_millis(40), 2, 0);
        // Token 1 re-armed under a newer generation: gen 0 is stale.
        wheel.arm(start + Duration::from_millis(8), 1, 1);

        let mut due = Vec::new();
        wheel.advance(start + Duration::from_millis(20), &mut due);
        assert!(due.contains(&(1, 0)) && due.contains(&(1, 1)), "{due:?}");
        assert!(!due.iter().any(|&(t, _)| t == 2), "{due:?}");

        due.clear();
        wheel.advance(start + Duration::from_millis(60), &mut due);
        assert_eq!(due, vec![(2, 0)]);
        assert!(wheel.is_idle());
    }

    #[test]
    fn timer_wheel_handles_far_deadlines_beyond_one_revolution() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        // > 256 slots * 4 ms = 1.024 s away: wraps the wheel.
        let far = start + Duration::from_millis(1500);
        wheel.arm(far, 5, 0);
        let mut due = Vec::new();
        wheel.advance(start + Duration::from_millis(1100), &mut due);
        assert!(due.is_empty(), "not due yet: {due:?}");
        assert!(!wheel.is_idle(), "re-armed for the next revolution");
        wheel.advance(start + Duration::from_millis(1600), &mut due);
        assert_eq!(due, vec![(5, 0)]);
    }

    #[test]
    fn timer_wheel_next_due_bounds_the_sleep() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        assert_eq!(wheel.next_due(start), None);
        wheel.arm(start + Duration::from_millis(12), 1, 0);
        let due = wheel.next_due(start).expect("armed");
        assert!(due <= Duration::from_millis(12), "{due:?}");
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        wheel.arm(start, 4, 2);
        let mut due = Vec::new();
        wheel.advance(start + Duration::from_millis(1), &mut due);
        assert_eq!(due, vec![(4, 2)]);
    }

    #[test]
    fn advance_timed_carries_the_armed_deadline() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        let deadline = start + Duration::from_millis(8);
        wheel.arm(deadline, 6, 1);
        let mut due = Vec::new();
        let now = start + Duration::from_millis(20);
        wheel.advance_timed(now, &mut due);
        assert_eq!(due, vec![(6, 1, deadline)]);
        let drift = now.saturating_duration_since(due[0].2);
        assert_eq!(drift, Duration::from_millis(12));
    }
}
