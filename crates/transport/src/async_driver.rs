//! [`AsyncDriver`]: one thread, one reactor, thousands of sessions.
//!
//! Where [`Driver`](crate::Driver) parks an OS thread on every blocking
//! receive, `AsyncDriver` parks a *session* — an engine, its transcript
//! recorder, and its budget state — on a readiness event from the
//! [`Reactor`](crate::Reactor) or a deadline on the
//! [`TimerWheel`](crate::TimerWheel). The per-session pump is a
//! line-for-line mirror of `Driver::drive`'s loop (same transcript
//! entries, same [`KIND_BUSY`] translation, same
//! [`TransportError::Budget`] messages in the same order), so a session
//! driven here produces a byte-identical [`Transcript`] and the same
//! result as its blocking counterpart — the blocking driver stays the
//! correctness oracle, enforced by the transcript-equality e2e suite.
//!
//! Connections come in two flavors:
//!
//! * **TCP** ([`AsyncDriver::add_tcp`]) — a nonblocking framed stream
//!   registered edge-triggered with the reactor; reads drain to
//!   `WouldBlock`, writes queue under backpressure and resume on
//!   writable events.
//! * **In-memory lanes** ([`AsyncDriver::add_lane`]) — any
//!   [`Lane`] (duplex endpoints, the chaos
//!   [`FaultyLane`](crate::FaultyLane)) probed with a zero receive
//!   deadline every turn, so the whole chaos and adversarial toolbox
//!   runs unchanged through the async path.
//!
//! A connection with no engine attached is *pending*: its first frame
//! surfaces as [`AsyncEvent::Opening`] so a serving layer can perform
//! admission control (attach an engine, [`send_busy`](AsyncDriver::send_busy),
//! or [`close`](AsyncDriver::close)) before any protocol work happens.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppcs_telemetry::{
    FlightEventKind, FlightRecorder, MetricsRegistry, ReactorMetric, TraceScope,
    DETAIL_CONN_CLOSED, DETAIL_SESSION_ERR, DETAIL_SESSION_OK,
};

use crate::channel::{coalesce_frames, Frame, Lane, TrafficStats};
use crate::driver::{
    busy_frame, busy_retry_after, fail_engine, merge_wire_delta, Direction, RetryPolicy,
    SessionLimits, Transcript, KIND_BUSY, KIND_RESUME,
};
use crate::engine::{Outgoing, ProtocolEngine};
use crate::error::TransportError;
use crate::reactor::{Reactor, ReactorEvent, TimerWheel, Waker};
use crate::tcp::NbConn;

/// Token reserved for the accept listener.
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// Token reserved for the `/metrics` endpoint listener.
const METRICS_LISTEN_TOKEN: u64 = u64::MAX - 2;

/// Metrics scrape connections get tokens at and above this base — past
/// the `u32` range session slots live in, so the session service loop
/// never confuses a scrape socket with a protocol connection.
const METRICS_TOKEN_BASE: u64 = 1 << 32;

/// Request-header cap for the HTTP-lite scrape parser: anything larger
/// is answered `400` and closed.
const METRICS_REQ_CAP: usize = 8 * 1024;

/// How often a parked session with a cancel token re-checks it, the
/// async analog of the blocking driver's 20 ms receive slices.
const CANCEL_SLICE: Duration = Duration::from_millis(20);

/// Per-receive deadline applied when [`DriveOptions::timeout`] is
/// unset, matching the 30 s default of blocking endpoints.
const DEFAULT_PER_RECV: Duration = Duration::from_secs(30);

/// Reactor wait cap while in-memory lanes are attached: mem lanes have
/// no fd to register, so they are probed every turn at this cadence.
const MEM_POLL_SLICE: Duration = Duration::from_millis(1);

/// Handle to one connection owned by an [`AsyncDriver`]. Slots are
/// reused after [`close`](AsyncDriver::close); the epoch guards against
/// a stale handle touching a recycled slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId {
    slot: u32,
    epoch: u32,
}

impl ConnId {
    /// The slot index — stable for the life of the connection, reused
    /// (under a bumped [`epoch`](ConnId::epoch)) after close.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The slot-reuse epoch distinguishing this connection from earlier
    /// occupants of the same slot.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn {}.{}", self.slot, self.epoch)
    }
}

/// Per-session drive configuration, mirroring the builder surface of
/// the blocking [`Driver`](crate::Driver).
#[derive(Debug, Default)]
pub struct DriveOptions {
    /// Record a [`Transcript`] (returned in [`AsyncEvent::Finished`]).
    pub recording: bool,
    /// Telemetry registry for this session's spans, wire deltas, frame
    /// sizes, polls, rounds, timeouts, and budget trips.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Per-receive deadline (default 30 s, as on blocking endpoints).
    /// Enforced by the timer wheel — never by `WouldBlock`.
    pub timeout: Option<Duration>,
    /// Session budgets, enforced with the exact trip order and
    /// [`TransportError::Budget`] messages of the blocking driver.
    pub limits: Option<SessionLimits>,
    /// Cancellation token checked within one [`CANCEL_SLICE`] while
    /// parked — the drain-cut mechanism of the serving runtime.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl DriveOptions {
    /// Options with everything off: no recording, no metrics, default
    /// per-receive deadline, no budgets, no cancel token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables transcript recording.
    #[must_use]
    pub fn with_recording(mut self) -> Self {
        self.recording = true;
        self
    }

    /// Attaches a telemetry registry.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Sets the per-receive deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches session budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: SessionLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// What happened during one [`AsyncDriver::poll`] turn.
#[derive(Debug)]
pub enum AsyncEvent<T, E> {
    /// The registered listener accepted a new connection (pending — no
    /// engine attached yet).
    Accepted {
        /// The freshly registered connection.
        conn: ConnId,
    },
    /// A frame arrived on a pending connection. The receiver decides:
    /// attach an engine (admission), [`AsyncDriver::send_busy`]
    /// (shedding), ignore (the connection stays pending), or
    /// [`AsyncDriver::close`].
    Opening {
        /// The pending connection.
        conn: ConnId,
        /// The frame, exactly as a blocking accept loop would have
        /// received it (coalesced batches already unpacked).
        frame: Frame,
    },
    /// An attached session ran to completion (successfully or with the
    /// same typed error its blocking counterpart would report). The
    /// connection itself stays open and reverts to pending, ready for
    /// a back-to-back follow-up session.
    Finished {
        /// The connection whose session completed.
        conn: ConnId,
        /// The engine's result.
        result: Result<T, E>,
        /// The recorded transcript, when
        /// [`DriveOptions::recording`] was set.
        transcript: Option<Transcript>,
    },
    /// A pending connection produced transport-level garbage (a frame
    /// the codec itself rejected). TCP connections are closed (the
    /// stream is desynchronized); in-memory lanes stay up, mirroring
    /// the blocking serve loop.
    Malformed {
        /// The offending connection.
        conn: ConnId,
        /// What the transport rejected.
        error: TransportError,
    },
    /// A pending connection's idle deadline
    /// ([`AsyncDriver::set_idle_deadline`]) expired without a frame.
    /// One-shot: re-arm or close.
    IdleExpired {
        /// The idle connection.
        conn: ConnId,
    },
    /// A pending connection disconnected and was removed.
    Closed {
        /// The connection that is now gone.
        conn: ConnId,
    },
}

/// One connection's transport, by flavor.
enum ConnLane<'d> {
    Tcp(NbConn),
    Mem(&'d dyn Lane),
}

impl std::fmt::Debug for ConnLane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(nb) => f.debug_tuple("Tcp").field(nb).finish(),
            Self::Mem(_) => f.debug_tuple("Mem").finish(),
        }
    }
}

/// The engine and drive state parked on a connection.
struct Session<'d, T, E> {
    engine: ProtocolEngine<'d, T, E>,
    transcript: Option<Transcript>,
    metrics: Option<Arc<MetricsRegistry>>,
    limits: SessionLimits,
    budgeted: bool,
    cancel: Option<Arc<AtomicBool>>,
    per_recv: Duration,
    started: Instant,
    /// When the wait for the *current* frame began (reset on every
    /// delivery) — the async analog of the blocking driver's per-recv
    /// window.
    recv_started: Instant,
    bytes_before: u64,
    frames_delivered: u64,
    last_kind: Option<u16>,
    stats_before: Option<TrafficStats>,
    rounds_before: u64,
    /// Driver-wide session sequence number: with slot reuse, the
    /// `(slot, epoch, seq)` triple pins every trace line and trace-out
    /// event to exactly one session.
    seq: u64,
    /// Present when the session is being driven by
    /// [`AsyncDriver::drive_resumable`]: transport failures become
    /// [`PumpOutcome::NeedsRedial`] instead of terminal injections, and
    /// sent frames are logged for replay after the redial handshake.
    resume: Option<ResumeState>,
}

/// Redial bookkeeping for a resumable session, mirroring the blocking
/// `pump_resumable`'s send-log/budget accounting.
struct ResumeState {
    /// Every logical frame sent this session, in order, for replay
    /// after a reconnect (appended *before* transmission so a frame
    /// lost mid-send is replayed too).
    sent_log: Vec<Frame>,
    /// Wire bytes spent on previous lanes: the byte budget is
    /// session-logical and accumulates across redials.
    wire_base: u64,
}

/// One in-flight HTTP-lite scrape connection on the metrics endpoint:
/// accumulate the request until the header terminator, render once,
/// drain the response under backpressure, close.
struct MetricsConn {
    stream: TcpStream,
    req: Vec<u8>,
    resp: Vec<u8>,
    sent: usize,
}

struct Conn<'d, T, E> {
    lane: ConnLane<'d>,
    session: Option<Session<'d, T, E>>,
    /// Idle deadline while pending (no engine). One-shot.
    idle_deadline: Option<Instant>,
    /// Bumped on every service: invalidates timers armed before.
    timer_gen: u64,
}

struct Slot<'d, T, E> {
    epoch: u32,
    conn: Option<Conn<'d, T, E>>,
    /// Already queued for service this turn (dedup flag).
    queued: bool,
}

enum PumpOutcome<T, E> {
    /// Nothing more to do until an event or `wake_at`.
    Parked { wake_at: Option<Instant> },
    /// The session completed.
    Finished(Box<(Result<T, E>, Option<Transcript>)>),
    /// Resumable sessions only: the lane failed (or the peer shed or a
    /// budget tripped) with the engine still alive — the outer
    /// [`AsyncDriver::drive_resumable`] loop decides whether to redial.
    NeedsRedial(TransportError),
}

/// A single-threaded multiplexer pumping many [`ProtocolEngine`]s over
/// one [`Reactor`]. See the module docs for the model; see
/// [`poll`](AsyncDriver::poll) for the turn loop.
pub struct AsyncDriver<'d, T, E> {
    reactor: Reactor,
    wheel: TimerWheel,
    slots: Vec<Slot<'d, T, E>>,
    free: Vec<u32>,
    listener: Option<TcpListener>,
    /// Reactor-level telemetry (wakeups, readiness events, timer
    /// fires) — distinct from each session's own registry.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Connections to service next turn without waiting for an event
    /// (freshly attached engines, buffered frames).
    ready_next: Vec<u32>,
    active_sessions: usize,
    mem_conns: usize,
    conns: usize,
    /// The `/metrics` endpoint listener, when one is attached.
    metrics_listener: Option<TcpListener>,
    /// In-flight scrape connections by reactor token.
    metrics_conns: HashMap<u64, MetricsConn>,
    next_metrics_token: u64,
    /// Post-mortem flight recorder fed by admission, shedding, budget,
    /// malformed-input, timer, and state-transition events.
    recorder: Option<Arc<FlightRecorder>>,
    /// Monotonic session counter feeding [`Session::seq`].
    session_seq: u64,
}

impl<'d, T, E: From<TransportError>> AsyncDriver<'d, T, E> {
    /// Opens a driver with its own reactor and timer wheel.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the reactor cannot be set up.
    pub fn new() -> Result<Self, TransportError> {
        Ok(Self {
            reactor: Reactor::new()?,
            wheel: TimerWheel::new(Instant::now()),
            slots: Vec::new(),
            free: Vec::new(),
            listener: None,
            metrics: None,
            ready_next: Vec::new(),
            active_sessions: 0,
            mem_conns: 0,
            conns: 0,
            metrics_listener: None,
            metrics_conns: HashMap::new(),
            next_metrics_token: METRICS_TOKEN_BASE,
            recorder: None,
            session_seq: 0,
        })
    }

    /// Attaches a registry for reactor-level counters
    /// (`reactor_wakeups`, `reactor_events`, `timer_fires`).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Whether the readiness backend is real epoll (false: the
    /// short-sleep fallback — see [`Reactor`]).
    pub fn is_epoll(&self) -> bool {
        self.reactor.is_epoll()
    }

    /// A cross-thread [`Waker`] that interrupts a blocked
    /// [`poll`](AsyncDriver::poll) — lets drain/cut signals land
    /// event-driven instead of waiting out the poll timeout.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the waker socket cannot be cloned.
    pub fn waker(&self) -> Result<Waker, TransportError> {
        self.reactor.waker()
    }

    /// Registers `listener` for nonblocking accepts: every new inbound
    /// connection is added as a pending TCP connection and reported
    /// with [`AsyncEvent::Accepted`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on registration failure.
    pub fn listen(&mut self, listener: TcpListener) -> Result<(), TransportError> {
        use std::os::fd::AsRawFd;
        listener
            .set_nonblocking(true)
            .map_err(|e| TransportError::Io(format!("listener nonblocking: {e}")))?;
        self.reactor.register(listener.as_raw_fd(), LISTEN_TOKEN)?;
        self.listener = Some(listener);
        Ok(())
    }

    /// Serves a live observability endpoint on `listener`, multiplexed
    /// on this reactor — no extra threads. Routes:
    ///
    /// * `GET /metrics` — Prometheus text exposition of the driver
    ///   registry ([`with_metrics`](AsyncDriver::with_metrics)) plus a
    ///   live connection table (ConnId, phase, rounds, wire bytes,
    ///   budget remaining).
    /// * `GET /flightrecorder` — the attached
    ///   [`FlightRecorder`]'s ring as JSON (404 when none).
    ///
    /// Scrape sockets use tokens above the session-slot range, so
    /// protocol servicing never sees them. Bind to loopback unless the
    /// scrape network is trusted: the surface carries sizes, counts,
    /// kinds, and timings (never payloads), but it is unauthenticated.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on registration failure.
    pub fn listen_metrics(&mut self, listener: TcpListener) -> Result<(), TransportError> {
        use std::os::fd::AsRawFd;
        listener
            .set_nonblocking(true)
            .map_err(|e| TransportError::Io(format!("metrics listener nonblocking: {e}")))?;
        self.reactor
            .register(listener.as_raw_fd(), METRICS_LISTEN_TOKEN)?;
        self.metrics_listener = Some(listener);
        Ok(())
    }

    /// The bound address of the `/metrics` endpoint, when listening.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Attaches a flight recorder: admission, shedding, budget trips,
    /// malformed input, live timer fires, and session/connection state
    /// transitions are recorded into its ring from here on.
    pub fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.recorder.clone()
    }

    /// Adds `stream` as a pending TCP connection (nonblocking, framed,
    /// registered edge-triggered).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on socket configuration or registration
    /// failure.
    pub fn add_tcp(&mut self, stream: TcpStream) -> Result<ConnId, TransportError> {
        let nb = NbConn::new(stream)?;
        let fd = nb.fd();
        let id = self.insert(Conn {
            lane: ConnLane::Tcp(nb),
            session: None,
            idle_deadline: None,
            timer_gen: 0,
        });
        self.reactor.register(fd, u64::from(id.slot))?;
        Ok(id)
    }

    /// Adds any [`Lane`] (a duplex endpoint, a chaos
    /// [`FaultyLane`](crate::FaultyLane)) as a pending connection. Mem
    /// lanes are probed with a zero receive deadline every turn; the
    /// driver owns the lane's deadline cell from here on.
    pub fn add_lane(&mut self, lane: &'d dyn Lane) -> ConnId {
        let id = self.insert(Conn {
            lane: ConnLane::Mem(lane),
            session: None,
            idle_deadline: None,
            timer_gen: 0,
        });
        self.mem_conns += 1;
        // Probe it on the next turn — mem lanes produce no events.
        self.ready_next.push(id.slot);
        id
    }

    fn insert(&mut self, conn: Conn<'d, T, E>) -> ConnId {
        self.conns += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.conn = Some(conn);
            ConnId {
                slot,
                epoch: s.epoch,
            }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                epoch: 0,
                conn: Some(conn),
                queued: false,
            });
            ConnId { slot, epoch: 0 }
        }
    }

    fn conn_mut(&mut self, id: ConnId) -> Option<&mut Conn<'d, T, E>> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.epoch != id.epoch {
            return None;
        }
        s.conn.as_mut()
    }

    /// Arms (or clears) the pending-idle deadline: if no frame arrives
    /// on this pending connection within `after`, one
    /// [`AsyncEvent::IdleExpired`] fires.
    pub fn set_idle_deadline(&mut self, id: ConnId, after: Option<Duration>) {
        let Some(conn) = self.conn_mut(id) else {
            return;
        };
        let deadline = after.map(|d| Instant::now() + d);
        conn.idle_deadline = deadline;
        conn.timer_gen += 1;
        let generation = conn.timer_gen;
        let is_mem = matches!(conn.lane, ConnLane::Mem(_));
        if let Some(t) = deadline {
            // Mem conns are probed every turn; only fd conns need a
            // timer to wake the reactor.
            if !is_mem {
                self.wheel.arm(t, u64::from(id.slot), generation);
            }
        }
    }

    /// Attaches `engine` to a pending connection and starts pumping it
    /// under `opts`. The caller feeds any already-received opening
    /// frame (`engine.handle_input(first)`) *before* attaching, exactly
    /// like the blocking serve loop. The first pump happens on the next
    /// [`poll`](AsyncDriver::poll) turn.
    ///
    /// # Panics
    ///
    /// If the connection is unknown, closed, or already has a session.
    pub fn attach_engine(
        &mut self,
        id: ConnId,
        engine: ProtocolEngine<'d, T, E>,
        opts: DriveOptions,
    ) {
        let slot = id.slot;
        self.session_seq += 1;
        let seq = self.session_seq;
        let conn = self.conn_mut(id).expect("attach_engine: unknown conn");
        assert!(
            conn.session.is_none(),
            "attach_engine: session already attached"
        );
        let budgeted = opts.limits.is_some() || opts.cancel.is_some();
        let now = Instant::now();
        let stats_before = opts.metrics.is_some().then(|| lane_stats(&conn.lane));
        let bytes_before = if budgeted {
            lane_stats(&conn.lane).total_bytes()
        } else {
            0
        };
        let rounds_before = engine.rounds();
        conn.idle_deadline = None;
        conn.session = Some(Session {
            engine,
            transcript: opts.recording.then(Transcript::new),
            metrics: opts.metrics,
            limits: opts.limits.unwrap_or_default(),
            budgeted,
            cancel: opts.cancel,
            per_recv: opts.timeout.unwrap_or(DEFAULT_PER_RECV),
            started: now,
            recv_started: now,
            bytes_before,
            frames_delivered: 0,
            last_kind: None,
            stats_before,
            rounds_before,
            seq,
            resume: None,
        });
        self.active_sessions += 1;
        self.ready_next.push(slot);
        if let Some(rec) = &self.recorder {
            rec.record(FlightEventKind::Admitted, id.slot, id.epoch, seq);
        }
    }

    /// Answers a pending connection with one [`KIND_BUSY`] frame — the
    /// admission-control shed, with no retry-after hint. Send failures
    /// are reported but the connection stays open (the blocking serve
    /// loop ignores them too).
    ///
    /// # Errors
    ///
    /// Any transport failure from the underlying lane.
    pub fn send_busy(&mut self, id: ConnId) -> Result<(), TransportError> {
        self.send_busy_after(id, None)
    }

    /// [`send_busy`](AsyncDriver::send_busy) with a retry-after hint:
    /// the shed frame tells the client how long to wait before
    /// redialing (honored by [`RetryPolicy::delay_for`]).
    ///
    /// # Errors
    ///
    /// Any transport failure from the underlying lane.
    pub fn send_busy_after(
        &mut self,
        id: ConnId,
        retry_after: Option<Duration>,
    ) -> Result<(), TransportError> {
        let result = self.send_frame(id, busy_frame(retry_after));
        if let Some(rec) = &self.recorder {
            rec.record(FlightEventKind::Shed, id.slot, id.epoch, 0);
        }
        result
    }

    /// Sends one raw control frame on a connection — the mechanism
    /// behind shed replies and [`KIND_HEALTH`](crate::KIND_HEALTH)
    /// probe answers, which must go out without attaching a session.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] for an unknown connection, or
    /// any transport failure from the underlying lane.
    pub fn send_frame(&mut self, id: ConnId, frame: Frame) -> Result<(), TransportError> {
        let Some(conn) = self.conn_mut(id) else {
            return Err(TransportError::Disconnected);
        };
        match &mut conn.lane {
            ConnLane::Tcp(nb) => {
                nb.queue(&frame)?;
                nb.flush().map(|_| ())
            }
            ConnLane::Mem(l) => l.send(frame),
        }
    }

    /// Closes and removes a connection. An in-flight session's engine
    /// is dropped on the floor — drain logic should prefer cancel
    /// tokens, which produce a structured Budget error instead.
    pub fn close(&mut self, id: ConnId) {
        let Some(s) = self.slots.get_mut(id.slot as usize) else {
            return;
        };
        if s.epoch != id.epoch {
            return;
        }
        let Some(conn) = s.conn.take() else {
            return;
        };
        s.epoch = s.epoch.wrapping_add(1);
        s.queued = false;
        self.free.push(id.slot);
        self.conns -= 1;
        if conn.session.is_some() {
            self.active_sessions -= 1;
        }
        match conn.lane {
            ConnLane::Tcp(_) => self.reactor.deregister(u64::from(id.slot)),
            ConnLane::Mem(_) => self.mem_conns -= 1,
        }
        if let Some(rec) = &self.recorder {
            rec.record(
                FlightEventKind::StateTransition,
                id.slot,
                id.epoch,
                DETAIL_CONN_CLOSED,
            );
        }
    }

    /// Sessions currently attached and not yet finished.
    pub fn active_sessions(&self) -> usize {
        self.active_sessions
    }

    /// Open connections (pending + active).
    pub fn conns(&self) -> usize {
        self.conns
    }

    /// Every open connection id, in slot order.
    pub fn conn_ids(&self) -> Vec<ConnId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.conn.is_some())
            .map(|(i, s)| ConnId {
                slot: i as u32,
                epoch: s.epoch,
            })
            .collect()
    }

    /// Whether `id` still names an open connection.
    pub fn is_open(&self, id: ConnId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|s| s.epoch == id.epoch && s.conn.is_some())
    }

    /// Whether `id` is an open connection with no session attached.
    pub fn is_pending(&self, id: ConnId) -> bool {
        self.slots.get(id.slot as usize).is_some_and(|s| {
            s.epoch == id.epoch && s.conn.as_ref().is_some_and(|c| c.session.is_none())
        })
    }

    /// One reactor turn: waits up to `max_wait` for readiness (bounded
    /// by the next timer deadline and pending work), services every
    /// ready connection, and returns what happened. An empty vector
    /// means the turn was quiet — poll again.
    pub fn poll(&mut self, max_wait: Duration) -> Vec<AsyncEvent<T, E>> {
        let mut events = Vec::new();
        let now = Instant::now();

        // Bound the wait by whichever comes first: the caller's cap,
        // the next armed timer, the mem-lane probe cadence, or pending
        // ready work (which needs a zero wait).
        let mut wait = max_wait;
        if let Some(due) = self.wheel.next_due(now) {
            wait = wait.min(due);
        }
        if self.mem_conns > 0 {
            wait = wait.min(MEM_POLL_SLICE);
        }
        if !self.ready_next.is_empty() {
            wait = Duration::ZERO;
        }

        let mut revents: Vec<ReactorEvent> = Vec::new();
        let wait_started = Instant::now();
        self.reactor.wait(Some(wait), &mut revents);
        if let Some(reg) = &self.metrics {
            reg.record_reactor_wakeup();
            reg.record_reactor_events(revents.len() as u64);
            // Loop lag: how far past the intended wait the wakeup
            // landed. Zero when readiness cut the wait short.
            let lag = wait_started.elapsed().saturating_sub(wait);
            reg.record_reactor(ReactorMetric::LoopLagNs, lag.as_nanos() as u64);
            reg.record_reactor(ReactorMetric::EventBatch, revents.len() as u64);
        }

        // Accept new inbound connections first so their registration
        // precedes any frame they might already have sent.
        let saw_listener = revents.iter().any(|e| e.token == LISTEN_TOKEN);
        if self.listener.is_some() && (saw_listener || !self.reactor.is_epoll()) {
            self.accept_all(&mut events);
        }

        // Scrape traffic rides the same reactor: accept and service
        // metrics-endpoint sockets before protocol work so a stalled
        // session can't starve an operator's live scrape.
        let saw_metrics = revents.iter().any(|e| e.token == METRICS_LISTEN_TOKEN);
        if self.metrics_listener.is_some() && (saw_metrics || !self.reactor.is_epoll()) {
            self.accept_metrics();
        }
        let scrape_ready: Vec<u64> = if self.reactor.is_epoll() {
            revents
                .iter()
                .map(|e| e.token)
                .filter(|t| (METRICS_TOKEN_BASE..METRICS_LISTEN_TOKEN).contains(t))
                .collect()
        } else {
            self.metrics_conns.keys().copied().collect()
        };
        for token in scrape_ready {
            self.service_metrics(token);
        }

        // Collect the service set: explicit readiness, fired timers,
        // carried-over ready work, and every mem lane.
        let mut ready: Vec<u32> = Vec::new();
        let mut enqueue = |slots: &mut Vec<Slot<'d, T, E>>, slot: u32| {
            if let Some(s) = slots.get_mut(slot as usize) {
                if s.conn.is_some() && !s.queued {
                    s.queued = true;
                    ready.push(slot);
                }
            }
        };
        for ev in &revents {
            if ev.token == LISTEN_TOKEN || ev.token >= u32::MAX as u64 {
                continue;
            }
            enqueue(&mut self.slots, ev.token as u32);
        }
        let mut due: Vec<(u64, u64, Instant)> = Vec::new();
        let advance_now = Instant::now();
        self.wheel.advance_timed(advance_now, &mut due);
        for (token, generation, deadline) in due {
            let slot = token as u32;
            let live = self
                .slots
                .get(slot as usize)
                .and_then(|s| s.conn.as_ref())
                .is_some_and(|c| c.timer_gen == generation);
            if live {
                let drift = advance_now.saturating_duration_since(deadline);
                if let Some(reg) = &self.metrics {
                    reg.record_timer_fire();
                    reg.record_reactor(ReactorMetric::TimerDriftNs, drift.as_nanos() as u64);
                }
                if let Some(rec) = &self.recorder {
                    let epoch = self.slots[slot as usize].epoch;
                    rec.record(
                        FlightEventKind::TimerFire,
                        slot,
                        epoch,
                        drift.as_nanos() as u64,
                    );
                }
                enqueue(&mut self.slots, slot);
            }
        }
        for slot in std::mem::take(&mut self.ready_next) {
            enqueue(&mut self.slots, slot);
        }
        if self.mem_conns > 0 {
            for slot in 0..self.slots.len() as u32 {
                let is_mem = self.slots[slot as usize]
                    .conn
                    .as_ref()
                    .is_some_and(|c| matches!(c.lane, ConnLane::Mem(_)));
                if is_mem {
                    enqueue(&mut self.slots, slot);
                }
            }
        }

        for slot in ready {
            self.slots[slot as usize].queued = false;
            self.service(slot, &mut events);
        }
        events
    }

    /// Drives every attached session to completion, collecting their
    /// results; pending connections are left untouched. The client-side
    /// fan-out convenience used by tests and benchmarks.
    pub fn drive_all(&mut self) -> Vec<(ConnId, Result<T, E>, Option<Transcript>)> {
        let mut done = Vec::new();
        while self.active_sessions > 0 {
            for ev in self.poll(Duration::from_millis(100)) {
                if let AsyncEvent::Finished {
                    conn,
                    result,
                    transcript,
                } = ev
                {
                    done.push((conn, result, transcript));
                }
            }
        }
        // Non-draining: a later flush (or the serving layer's) simply
        // rewrites the file with more events.
        ppcs_telemetry::flush_trace_out();
        done
    }

    /// Drives one engine to completion across connection failures — the
    /// async mirror of
    /// [`Driver::drive_resumable`](crate::Driver::drive_resumable): the
    /// same [`KIND_RESUME`] handshake, the same unacknowledged-frame
    /// replay, the same session-logical budgets (wall clock from the
    /// first dial, wire bytes accumulated across every lane) and the
    /// same [`TransportError::Budget`] messages, so either party of a
    /// resumable session can run on the reactor path while the other
    /// blocks.
    ///
    /// `connect(attempt)` borrows a fresh lane per attempt from a
    /// caller-owned pool. A failed lane is *abandoned*, not dropped (the
    /// borrow outlives this call) — a peer relying on a prompt
    /// disconnect to notice the redial should cap its own receive
    /// window instead.
    ///
    /// Transcript recording is not supported in resumable mode —
    /// replayed frames would double-record — and is ignored.
    ///
    /// # Errors
    ///
    /// The role's own error once retries are exhausted or a
    /// non-retryable (codec/protocol) failure occurs.
    pub fn drive_resumable<C>(
        &mut self,
        engine: ProtocolEngine<'d, T, E>,
        opts: DriveOptions,
        policy: &RetryPolicy,
        mut connect: C,
    ) -> Result<T, E>
    where
        C: FnMut(u32) -> Result<&'d dyn Lane, TransportError>,
    {
        let _collector = opts.metrics.clone().map(ppcs_telemetry::install);
        let limits = opts.limits.clone().unwrap_or_default();
        let budgeted = opts.limits.is_some() || opts.cancel.is_some();
        let per_recv = opts.timeout.unwrap_or(DEFAULT_PER_RECV);
        // Budgets are session-logical: the wall clock starts at the
        // first dial and wire bytes accumulate across every lane.
        let started = Instant::now();
        let mut engine = engine;
        let mut sent_log: Vec<Frame> = Vec::new();
        let mut delivered: u64 = 0;
        let mut wire_total: u64 = 0;
        let mut attempt: u32 = 0;
        let mut jitter = policy.jitter_seed;
        loop {
            let lane = match connect(attempt) {
                Ok(l) => l,
                Err(e) => {
                    if policy.is_retryable(&e) && attempt + 1 < policy.max_attempts {
                        if let Some(reg) = &opts.metrics {
                            reg.record_retry();
                        }
                        std::thread::sleep(policy.delay_for(&e, attempt, &mut jitter));
                        attempt += 1;
                        continue;
                    }
                    return fail_engine(&mut engine, e);
                }
            };
            if attempt > 0 {
                if let Some(reg) = &opts.metrics {
                    reg.record_reconnect();
                }
            }
            self.session_seq += 1;
            let lane_bytes_before = lane.stats().total_bytes();
            let rounds_before = engine.rounds();
            let now = Instant::now();
            // Resumable sessions never occupy a slot: the sentinel slot
            // keeps their trace and recorder lines distinguishable from
            // every slotted connection.
            let id = ConnId {
                slot: u32::MAX,
                epoch: attempt,
            };
            let mut conn = Conn {
                lane: ConnLane::Mem(lane),
                session: Some(Session {
                    engine,
                    transcript: None,
                    metrics: opts.metrics.clone(),
                    limits: limits.clone(),
                    budgeted,
                    cancel: opts.cancel.clone(),
                    per_recv,
                    started,
                    recv_started: now,
                    bytes_before: lane_bytes_before,
                    frames_delivered: delivered,
                    last_kind: None,
                    stats_before: opts.metrics.is_some().then(|| lane.stats()),
                    rounds_before,
                    seq: self.session_seq,
                    resume: Some(ResumeState {
                        sent_log: std::mem::take(&mut sent_log),
                        wire_base: wire_total,
                    }),
                }),
                idle_deadline: None,
                timer_gen: 0,
            };
            let err: TransportError = 'attempt: {
                {
                    let s = conn.session.as_ref().expect("resumable session");
                    let ack = match resume_handshake(lane, s, policy, id, self.recorder.as_deref())
                    {
                        Ok(ack) => ack,
                        Err(e) => break 'attempt e,
                    };
                    let log = &s.resume.as_ref().expect("resume state").sent_log;
                    let Some(ack) = usize::try_from(ack).ok().filter(|&n| n <= log.len()) else {
                        break 'attempt TransportError::Decode(format!(
                            "resume ack {ack} exceeds {} sent frames",
                            log.len()
                        ));
                    };
                    let mut replay_failure = None;
                    for f in &log[ack..] {
                        if let Err(e) = lane.send(f.clone()) {
                            replay_failure = Some(e);
                            break;
                        }
                    }
                    if let Some(e) = replay_failure {
                        break 'attempt e;
                    }
                }
                let s = conn.session.as_mut().expect("resumable session");
                s.recv_started = Instant::now();
                loop {
                    match pump(id, &mut conn, self.recorder.as_deref()) {
                        PumpOutcome::Parked { .. } => {
                            // Mem lanes have no readiness events; probe
                            // at the same cadence `poll` would.
                            std::thread::sleep(MEM_POLL_SLICE);
                        }
                        PumpOutcome::Finished(boxed) => return (*boxed).0,
                        PumpOutcome::NeedsRedial(e) => break 'attempt e,
                    }
                }
            };
            // Recover the engine and redial bookkeeping from the failed
            // attempt; pump only merges telemetry on completion, so the
            // failure path merges this lane's share here.
            let mut s = conn.session.take().expect("resumable session");
            if let Some(reg) = &opts.metrics {
                merge_wire_delta(
                    reg,
                    s.stats_before.as_ref().expect("snapshotted"),
                    &lane.stats(),
                );
                reg.record_rounds(s.engine.rounds() - s.rounds_before);
            }
            wire_total += lane.stats().total_bytes() - lane_bytes_before;
            delivered = s.frames_delivered;
            let rs = s.resume.take().expect("resume state");
            sent_log = rs.sent_log;
            engine = s.engine;
            if err == TransportError::Timeout {
                if let Some(reg) = &opts.metrics {
                    reg.record_timeout();
                }
                ppcs_telemetry::warn_event("recv timeout", None, Some(engine.rounds()));
            }
            if policy.is_retryable(&err) && attempt + 1 < policy.max_attempts {
                if let Some(reg) = &opts.metrics {
                    reg.record_retry();
                }
                std::thread::sleep(policy.delay_for(&err, attempt, &mut jitter));
                attempt += 1;
                continue;
            }
            return fail_engine(&mut engine, err);
        }
    }

    fn accept_all(&mut self, events: &mut Vec<AsyncEvent<T, E>>) {
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => match self.add_tcp(stream) {
                    Ok(conn) => events.push(AsyncEvent::Accepted { conn }),
                    Err(_) => continue,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Services one connection: fill + flush its transport, then pump
    /// its session (or deliver pending frames).
    fn service(&mut self, slot: u32, events: &mut Vec<AsyncEvent<T, E>>) {
        let epoch = self.slots[slot as usize].epoch;
        let id = ConnId { slot, epoch };
        let Some(conn) = self.slots[slot as usize].conn.as_mut() else {
            return;
        };
        conn.timer_gen += 1;

        // Pull everything the transport has; sticky failures surface
        // through try_recv below.
        let fill_err = match &mut conn.lane {
            ConnLane::Tcp(nb) => {
                let r = nb.fill();
                if nb.wants_write() {
                    let _ = nb.flush();
                }
                if let Some(reg) = &self.metrics {
                    reg.record_reactor(
                        ReactorMetric::WriteBufDepth,
                        nb.pending_write_bytes() as u64,
                    );
                    if let Some(ns) = nb.take_stall_ns() {
                        reg.record_reactor(ReactorMetric::WritableStallNs, ns);
                    }
                }
                r.err()
            }
            ConnLane::Mem(_) => None,
        };

        if conn.session.is_some() {
            let outcome = pump(id, conn, self.recorder.as_deref());
            match outcome {
                // Unreachable from `service`: resume mode only runs
                // under `drive_resumable`, which pumps directly.
                PumpOutcome::NeedsRedial(_) => unreachable!("slotted sessions are not resumable"),
                PumpOutcome::Parked { wake_at } => {
                    if let Some(at) = wake_at {
                        if matches!(conn.lane, ConnLane::Tcp(_)) {
                            self.wheel.arm(at, u64::from(slot), conn.timer_gen);
                        }
                    }
                }
                PumpOutcome::Finished(boxed) => {
                    let (result, transcript) = *boxed;
                    conn.session = None;
                    self.active_sessions -= 1;
                    let buffered = match &conn.lane {
                        ConnLane::Tcp(nb) => nb.has_buffered(),
                        ConnLane::Mem(_) => false,
                    };
                    if buffered {
                        self.ready_next.push(slot);
                    }
                    if let Some(rec) = &self.recorder {
                        let detail = if result.is_ok() {
                            DETAIL_SESSION_OK
                        } else {
                            DETAIL_SESSION_ERR
                        };
                        rec.record(FlightEventKind::StateTransition, slot, epoch, detail);
                    }
                    events.push(AsyncEvent::Finished {
                        conn: id,
                        result,
                        transcript,
                    });
                }
            }
            return;
        }

        // Pending connection: deliver at most one frame per turn so the
        // caller can react (admit / shed / close) before the next one.
        match lane_try_recv(&mut conn.lane) {
            Ok(Some(frame)) => {
                let buffered = match &conn.lane {
                    ConnLane::Tcp(nb) => nb.has_buffered(),
                    ConnLane::Mem(_) => true,
                };
                if buffered {
                    self.ready_next.push(slot);
                }
                events.push(AsyncEvent::Opening { conn: id, frame });
            }
            Ok(None) => {
                if let Some(deadline) = conn.idle_deadline {
                    if Instant::now() >= deadline {
                        conn.idle_deadline = None;
                        events.push(AsyncEvent::IdleExpired { conn: id });
                    } else if matches!(conn.lane, ConnLane::Tcp(_)) {
                        self.wheel.arm(deadline, u64::from(slot), conn.timer_gen);
                    }
                }
            }
            Err(TransportError::Disconnected) => {
                events.push(AsyncEvent::Closed { conn: id });
                self.close(id);
            }
            Err(e) => {
                let fatal = matches!(conn.lane, ConnLane::Tcp(_));
                if let Some(rec) = &self.recorder {
                    rec.record(FlightEventKind::Malformed, slot, epoch, 0);
                }
                events.push(AsyncEvent::Malformed {
                    conn: id,
                    error: fill_err.unwrap_or(e),
                });
                if fatal {
                    self.close(id);
                }
            }
        }
    }

    fn accept_metrics(&mut self) {
        use std::os::fd::AsRawFd;
        loop {
            let accepted = match &self.metrics_listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_metrics_token;
                    self.next_metrics_token += 1;
                    if self.reactor.register(stream.as_raw_fd(), token).is_err() {
                        continue;
                    }
                    self.metrics_conns.insert(
                        token,
                        MetricsConn {
                            stream,
                            req: Vec::new(),
                            resp: Vec::new(),
                            sent: 0,
                        },
                    );
                    // Service immediately: the request may already be
                    // buffered, and the sleep backend has no edges.
                    self.service_metrics(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Advances one scrape connection: drain the request, render once
    /// the headers are complete, drain the response, close when sent.
    fn service_metrics(&mut self, token: u64) {
        use std::io::{Read, Write};
        let Some(mut mc) = self.metrics_conns.remove(&token) else {
            return;
        };
        let mut dead = false;
        if mc.resp.is_empty() {
            let mut buf = [0u8; 1024];
            loop {
                match mc.stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        mc.req.extend_from_slice(&buf[..n]);
                        if mc.req.len() > METRICS_REQ_CAP
                            || mc.req.windows(4).any(|w| w == b"\r\n\r\n")
                        {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                if mc.req.len() > METRICS_REQ_CAP {
                    mc.resp =
                        http_response(400, "text/plain; charset=utf-8", "request too large\n");
                } else if mc.req.windows(4).any(|w| w == b"\r\n\r\n") {
                    mc.resp = self.respond_http(&mc.req);
                }
            }
        }
        if !dead && !mc.resp.is_empty() {
            loop {
                if mc.sent >= mc.resp.len() {
                    // Fully sent: `Connection: close` semantics.
                    dead = true;
                    break;
                }
                match mc.stream.write(&mc.resp[mc.sent..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => mc.sent += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.reactor.deregister(token);
            // Dropping `mc` closes the stream.
        } else {
            self.metrics_conns.insert(token, mc);
        }
    }

    /// Routes one parsed HTTP-lite request to its response bytes.
    fn respond_http(&self, req: &[u8]) -> Vec<u8> {
        let head = String::from_utf8_lossy(req);
        let line = head.lines().next().unwrap_or("");
        let mut parts = line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        if method != "GET" {
            return http_response(405, "text/plain; charset=utf-8", "method not allowed\n");
        }
        match path.split('?').next().unwrap_or(path) {
            "/metrics" => http_response(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &self.render_metrics_page(),
            ),
            "/flightrecorder" => match &self.recorder {
                Some(rec) => http_response(200, "application/json", &rec.to_json()),
                None => http_response(
                    404,
                    "text/plain; charset=utf-8",
                    "no flight recorder attached\n",
                ),
            },
            _ => http_response(
                404,
                "text/plain; charset=utf-8",
                "not found; try /metrics or /flightrecorder\n",
            ),
        }
    }

    /// The `/metrics` body: the driver registry's exposition followed
    /// by the live connection table. Only sizes, counts, kinds, and
    /// timings — the privacy-cleanliness rule holds on this surface.
    fn render_metrics_page(&self) -> String {
        let mut out = match &self.metrics {
            Some(reg) => reg.render_prometheus(),
            None => String::new(),
        };
        let mut info = String::new();
        let mut rounds = String::new();
        let mut wire = String::new();
        let mut frames_left = String::new();
        let mut bytes_left = String::new();
        for (slot, s) in self.slots.iter().enumerate() {
            let Some(conn) = s.conn.as_ref() else {
                continue;
            };
            let label = format!("conn=\"{}.{}\"", slot, s.epoch);
            wire.push_str(&format!(
                "ppcs_conn_wire_bytes{{{label}}} {}\n",
                lane_stats(&conn.lane).total_bytes()
            ));
            match &conn.session {
                Some(sess) => {
                    let phase = sess
                        .metrics
                        .as_ref()
                        .and_then(|r| r.current_phase())
                        .map_or("", |p| p.name());
                    info.push_str(&format!(
                        "ppcs_conn_info{{{label},state=\"active\",phase=\"{phase}\"}} 1\n"
                    ));
                    rounds.push_str(&format!(
                        "ppcs_conn_rounds{{{label}}} {}\n",
                        sess.engine.rounds()
                    ));
                    if let Some(max) = sess.limits.max_frames {
                        frames_left.push_str(&format!(
                            "ppcs_conn_budget_frames_remaining{{{label}}} {}\n",
                            max.saturating_sub(sess.frames_delivered)
                        ));
                    }
                    if let Some(max) = sess.limits.max_wire_bytes {
                        let moved = lane_stats(&conn.lane)
                            .total_bytes()
                            .saturating_sub(sess.bytes_before);
                        bytes_left.push_str(&format!(
                            "ppcs_conn_budget_wire_bytes_remaining{{{label}}} {}\n",
                            max.saturating_sub(moved)
                        ));
                    }
                }
                None => {
                    info.push_str(&format!(
                        "ppcs_conn_info{{{label},state=\"pending\",phase=\"\"}} 1\n"
                    ));
                }
            }
        }
        let sections: [(&str, &str, &String); 5] = [
            (
                "ppcs_conn_info",
                "Live connection table: state and current protocol phase.",
                &info,
            ),
            (
                "ppcs_conn_rounds",
                "Protocol rounds completed by each live session.",
                &rounds,
            ),
            (
                "ppcs_conn_wire_bytes",
                "Wire bytes moved on each open connection.",
                &wire,
            ),
            (
                "ppcs_conn_budget_frames_remaining",
                "Frames left in each live session's frame budget.",
                &frames_left,
            ),
            (
                "ppcs_conn_budget_wire_bytes_remaining",
                "Wire bytes left in each live session's byte budget.",
                &bytes_left,
            ),
        ];
        for (name, help, body) in sections {
            if !body.is_empty() {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
                out.push_str(body);
            }
        }
        out
    }
}

/// A minimal `HTTP/1.0` response with `Connection: close` semantics.
fn http_response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        405 => "Method Not Allowed",
        _ => "Not Found",
    };
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

impl<T, E> std::fmt::Debug for AsyncDriver<'_, T, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncDriver")
            .field("conns", &self.conns)
            .field("active_sessions", &self.active_sessions)
            .field("epoll", &self.reactor.is_epoll())
            .finish()
    }
}

fn lane_stats(lane: &ConnLane<'_>) -> TrafficStats {
    match lane {
        ConnLane::Tcp(nb) => nb.stats(),
        ConnLane::Mem(l) => l.stats(),
    }
}

/// Nonblocking receive: `Ok(None)` = nothing yet (never `Timeout` —
/// deadlines are the timer wheel's job, see the normalization notes in
/// `tcp.rs`).
fn lane_try_recv(lane: &mut ConnLane<'_>) -> Result<Option<Frame>, TransportError> {
    match lane {
        ConnLane::Tcp(nb) => {
            nb.fill()?;
            nb.try_recv()
        }
        ConnLane::Mem(l) => {
            l.set_recv_timeout(Some(Duration::ZERO));
            match l.recv() {
                Ok(f) => Ok(Some(f)),
                Err(TransportError::Timeout) => Ok(None),
                Err(e) => Err(e),
            }
        }
    }
}

fn send_out(lane: &mut ConnLane<'_>, out: &Outgoing) -> Result<(), TransportError> {
    match lane {
        ConnLane::Tcp(nb) => {
            match out {
                Outgoing::Frame(f) => nb.queue(f)?,
                Outgoing::Batch(fs) => nb.queue(&coalesce_frames(fs)?)?,
            }
            // Opportunistic flush: backpressure is not an error, the
            // remainder rides the next writable event.
            nb.flush().map(|_| ())
        }
        ConnLane::Mem(l) => match out {
            Outgoing::Frame(f) => l.send(f.clone()),
            Outgoing::Batch(fs) => l.send_coalesced(fs),
        },
    }
}

/// One session pump: a faithful mirror of the blocking
/// `Driver::drive_loop`, stepping the engine, transmitting outputs,
/// enforcing budgets (identical messages, identical order), and
/// delivering frames — except that where the blocking loop would park
/// the thread in a sliced `recv`, this returns
/// [`PumpOutcome::Parked`] with the wake-up deadline for the timer
/// wheel.
fn pump<'d, T, E: From<TransportError>>(
    id: ConnId,
    conn: &mut Conn<'d, T, E>,
    recorder: Option<&FlightRecorder>,
) -> PumpOutcome<T, E> {
    let lane = &mut conn.lane;
    let s = conn.session.as_mut().expect("pump without session");
    // Engines poll on this thread, so installing the session's scope
    // here captures every protocol-phase span — and because the scope
    // carries (slot, epoch, seq), interleaved sessions attribute their
    // spans, trace lines, and trace-out events to the right ConnId.
    let _collector = s.metrics.clone().map(|reg| {
        ppcs_telemetry::install_scope(TraceScope::for_conn(reg, id.slot, id.epoch, s.seq))
    });
    let result: Result<T, E> = loop {
        if let Some(reg) = &s.metrics {
            reg.record_polls(1);
        }
        let mut send_failure: Option<TransportError> = None;
        while let Some(out) = s.engine.poll_output() {
            if let Some(t) = &mut s.transcript {
                t.record(Direction::Sent, &out);
            }
            if let Some(reg) = &s.metrics {
                for f in out.frames() {
                    reg.record_frame_size(f.payload.len() as u64);
                }
            }
            s.last_kind = out.frames().last().map(|f| f.kind);
            if let Some(rs) = &mut s.resume {
                // Log before transmitting: a frame lost mid-send must
                // be replayed after the redial too.
                rs.sent_log.extend(out.frames().iter().cloned());
            }
            if let Err(e) = send_out(lane, &out) {
                send_failure = Some(e);
                break;
            }
        }
        if let Some(e) = send_failure {
            if s.resume.is_some() {
                return PumpOutcome::NeedsRedial(e);
            }
            s.engine.inject_failure(e.clone());
            break match s.engine.take_result() {
                Some(r) => r,
                None => Err(E::from(e)),
            };
        }
        if s.engine.is_done() {
            break s.engine.take_result().expect("engine reported done");
        }
        if s.budgeted {
            // Resumable sessions budget bytes session-logically: wire
            // spent on previous lanes counts against this one.
            let wire_base = s.resume.as_ref().map_or(0, |rs| rs.wire_base);
            let wire = wire_base + lane_stats(lane).total_bytes() - s.bytes_before;
            if let Some(e) = budget_trip(s, wire) {
                note_budget(s, &e, id, recorder);
                if s.resume.is_some() {
                    return PumpOutcome::NeedsRedial(e);
                }
                break fail_engine(&mut s.engine, e);
            }
        }
        match lane_try_recv(lane) {
            Ok(Some(frame)) => {
                if frame.kind == KIND_BUSY {
                    // The peer shed this session before admission.
                    let e = TransportError::Busy {
                        retry_after_ms: busy_retry_after(&frame.payload),
                    };
                    if s.resume.is_some() {
                        return PumpOutcome::NeedsRedial(e);
                    }
                    break fail_engine(&mut s.engine, e);
                }
                if frame.kind == KIND_RESUME && s.resume.is_some() {
                    // A duplicate handshake ack raced the first session
                    // frame — drop it, it is not protocol traffic.
                    continue;
                }
                if let Some(t) = &mut s.transcript {
                    t.record_received(&frame);
                }
                if let Some(reg) = &s.metrics {
                    reg.record_frame_size(frame.payload.len() as u64);
                }
                s.frames_delivered += 1;
                s.last_kind = Some(frame.kind);
                s.engine.handle_input(frame);
                s.recv_started = Instant::now();
            }
            Ok(None) => {
                // Nothing to read. Either the per-recv deadline has
                // truly elapsed (a Timeout, same meaning as on the
                // blocking path) or the session parks until readiness
                // or the next relevant deadline.
                if s.recv_started.elapsed() >= s.per_recv {
                    let e = TransportError::Timeout;
                    if s.resume.is_some() {
                        // The outer redial loop records the timeout and
                        // warns, mirroring the blocking driver exactly.
                        return PumpOutcome::NeedsRedial(e);
                    }
                    if let Some(reg) = &s.metrics {
                        reg.record_timeout();
                    }
                    ppcs_telemetry::warn_event(
                        "recv timeout",
                        s.last_kind,
                        Some(s.engine.rounds()),
                    );
                    break fail_engine(&mut s.engine, e);
                }
                let mut wake = s.recv_started + s.per_recv;
                if let Some(deadline) = s.limits.deadline {
                    wake = wake.min(s.started + deadline);
                }
                if s.cancel.is_some() {
                    wake = wake.min(Instant::now() + CANCEL_SLICE);
                }
                return PumpOutcome::Parked {
                    wake_at: Some(wake),
                };
            }
            Err(e) => {
                if s.resume.is_some() {
                    return PumpOutcome::NeedsRedial(e);
                }
                if matches!(e, TransportError::Budget(_)) {
                    note_budget(s, &e, id, recorder);
                }
                if e == TransportError::Timeout {
                    if let Some(reg) = &s.metrics {
                        reg.record_timeout();
                    }
                    ppcs_telemetry::warn_event(
                        "recv timeout",
                        s.last_kind,
                        Some(s.engine.rounds()),
                    );
                }
                s.engine.inject_failure(e.clone());
                break match s.engine.take_result() {
                    Some(r) => r,
                    None => Err(E::from(e)),
                };
            }
        }
    };
    if let Some(reg) = &s.metrics {
        merge_wire_delta(
            reg,
            s.stats_before.as_ref().expect("snapshotted"),
            &lane_stats(lane),
        );
        reg.record_rounds(s.engine.rounds() - s.rounds_before);
    }
    let transcript = s.transcript.take();
    PumpOutcome::Finished(Box::new((result, transcript)))
}

/// The budget that has tripped, if any — cancel first (a drain cut
/// overrides any remaining allowance), then wall-clock, frames, wire
/// bytes, with messages identical to the blocking driver's.
fn budget_trip<T, E>(s: &Session<'_, T, E>, wire_bytes: u64) -> Option<TransportError> {
    if let Some(cancel) = &s.cancel {
        if cancel.load(Ordering::Relaxed) {
            return Some(TransportError::Budget(
                "session cancelled (drain cut)".into(),
            ));
        }
    }
    if let Some(deadline) = s.limits.deadline {
        if s.started.elapsed() >= deadline {
            return Some(TransportError::Budget(format!(
                "wall-clock deadline {deadline:?} elapsed"
            )));
        }
    }
    if let Some(max) = s.limits.max_frames {
        if s.frames_delivered >= max {
            return Some(TransportError::Budget(format!(
                "frame budget {max} exhausted"
            )));
        }
    }
    if let Some(max) = s.limits.max_wire_bytes {
        if wire_bytes > max {
            return Some(TransportError::Budget(format!(
                "wire-byte budget {max} exceeded ({wire_bytes} bytes moved)"
            )));
        }
    }
    None
}

/// The announcing half of the [`KIND_RESUME`] handshake on a fresh
/// lane, mirroring the blocking `pump_resumable` exactly: budget check
/// first (a pre-tripped deadline or drain cut never waits out the
/// window), the resume window clamped to the remaining session
/// deadline, then announce our delivered count and wait for the peer's
/// ack.
fn resume_handshake<T, E>(
    lane: &dyn Lane,
    s: &Session<'_, T, E>,
    policy: &RetryPolicy,
    id: ConnId,
    recorder: Option<&FlightRecorder>,
) -> Result<u64, TransportError> {
    let wire_base = s.resume.as_ref().map_or(0, |rs| rs.wire_base);
    let mut window = policy.resume_window;
    if s.budgeted {
        if let Some(e) = budget_trip(s, wire_base) {
            note_budget(s, &e, id, recorder);
            return Err(e);
        }
        if let Some(deadline) = s.limits.deadline {
            let remaining = deadline.saturating_sub(s.started.elapsed());
            window = window.min(remaining).max(Duration::from_millis(1));
        }
    }
    lane.set_recv_timeout(Some(window));
    lane.send(Frame::encode(KIND_RESUME, &s.frames_delivered))?;
    loop {
        let f = match lane.recv() {
            Err(TransportError::Timeout) if s.budgeted => {
                if let Some(e) = budget_trip(s, wire_base) {
                    note_budget(s, &e, id, recorder);
                    return Err(e);
                }
                return Err(TransportError::Timeout);
            }
            other => other?,
        };
        if f.kind == KIND_BUSY {
            // The peer shed this session: without a retry-after hint
            // this is terminal (the same overloaded server would shed
            // the redial too); with one, the outer loop redials after
            // the hinted delay.
            return Err(TransportError::Busy {
                retry_after_ms: busy_retry_after(&f.payload),
            });
        }
        if f.kind == KIND_RESUME {
            return f.decode_as::<u64>(KIND_RESUME);
        }
        // A stale in-flight frame from before the reconnect: drop it.
        // Whatever we have not acknowledged, the peer replays.
    }
}

fn note_budget<T, E>(
    s: &Session<'_, T, E>,
    e: &TransportError,
    id: ConnId,
    recorder: Option<&FlightRecorder>,
) {
    if let Some(reg) = &s.metrics {
        reg.record_budget_exceeded();
    }
    if let Some(rec) = recorder {
        rec.record(
            FlightEventKind::BudgetTrip,
            id.slot,
            id.epoch,
            s.frames_delivered,
        );
    }
    ppcs_telemetry::warn_event(&e.to_string(), s.last_kind, Some(s.engine.rounds()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::duplex;
    use crate::driver::Driver;
    use crate::engine::FrameIo;

    /// A toy echo protocol: the responder doubles `rounds` numbers, the
    /// requester checks them.
    async fn requester(io: FrameIo, rounds: u64) -> Result<u64, TransportError> {
        let mut acc = 0u64;
        for i in 0..rounds {
            io.send_msg(0x0100, &i)?;
            let doubled: u64 = io.recv_msg(0x0101).await?;
            if doubled != i * 2 {
                return Err(TransportError::Decode(format!(
                    "expected {} got {doubled}",
                    i * 2
                )));
            }
            acc += doubled;
        }
        Ok(acc)
    }

    async fn responder(io: FrameIo, rounds: u64) -> Result<u64, TransportError> {
        for _ in 0..rounds {
            let n: u64 = io.recv_msg(0x0100).await?;
            io.send_msg(0x0101, &(n * 2))?;
        }
        Ok(rounds)
    }

    #[test]
    fn async_matches_blocking_transcript_on_duplex() {
        // Blocking baseline.
        let (a1, b1) = duplex();
        let baseline = std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut engine = ProtocolEngine::new(|io| responder(io, 5));
                Driver::new().drive(&b1, &mut engine).expect("responder")
            });
            let mut engine = ProtocolEngine::new(|io| requester(io, 5));
            let mut driver = Driver::new().with_recording();
            let result = driver.drive(&a1, &mut engine).expect("requester");
            (result, driver.take_transcript().expect("recorded"))
        });

        // Async run, same roles, same seeds.
        let (a2, b2) = duplex();
        let (result, transcript) = std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut engine = ProtocolEngine::new(|io| responder(io, 5));
                Driver::new().drive(&b2, &mut engine).expect("responder")
            });
            let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
            let conn = ad.add_lane(&a2);
            ad.attach_engine(
                conn,
                ProtocolEngine::new(|io| requester(io, 5)),
                DriveOptions::new().with_recording(),
            );
            let mut done = ad.drive_all();
            assert_eq!(done.len(), 1);
            let (id, result, transcript) = done.pop().expect("one session");
            assert_eq!(id, conn);
            (result.expect("requester"), transcript.expect("recorded"))
        });

        assert_eq!(result, baseline.0);
        assert_eq!(transcript, baseline.1, "byte-identical transcripts");
        assert_eq!(transcript.to_bytes(), baseline.1.to_bytes());
    }

    #[test]
    fn async_multiplexes_many_duplex_sessions_on_one_thread() {
        const N: usize = 32;
        let pairs: Vec<_> = (0..N).map(|_| duplex()).collect();
        std::thread::scope(|scope| {
            for (_, b) in &pairs {
                scope.spawn(move || {
                    let mut engine = ProtocolEngine::new(|io| responder(io, 3));
                    Driver::new().drive(b, &mut engine).expect("responder")
                });
            }
            let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
            for (a, _) in &pairs {
                let conn = ad.add_lane(a);
                ad.attach_engine(
                    conn,
                    ProtocolEngine::new(|io| requester(io, 3)),
                    DriveOptions::new(),
                );
            }
            let done = ad.drive_all();
            assert_eq!(done.len(), N);
            for (_, result, _) in done {
                assert_eq!(result.expect("session"), 0 + 2 + 4);
            }
        });
    }

    #[test]
    fn async_tcp_session_against_blocking_peer() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let ep = crate::tcp::tcp_accept(&listener).expect("accept");
                let mut engine = ProtocolEngine::new(|io| responder(io, 4));
                Driver::new().drive(&ep, &mut engine).expect("responder")
            });
            let stream = TcpStream::connect(addr).expect("connect");
            let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
            let conn = ad.add_tcp(stream).expect("add");
            ad.attach_engine(
                conn,
                ProtocolEngine::new(|io| requester(io, 4)),
                DriveOptions::new(),
            );
            let done = ad.drive_all();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].1.as_ref().expect("result"), &(0 + 2 + 4 + 6));
        });
    }

    #[test]
    fn budget_messages_match_the_blocking_driver() {
        // Frame budget: the engine wants 3 exchanges, the budget allows
        // one delivered frame.
        let (a, b) = duplex();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut engine = ProtocolEngine::new(|io| responder(io, 3));
                let _ = Driver::new().drive(&b, &mut engine);
            });
            let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
            let conn = ad.add_lane(&a);
            ad.attach_engine(
                conn,
                ProtocolEngine::new(|io| requester(io, 3)),
                DriveOptions::new().with_limits(SessionLimits::unlimited().with_max_frames(1)),
            );
            let done = ad.drive_all();
            let err = done[0].1.as_ref().expect_err("budget must trip");
            assert_eq!(
                err,
                &TransportError::Budget("frame budget 1 exhausted".into()),
                "identical message to the blocking driver"
            );
        });
    }

    #[test]
    fn cancel_token_cuts_a_parked_session() {
        let (a, _b) = duplex();
        let cancel = Arc::new(AtomicBool::new(false));
        let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
        let conn = ad.add_lane(&a);
        ad.attach_engine(
            conn,
            ProtocolEngine::new(|io| requester(io, 1)),
            DriveOptions::new().with_cancel(cancel.clone()),
        );
        // Let it park waiting for the reply that will never come.
        let _ = ad.poll(Duration::from_millis(5));
        cancel.store(true, Ordering::Release);
        let started = Instant::now();
        let done = loop {
            let mut finished = Vec::new();
            for ev in ad.poll(Duration::from_millis(20)) {
                if let AsyncEvent::Finished { result, .. } = ev {
                    finished.push(result);
                }
            }
            if !finished.is_empty() {
                break finished;
            }
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "cancel never observed"
            );
        };
        let err = done[0].as_ref().expect_err("cancelled");
        assert_eq!(
            err,
            &TransportError::Budget("session cancelled (drain cut)".into())
        );
    }

    #[test]
    fn per_recv_timeout_comes_from_the_timer_wheel() {
        let (a, _b) = duplex();
        let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
        let conn = ad.add_lane(&a);
        ad.attach_engine(
            conn,
            ProtocolEngine::new(|io| requester(io, 1)),
            DriveOptions::new().with_timeout(Duration::from_millis(30)),
        );
        let started = Instant::now();
        let done = ad.drive_all();
        assert!(
            started.elapsed() >= Duration::from_millis(25),
            "deadline observed, not WouldBlock-as-Timeout"
        );
        let err = done[0].1.as_ref().expect_err("timed out");
        assert_eq!(err, &TransportError::Timeout);
    }

    #[test]
    fn busy_frame_translates_to_busy_error() {
        let (a, b) = duplex();
        let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
        let conn = ad.add_lane(&a);
        ad.attach_engine(
            conn,
            ProtocolEngine::new(|io| requester(io, 1)),
            DriveOptions::new(),
        );
        b.send(Frame {
            kind: KIND_BUSY,
            payload: bytes::Bytes::new(),
        })
        .expect("send busy");
        let done = ad.drive_all();
        assert_eq!(
            done[0].1.as_ref().expect_err("shed"),
            &TransportError::Busy {
                retry_after_ms: None
            }
        );
    }

    #[test]
    fn pending_lane_surfaces_opening_frame_and_idle_expiry() {
        let (a, b) = duplex();
        let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
        let conn = ad.add_lane(&a);
        ad.set_idle_deadline(conn, Some(Duration::from_millis(40)));
        b.send(Frame::encode(0x0500, &7u64)).expect("send hello");
        let started = Instant::now();
        let frame = 'outer: loop {
            for ev in ad.poll(Duration::from_millis(10)) {
                if let AsyncEvent::Opening { conn: c, frame } = ev {
                    assert_eq!(c, conn);
                    break 'outer frame;
                }
            }
            assert!(started.elapsed() < Duration::from_secs(5), "no opening");
        };
        assert_eq!(frame.kind, 0x0500);
        // No engine attached, no more frames: the idle deadline fires.
        ad.set_idle_deadline(conn, Some(Duration::from_millis(30)));
        let started = Instant::now();
        'idle: loop {
            for ev in ad.poll(Duration::from_millis(10)) {
                if let AsyncEvent::IdleExpired { conn: c } = ev {
                    assert_eq!(c, conn);
                    break 'idle;
                }
            }
            assert!(started.elapsed() < Duration::from_secs(5), "no idle event");
        }
    }

    #[test]
    fn metrics_endpoint_scrapes_from_the_reactor_thread() {
        use std::io::{Read, Write};
        let reg = MetricsRegistry::new(1, "async-driver");
        let recorder = FlightRecorder::new(64);
        let (a, _b) = duplex();
        let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
        ad = ad.with_metrics(reg);
        ad.set_flight_recorder(recorder.clone());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        ad.listen_metrics(listener).expect("listen_metrics");
        let addr = ad.metrics_addr().expect("addr");
        let conn = ad.add_lane(&a);
        ad.attach_engine(
            conn,
            ProtocolEngine::new(|io| requester(io, 1)),
            DriveOptions::new().with_limits(SessionLimits::unlimited().with_max_frames(9)),
        );
        let _ = ad.poll(Duration::from_millis(5));

        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("req");
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        let mut body = Vec::new();
        let started = Instant::now();
        loop {
            let _ = ad.poll(Duration::from_millis(5));
            let mut buf = [0u8; 4096];
            match stream.read(&mut buf) {
                Ok(0) => break, // Connection: close — response complete.
                Ok(n) => body.extend_from_slice(&buf[..n]),
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("scrape read failed: {e}"),
            }
            assert!(started.elapsed() < Duration::from_secs(5), "scrape hung");
        }
        let text = String::from_utf8(body).expect("utf8");
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(text.contains("ppcs_reactor_wakeups_total"), "{text}");
        assert!(
            text.contains("ppcs_conn_info{conn=\"0.0\",state=\"active\""),
            "live session table present: {text}"
        );
        assert!(
            text.contains("ppcs_conn_budget_frames_remaining{conn=\"0.0\"}"),
            "budget remaining present: {text}"
        );
        // The admission landed in the flight recorder too.
        let events = recorder.snapshot();
        assert!(
            events
                .iter()
                .any(|e| e.kind == FlightEventKind::Admitted && e.conn_slot == 0),
            "{events:?}"
        );
    }

    #[test]
    fn closed_conn_ids_are_not_reused_against_stale_handles() {
        let (a, b) = duplex();
        let (c, _d) = duplex();
        let mut ad: AsyncDriver<'_, u64, TransportError> = AsyncDriver::new().expect("driver");
        let first = ad.add_lane(&a);
        ad.close(first);
        let second = ad.add_lane(&c);
        assert_ne!(first, second, "epoch distinguishes the recycled slot");
        assert!(!ad.is_open(first));
        assert!(ad.is_open(second));
        drop(b);
    }
}
