//! Sans-I/O protocol engines.
//!
//! A protocol *role* (OT sender, OMPE receiver, classification trainer, …)
//! is written as an `async fn` over a [`FrameIo`] mailbox: it pushes
//! outbound [`Frame`]s and awaits inbound ones, but never touches a
//! socket, a channel, or a clock. The compiler-generated future *is* the
//! protocol state machine; [`ProtocolEngine`] polls it with a no-op waker
//! and exposes the classic sans-I/O surface —
//! [`poll_output`](ProtocolEngine::poll_output) /
//! [`handle_input`](ProtocolEngine::handle_input) /
//! [`is_done`](ProtocolEngine::is_done) — so the same role logic runs over
//! in-memory duplex, coalesced lanes, or TCP, driven by
//! [`Driver`](crate::Driver), a deterministic in-process pump
//! ([`run_engine_pair`](crate::run_engine_pair)), or a recorded transcript
//! ([`replay`](crate::replay)).
//!
//! No executor is involved: a role future only ever suspends on
//! [`FrameIo::recv`], which is ready exactly when the driver has pushed a
//! frame (or injected a failure), so polling after each input is both
//! necessary and sufficient to make progress.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

use crate::channel::{coalesce_frames, Frame};
use crate::error::{ProtocolError, TransportError};
use crate::wire::Encodable;

/// A frame queued by a role for the driver to transmit: either a single
/// frame or a batch the driver must coalesce into one wire frame (the
/// sans-I/O analogue of [`Endpoint::send_coalesced`](crate::Endpoint::send_coalesced)).
#[derive(Clone, Debug, PartialEq)]
pub enum Outgoing {
    /// One logical frame, sent as-is.
    Frame(Frame),
    /// A batch to coalesce into a single wire frame.
    Batch(Vec<Frame>),
}

impl Outgoing {
    /// The logical frames carried, batch or not.
    pub fn frames(&self) -> &[Frame] {
        match self {
            Self::Frame(f) => std::slice::from_ref(f),
            Self::Batch(fs) => fs,
        }
    }

    /// The exact bytes this output puts on the wire (coalesced batches
    /// share headers, so this is *not* the sum of the logical frames).
    pub fn wire_len(&self) -> usize {
        match self {
            Self::Frame(f) => f.wire_len(),
            Self::Batch(fs) => coalesce_frames(fs).map_or(0, |f| f.wire_len()),
        }
    }
}

/// Shared mailbox state between a role future and its engine.
#[derive(Debug, Default)]
struct Mailbox {
    inbox: VecDeque<Frame>,
    outbox: VecDeque<Outgoing>,
    /// A transport failure injected by the driver; once set, every recv
    /// (pending or future) resolves to this error so the role surfaces
    /// its own typed error exactly as the blocking path would.
    failure: Option<TransportError>,
    /// Frames the role has consumed so far — the "round" attached to
    /// [`ProtocolError`] context.
    frames_handled: u64,
}

/// The I/O handle a protocol role talks to instead of an
/// [`Endpoint`](crate::Endpoint): sends buffer into an outbox the engine
/// drains, receives await an inbox the engine fills.
///
/// Clones share the same mailbox; the engine keeps one clone and hands
/// another to the role future.
#[derive(Clone, Debug, Default)]
pub struct FrameIo {
    mailbox: Arc<Mutex<Mailbox>>,
}

impl FrameIo {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a frame for transmission.
    ///
    /// # Errors
    ///
    /// Returns the injected transport failure if the driver has reported
    /// one (mirroring a blocking `Endpoint::send` failing).
    pub fn send(&self, frame: Frame) -> Result<(), TransportError> {
        let mut mb = self.mailbox.lock();
        if let Some(e) = &mb.failure {
            return Err(e.clone());
        }
        mb.outbox.push_back(Outgoing::Frame(frame));
        Ok(())
    }

    /// Encodes and queues a message in one call.
    ///
    /// # Errors
    ///
    /// Same as [`FrameIo::send`].
    pub fn send_msg<T: Encodable>(&self, kind: u16, body: &T) -> Result<(), TransportError> {
        self.send(Frame::encode(kind, body))
    }

    /// Queues a batch for coalesced transmission — one wire frame carries
    /// the whole batch, exactly like
    /// [`Endpoint::send_coalesced`](crate::Endpoint::send_coalesced).
    ///
    /// # Errors
    ///
    /// [`TransportError::Decode`] for an empty batch, or the injected
    /// transport failure.
    pub fn send_coalesced(&self, frames: &[Frame]) -> Result<(), TransportError> {
        if frames.is_empty() {
            return Err(TransportError::Decode(
                "cannot coalesce an empty frame batch".into(),
            ));
        }
        let mut mb = self.mailbox.lock();
        if let Some(e) = &mb.failure {
            return Err(e.clone());
        }
        mb.outbox.push_back(Outgoing::Batch(frames.to_vec()));
        Ok(())
    }

    /// Awaits the next inbound frame.
    ///
    /// Resolves as soon as the driver has pushed a frame, or to the
    /// injected transport failure if the connection died.
    pub fn recv(&self) -> RecvFut<'_> {
        RecvFut { io: self }
    }

    /// Awaits and decodes a message of the expected kind.
    ///
    /// # Errors
    ///
    /// Any [`TransportError`] from the driver or from
    /// [`Frame::decode_as`].
    pub async fn recv_msg<T: Encodable>(&self, expected_kind: u16) -> Result<T, TransportError> {
        self.recv().await?.decode_as(expected_kind)
    }

    fn push_inbound(&self, frame: Frame) {
        self.mailbox.lock().inbox.push_back(frame);
    }

    fn pop_outbound(&self) -> Option<Outgoing> {
        self.mailbox.lock().outbox.pop_front()
    }

    fn fail(&self, err: TransportError) {
        self.mailbox.lock().failure.get_or_insert(err);
    }

    fn frames_handled(&self) -> u64 {
        self.mailbox.lock().frames_handled
    }
}

/// Future returned by [`FrameIo::recv`].
#[derive(Debug)]
pub struct RecvFut<'a> {
    io: &'a FrameIo,
}

impl Future for RecvFut<'_> {
    type Output = Result<Frame, TransportError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut mb = self.io.mailbox.lock();
        if let Some(frame) = mb.inbox.pop_front() {
            mb.frames_handled += 1;
            return Poll::Ready(Ok(frame));
        }
        if let Some(e) = &mb.failure {
            return Poll::Ready(Err(e.clone()));
        }
        Poll::Pending
    }
}

/// A protocol role lifted to a pollable sans-I/O state machine.
///
/// Construct with [`ProtocolEngine::new`] from a closure mapping a
/// [`FrameIo`] to the role future; the engine owns both and steps the
/// future whenever output is polled or input arrives. `T` is the role's
/// result, `E` its crate-level error type — the same types the blocking
/// API returns, so driving an engine is observationally identical to the
/// pre-refactor blocking call.
///
/// Engines are deliberately *not* `Send`: role futures borrow the
/// caller's RNG (`&mut dyn RngCore`), and each party constructs and
/// drives its engine on its own thread.
pub struct ProtocolEngine<'a, T, E> {
    io: FrameIo,
    future: Pin<Box<dyn Future<Output = Result<T, E>> + 'a>>,
    result: Option<Result<T, E>>,
}

impl<'a, T, E> ProtocolEngine<'a, T, E> {
    /// Builds an engine from a role: the closure receives the engine's
    /// mailbox handle and returns the role future.
    pub fn new<F, Fut>(role: F) -> Self
    where
        F: FnOnce(FrameIo) -> Fut,
        Fut: Future<Output = Result<T, E>> + 'a,
    {
        let io = FrameIo::new();
        let future = Box::pin(role(io.clone()));
        Self {
            io,
            future,
            result: None,
        }
    }

    /// Steps the role future until it suspends (needs input) or
    /// completes. Safe to call at any time; a completed engine is not
    /// re-polled.
    fn step(&mut self) {
        if self.result.is_some() {
            return;
        }
        let mut cx = Context::from_waker(Waker::noop());
        if let Poll::Ready(r) = self.future.as_mut().poll(&mut cx) {
            self.result = Some(r);
        }
    }

    /// Returns the next output to transmit, stepping the state machine
    /// first so freshly-produced frames are visible. `None` means the
    /// engine needs input (or is done).
    pub fn poll_output(&mut self) -> Option<Outgoing> {
        self.step();
        self.io.pop_outbound()
    }

    /// Feeds one inbound frame and steps the state machine.
    pub fn handle_input(&mut self, frame: Frame) {
        self.io.push_inbound(frame);
        self.step();
    }

    /// Reports a transport failure to the role: any pending or future
    /// receive resolves to `err`, letting the role produce the same typed
    /// error its blocking counterpart would.
    pub fn inject_failure(&mut self, err: TransportError) {
        self.io.fail(err);
        self.step();
    }

    /// True once the role future has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.result.is_some()
    }

    /// Number of inbound frames the role has consumed — the "round"
    /// counter used for error context.
    pub fn rounds(&self) -> u64 {
        self.io.frames_handled()
    }

    /// The role's error, if it failed (borrowing; see
    /// [`take_result`](Self::take_result) to consume).
    pub fn error(&self) -> Option<&E> {
        match &self.result {
            Some(Err(e)) => Some(e),
            _ => None,
        }
    }

    /// Takes the completed result, if any.
    pub fn take_result(&mut self) -> Option<Result<T, E>> {
        self.result.take()
    }
}

impl<T, E> std::fmt::Debug for ProtocolEngine<'_, T, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolEngine")
            .field("done", &self.result.is_some())
            .field("rounds", &self.io.frames_handled())
            .finish_non_exhaustive()
    }
}

/// Object-safe view of a protocol engine, speaking the layered
/// [`ProtocolError`] taxonomy so heterogeneous engines (different result
/// and error types) can be pumped by the same driver code.
pub trait Engine {
    /// Next output to transmit, or `None` if the engine needs input.
    fn poll_output(&mut self) -> Option<Outgoing>;

    /// Feeds one inbound frame.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] carrying the frame kind and round
    /// context if the role fails while (or after) consuming this frame.
    fn handle_input(&mut self, frame: Frame) -> Result<(), ProtocolError>;

    /// True once the role has completed.
    fn is_done(&self) -> bool;
}

impl<T, E> Engine for ProtocolEngine<'_, T, E>
where
    E: Clone + Into<ProtocolError>,
{
    fn poll_output(&mut self) -> Option<Outgoing> {
        ProtocolEngine::poll_output(self)
    }

    fn handle_input(&mut self, frame: Frame) -> Result<(), ProtocolError> {
        let kind = frame.kind;
        ProtocolEngine::handle_input(self, frame);
        let round = self.rounds();
        match self.error() {
            Some(e) => Err(e.clone().into().with_frame_kind(kind).with_round(round)),
            None => Ok(()),
        }
    }

    fn is_done(&self) -> bool {
        ProtocolEngine::is_done(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorLayer;

    /// A toy role: receive two u64 frames, reply with their sum, done.
    async fn adder(io: FrameIo) -> Result<u64, TransportError> {
        let a = io.recv_msg::<u64>(1).await?;
        let b = io.recv_msg::<u64>(1).await?;
        io.send_msg(2, &(a + b))?;
        Ok(a + b)
    }

    #[test]
    fn engine_steps_through_a_round() {
        let mut eng = ProtocolEngine::new(adder);
        assert!(ProtocolEngine::poll_output(&mut eng).is_none());
        assert!(!eng.is_done());
        eng.handle_input(Frame::encode(1, &2u64));
        assert!(ProtocolEngine::poll_output(&mut eng).is_none());
        eng.handle_input(Frame::encode(1, &3u64));
        let out = ProtocolEngine::poll_output(&mut eng).expect("sum frame");
        assert_eq!(out, Outgoing::Frame(Frame::encode(2, &5u64)));
        assert!(eng.is_done());
        assert_eq!(eng.take_result(), Some(Ok(5)));
        assert_eq!(eng.rounds(), 2);
    }

    #[test]
    fn queued_frames_drain_in_one_step() {
        let mut eng = ProtocolEngine::new(adder);
        // Both inputs queued before any stepping: one step consumes both.
        eng.io.push_inbound(Frame::encode(1, &10u64));
        eng.io.push_inbound(Frame::encode(1, &20u64));
        let out = ProtocolEngine::poll_output(&mut eng).expect("sum frame");
        assert_eq!(out.frames()[0].decode_as::<u64>(2).unwrap(), 30);
    }

    #[test]
    fn injected_failure_surfaces_as_typed_error() {
        let mut eng = ProtocolEngine::new(adder);
        eng.handle_input(Frame::encode(1, &1u64));
        eng.inject_failure(TransportError::Disconnected);
        assert!(eng.is_done());
        assert_eq!(eng.take_result(), Some(Err(TransportError::Disconnected)));
    }

    #[test]
    fn erased_engine_attaches_context() {
        let mut eng = ProtocolEngine::new(adder);
        // Wrong kind: the role's recv_msg fails with UnexpectedFrame.
        let err = Engine::handle_input(&mut eng, Frame::encode(9, &1u64)).unwrap_err();
        assert_eq!(err.layer(), ErrorLayer::Codec);
        assert_eq!(err.frame_kind(), Some(9));
        assert_eq!(err.round(), Some(1));
    }

    #[test]
    fn coalesced_output_is_one_batch() {
        let mut eng: ProtocolEngine<'_, (), TransportError> =
            ProtocolEngine::new(|io| async move {
                io.send_coalesced(&[Frame::encode(1, &1u64), Frame::encode(1, &2u64)])?;
                io.send_msg(3, &3u64)?;
                Ok(())
            });
        let first = ProtocolEngine::poll_output(&mut eng).expect("batch");
        assert!(matches!(&first, Outgoing::Batch(b) if b.len() == 2));
        assert_eq!(first.frames().len(), 2);
        let second = ProtocolEngine::poll_output(&mut eng).expect("single");
        assert!(matches!(second, Outgoing::Frame(_)));
        assert!(eng.is_done());
    }
}
