//! # ppcs-transport
//!
//! The two-party messaging substrate for the ppcs protocols: in-memory
//! duplex channels with per-endpoint traffic accounting, a compact wire
//! codec, and a scoped-thread party runner.
//!
//! Every protocol in this workspace (`ppcs-ot`, `ppcs-ompe`, `ppcs-core`)
//! is written sans-I/O against [`FrameIo`] — the role logic is a pure
//! state machine ([`ProtocolEngine`]) that never sees a socket — and the
//! [`Driver`] pumps any engine over any [`Endpoint`] backend: in-memory
//! duplex, coalesced lanes, or TCP. The traffic counters report exactly
//! what would cross the network, and any session can be captured to a
//! byte-serializable [`Transcript`] and re-driven deterministically with
//! [`replay`].
//!
//! ## Example
//!
//! ```
//! use ppcs_transport::{run_pair, Frame};
//!
//! let (bytes_sent, hello) = run_pair(
//!     |ep| {
//!         ep.send_msg(1, &vec![104u8, 105]).expect("send");
//!         ep.stats().bytes_sent
//!     },
//!     |ep| ep.recv_msg::<Vec<u8>>(1).expect("recv"),
//! );
//! assert_eq!(hello, b"hi");
//! assert_eq!(bytes_sent, (hello.len() + 8 + Frame::HEADER_LEN) as u64);
//! ```

// `deny` rather than `forbid`: the epoll reactor needs one `#[allow]`d
// module of raw syscall shims (`reactor::sys`) because the workspace is
// fully vendored and does not ship libc bindings. Everything else in the
// crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod async_driver;
mod channel;
mod driver;
mod engine;
mod error;
mod fault;
mod health;
mod reactor;
mod tcp;
mod wire;

pub use async_driver::{AsyncDriver, AsyncEvent, ConnId, DriveOptions};

pub use channel::{
    coalesce_frames, duplex, duplex_pool, run_pair, Endpoint, Frame, KindTraffic, Lane,
    TrafficStats, KIND_COALESCED, MAX_COALESCED_FRAMES,
};
pub use driver::{
    busy_frame, busy_retry_after, drive_blocking, replay, run_engine_pair, Direction, Driver,
    RetryPolicy, SessionLimits, Transcript, TranscriptEntry, KIND_BUSY, KIND_RESUME,
};
pub use engine::{Engine, FrameIo, Outgoing, ProtocolEngine, RecvFut};
pub use error::{ErrorLayer, ProtocolError, TransportError};
pub use fault::{faulty_pair, FaultKind, FaultSchedule, FaultStats, FaultyLane, KIND_CHAOS};
pub use health::{probe_health, probe_health_cancellable, HealthStatus, KIND_HEALTH};
pub use reactor::{Reactor, ReactorEvent, TimerWheel, Waker};
pub use tcp::{tcp_accept, tcp_connect};
pub use wire::{decode_seq, encode_seq, Encodable};
