//! The fleet liveness/readiness probe: a [`KIND_HEALTH`] request/reply
//! exchange answerable by both serving runtimes **without admitting a
//! session**.
//!
//! A probe costs the server one frame in each direction and no session
//! slot: the blocking serve loop and the async reactor both answer it
//! from their pre-admission dispatch, even while at capacity or
//! draining. The reply ([`HealthStatus`]) carries everything a fleet
//! router needs to triage a replica:
//!
//! * **`epoch`** — the serving process's incarnation. A restarted
//!   trainer advertises a fresh epoch, so clients holding warm-session
//!   tickets or resumable sessions from the previous incarnation know
//!   their server-side state (spec announcements, resume send-logs) is
//!   gone and fall back to a cold start instead of replaying into it.
//! * **`draining`** — admission has stopped; route new sessions
//!   elsewhere.
//! * **`pool_depth`** — precomputed offline packs ready right now; a
//!   deeper pool means lower first-round latency.
//! * **`active_sessions`** — current load, for least-loaded routing.

use std::time::Duration;

use bytes::{Bytes, BytesMut};

use crate::channel::{Frame, Lane};
use crate::driver::{busy_retry_after, KIND_BUSY};
use crate::error::TransportError;
use crate::wire::Encodable;

/// Frame kind for the liveness/readiness probe. An empty-payload
/// `KIND_HEALTH` frame is the request; the reply is a `KIND_HEALTH`
/// frame carrying an encoded [`HealthStatus`]. Reserved next to
/// [`KIND_BUSY`](crate::KIND_BUSY); protocols never see it, and servers
/// answer it before (and instead of) admission.
pub const KIND_HEALTH: u16 = 0x00FC;

/// One replica's answer to a [`KIND_HEALTH`] probe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthStatus {
    /// The serving process's incarnation: bumped across a crash/restart
    /// so clients can detect that warm tickets and resume logs from the
    /// previous incarnation are void.
    pub epoch: u64,
    /// Whether a drain has begun (admission is over).
    pub draining: bool,
    /// Precomputed offline packs ready right now.
    pub pool_depth: u64,
    /// Sessions currently being served.
    pub active_sessions: u64,
}

impl Encodable for HealthStatus {
    fn encode(&self, out: &mut BytesMut) {
        self.epoch.encode(out);
        u64::from(self.draining).encode(out);
        self.pool_depth.encode(out);
        self.active_sessions.encode(out);
    }

    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        let epoch = u64::decode(input)?;
        let draining = match u64::decode(input)? {
            0 => false,
            1 => true,
            other => {
                return Err(TransportError::Decode(format!(
                    "health drain flag must be 0 or 1, got {other}"
                )))
            }
        };
        Ok(Self {
            epoch,
            draining,
            pool_depth: u64::decode(input)?,
            active_sessions: u64::decode(input)?,
        })
    }
}

impl HealthStatus {
    /// The probe request: an empty-payload [`KIND_HEALTH`] frame.
    pub fn request() -> Frame {
        Frame {
            kind: KIND_HEALTH,
            payload: Bytes::new(),
        }
    }

    /// Encodes this status as the probe reply frame.
    pub fn reply(&self) -> Frame {
        Frame::encode(KIND_HEALTH, self)
    }

    /// Decodes a received [`KIND_HEALTH`] reply payload.
    ///
    /// # Errors
    ///
    /// [`TransportError::Decode`] on a truncated or malformed payload.
    pub fn parse(frame: &Frame) -> Result<Self, TransportError> {
        if frame.kind != KIND_HEALTH {
            return Err(TransportError::UnexpectedFrame {
                expected: KIND_HEALTH,
                got: frame.kind,
                payload_len: frame.payload.len(),
            });
        }
        frame.decode_as::<Self>(KIND_HEALTH)
    }
}

/// Probes a replica over `lane`: sends one [`KIND_HEALTH`] request and
/// waits up to `window` for the reply. A [`KIND_BUSY`] answer (some
/// servers shed before dispatching — not ours, but the probe is liberal
/// in what it accepts) surfaces as [`TransportError::Busy`]; anything
/// else that is not a health reply is an
/// [`TransportError::UnexpectedFrame`].
///
/// # Errors
///
/// Any transport failure, [`TransportError::Timeout`] when the window
/// elapses, and [`TransportError::Decode`] on a malformed reply.
pub fn probe_health<L: Lane + ?Sized>(
    lane: &L,
    window: Duration,
) -> Result<HealthStatus, TransportError> {
    probe_health_cancellable(lane, window, None)
}

/// [`probe_health`] with a cancel token: the blocking wait is sliced so
/// a cancellation (e.g. a hedged race already decided elsewhere) is
/// observed within one slice instead of holding the caller for the full
/// probe window against a mute peer.
///
/// # Errors
///
/// As [`probe_health`], plus [`TransportError::Budget`] when `cancel`
/// is raised mid-wait.
pub fn probe_health_cancellable<L: Lane + ?Sized>(
    lane: &L,
    window: Duration,
    cancel: Option<&std::sync::atomic::AtomicBool>,
) -> Result<HealthStatus, TransportError> {
    const SLICE: Duration = Duration::from_millis(20);
    let window = window.max(Duration::from_millis(1));
    lane.set_recv_timeout(Some(window));
    lane.send(HealthStatus::request())?;
    let started = std::time::Instant::now();
    let reply = loop {
        let remaining = window.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return Err(TransportError::Timeout);
        }
        if cancel.is_some() {
            lane.set_recv_timeout(Some(remaining.min(SLICE).max(Duration::from_millis(1))));
        }
        match lane.recv() {
            Err(TransportError::Timeout) => {
                if let Some(cancel) = cancel {
                    if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                        return Err(TransportError::Budget(
                            "health probe cancelled (race decided)".into(),
                        ));
                    }
                }
                if cancel.is_none() || started.elapsed() >= window {
                    return Err(TransportError::Timeout);
                }
            }
            other => break other?,
        }
    };
    if reply.kind == KIND_BUSY {
        return Err(TransportError::Busy {
            retry_after_ms: busy_retry_after(&reply.payload),
        });
    }
    HealthStatus::parse(&reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::duplex;

    #[test]
    fn health_status_round_trips_through_its_frames() {
        let status = HealthStatus {
            epoch: 3,
            draining: true,
            pool_depth: 7,
            active_sessions: 12,
        };
        let frame = status.reply();
        assert_eq!(frame.kind, KIND_HEALTH);
        assert_eq!(HealthStatus::parse(&frame).unwrap(), status);
    }

    #[test]
    fn probe_round_trips_over_a_duplex_pair() {
        let (client, server) = duplex();
        let status = HealthStatus {
            epoch: 9,
            draining: false,
            pool_depth: 2,
            active_sessions: 1,
        };
        let handle = std::thread::spawn(move || {
            let req = server.recv().expect("probe request");
            assert_eq!(req.kind, KIND_HEALTH);
            assert!(req.payload.is_empty(), "the request carries nothing");
            server.send(status.reply()).expect("reply");
        });
        let got = probe_health(&client, Duration::from_secs(1)).expect("probe");
        assert_eq!(got, status);
        handle.join().expect("server thread");
    }

    #[test]
    fn probe_times_out_against_a_mute_peer() {
        let (client, _mute) = duplex();
        let err = probe_health(&client, Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
    }

    #[test]
    fn probe_surfaces_a_busy_shed_with_its_hint() {
        let (client, server) = duplex();
        server
            .send(crate::driver::busy_frame(Some(Duration::from_millis(80))))
            .unwrap();
        let err = probe_health(&client, Duration::from_secs(1)).unwrap_err();
        assert_eq!(
            err,
            TransportError::Busy {
                retry_after_ms: Some(80)
            }
        );
    }

    #[test]
    fn malformed_reply_is_a_decode_error_not_a_panic() {
        let (client, server) = duplex();
        server
            .send(Frame {
                kind: KIND_HEALTH,
                payload: Bytes::copy_from_slice(&[1, 2, 3]),
            })
            .unwrap();
        let err = probe_health(&client, Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, TransportError::Decode(_)), "got {err:?}");
    }
}
