//! Transport-layer errors and the layered protocol-error taxonomy.

use core::fmt;

/// Errors surfaced by channels and the wire codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint has been dropped.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
    /// The underlying socket failed with an I/O error that is neither a
    /// timeout nor a clean disconnect.
    Io(String),
    /// The payload could not be decoded.
    Decode(String),
    /// A frame arrived with an unexpected kind tag.
    UnexpectedFrame {
        /// The frame kind the protocol expected next.
        expected: u16,
        /// The frame kind actually received.
        got: u16,
        /// The length of the offending frame's payload in bytes.
        payload_len: usize,
    },
    /// The peer is at capacity and shed this session before it started
    /// (it answered with a `KIND_BUSY` control frame). Not retryable on
    /// the same connection; callers should back off and redial.
    Busy {
        /// The server's retry-after hint in milliseconds, when its shed
        /// reply carried one: redialing sooner will just be shed again.
        /// `None` means the server gave no guidance and the caller's own
        /// backoff applies.
        retry_after_ms: Option<u64>,
    },
    /// A session budget ([`SessionLimits`](crate::SessionLimits)) was
    /// exhausted: wall-clock deadline, frame count, wire-byte count, or a
    /// drain-deadline cut. The message names the budget that tripped.
    Budget(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disconnected => write!(f, "peer endpoint disconnected"),
            Self::Timeout => write!(f, "receive timed out"),
            Self::Io(msg) => write!(f, "socket error: {msg}"),
            Self::Decode(msg) => write!(f, "wire decode failed: {msg}"),
            Self::UnexpectedFrame {
                expected,
                got,
                payload_len,
            } => {
                write!(
                    f,
                    "unexpected frame kind 0x{got:04x} ({payload_len}-byte payload), \
                     expected kind 0x{expected:04x}"
                )
            }
            Self::Busy { retry_after_ms } => {
                write!(f, "peer at capacity: session shed before admission")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms}ms)")?;
                }
                Ok(())
            }
            Self::Budget(msg) => write!(f, "session budget exhausted: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The layer a protocol failure originated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorLayer {
    /// Channel failures: disconnects, timeouts, raw socket I/O.
    Transport,
    /// Wire-codec failures: malformed payloads, frame-kind mismatches.
    Codec,
    /// Cryptographic failures: bad OT material, invalid group elements.
    Crypto,
    /// Role-logic violations: the peer deviated from the agreed protocol.
    Protocol,
}

impl fmt::Display for ErrorLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transport => write!(f, "transport"),
            Self::Codec => write!(f, "codec"),
            Self::Crypto => write!(f, "crypto"),
            Self::Protocol => write!(f, "protocol"),
        }
    }
}

/// A layered protocol error: which layer failed, where in the session it
/// failed (frame kind and round), and the underlying typed cause.
///
/// The per-crate error enums (`OtError`, `OmpeError`, …) stay the lingua
/// franca of the blocking APIs; `ProtocolError` is the type-erased form
/// the [`Engine`](crate::Engine) trait, the [`Driver`](crate::Driver)
/// and transcript replay speak, so heterogeneous engines compose without
/// generics. The original enum is preserved as the boxed source and can
/// be recovered with [`ProtocolError::downcast_ref`].
#[derive(Debug)]
pub struct ProtocolError {
    layer: ErrorLayer,
    frame_kind: Option<u16>,
    round: Option<u64>,
    source: Box<dyn std::error::Error + Send + Sync + 'static>,
}

impl ProtocolError {
    /// Wraps `source` as a failure in `layer`, with no session context yet.
    pub fn new(layer: ErrorLayer, source: impl std::error::Error + Send + Sync + 'static) -> Self {
        Self {
            layer,
            frame_kind: None,
            round: None,
            source: Box::new(source),
        }
    }

    /// A protocol-layer violation described by a plain message.
    pub fn violation(msg: impl Into<String>) -> Self {
        Self::new(ErrorLayer::Protocol, StringError(msg.into()))
    }

    /// The layer the failure originated in.
    pub fn layer(&self) -> ErrorLayer {
        self.layer
    }

    /// The kind tag of the frame being processed when the failure
    /// surfaced, if known.
    pub fn frame_kind(&self) -> Option<u16> {
        self.frame_kind
    }

    /// The session round (frames handled so far by the failing engine)
    /// when the failure surfaced, if known.
    pub fn round(&self) -> Option<u64> {
        self.round
    }

    /// Attaches a frame kind, keeping an already-recorded one.
    #[must_use]
    pub fn with_frame_kind(mut self, kind: u16) -> Self {
        self.frame_kind.get_or_insert(kind);
        self
    }

    /// Attaches a round index, keeping an already-recorded one.
    #[must_use]
    pub fn with_round(mut self, round: u64) -> Self {
        self.round.get_or_insert(round);
        self
    }

    /// Attempts to view the underlying cause as a concrete error type.
    pub fn downcast_ref<E: std::error::Error + 'static>(&self) -> Option<&E> {
        self.source.downcast_ref::<E>()
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} layer error", self.layer)?;
        match (self.frame_kind, self.round) {
            (Some(kind), Some(round)) => write!(f, " [frame 0x{kind:04x}, round {round}]")?,
            (Some(kind), None) => write!(f, " [frame 0x{kind:04x}]")?,
            (None, Some(round)) => write!(f, " [round {round}]")?,
            (None, None) => {}
        }
        write!(f, ": {}", self.source)
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

impl From<TransportError> for ProtocolError {
    fn from(err: TransportError) -> Self {
        match &err {
            TransportError::Disconnected
            | TransportError::Timeout
            | TransportError::Io(_)
            | TransportError::Busy { .. }
            | TransportError::Budget(_) => Self::new(ErrorLayer::Transport, err),
            TransportError::Decode(_) => Self::new(ErrorLayer::Codec, err),
            TransportError::UnexpectedFrame { got, .. } => {
                let got = *got;
                Self::new(ErrorLayer::Codec, err).with_frame_kind(got)
            }
        }
    }
}

/// A plain-message error used for protocol violations with no richer type.
#[derive(Clone, Debug)]
struct StringError(String);

impl fmt::Display for StringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StringError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_error_maps_to_transport_layer() {
        for err in [
            TransportError::Disconnected,
            TransportError::Timeout,
            TransportError::Io("reset".into()),
            TransportError::Busy {
                retry_after_ms: None,
            },
            TransportError::Busy {
                retry_after_ms: Some(120),
            },
            TransportError::Budget("deadline 5ms elapsed".into()),
        ] {
            let p = ProtocolError::from(err.clone());
            assert_eq!(p.layer(), ErrorLayer::Transport);
            assert_eq!(p.downcast_ref::<TransportError>(), Some(&err));
        }
    }

    #[test]
    fn busy_display_keeps_capacity_wording_and_shows_the_hint() {
        let bare = TransportError::Busy {
            retry_after_ms: None,
        }
        .to_string();
        assert!(bare.contains("capacity"), "{bare}");
        assert!(!bare.contains("retry after"), "{bare}");
        let hinted = TransportError::Busy {
            retry_after_ms: Some(75),
        }
        .to_string();
        assert!(hinted.contains("capacity"), "{hinted}");
        assert!(hinted.contains("retry after 75ms"), "{hinted}");
    }

    #[test]
    fn unexpected_frame_maps_to_codec_with_kind() {
        let err = TransportError::UnexpectedFrame {
            expected: 0x0100,
            got: 0x0400,
            payload_len: 12,
        };
        let p = ProtocolError::from(err);
        assert_eq!(p.layer(), ErrorLayer::Codec);
        assert_eq!(p.frame_kind(), Some(0x0400));
        let shown = p.to_string();
        assert!(shown.contains("0x0400"), "display shows the kind: {shown}");
        assert!(
            shown.contains("12-byte"),
            "display shows the length: {shown}"
        );
    }

    #[test]
    fn context_is_first_writer_wins() {
        let p = ProtocolError::violation("peer lied")
            .with_frame_kind(7)
            .with_frame_kind(9)
            .with_round(3)
            .with_round(4);
        assert_eq!(p.frame_kind(), Some(7));
        assert_eq!(p.round(), Some(3));
        assert_eq!(p.layer(), ErrorLayer::Protocol);
    }
}
