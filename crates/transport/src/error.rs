//! Transport-layer errors.

use core::fmt;

/// Errors surfaced by channels and the wire codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint has been dropped.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
    /// The payload could not be decoded.
    Decode(String),
    /// A frame arrived with an unexpected kind tag.
    UnexpectedFrame {
        /// The frame kind the protocol expected next.
        expected: u16,
        /// The frame kind actually received.
        got: u16,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disconnected => write!(f, "peer endpoint disconnected"),
            Self::Timeout => write!(f, "receive timed out"),
            Self::Decode(msg) => write!(f, "wire decode failed: {msg}"),
            Self::UnexpectedFrame { expected, got } => {
                write!(f, "unexpected frame kind {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for TransportError {}
