//! Drivers and transcripts: everything that moves engine frames.
//!
//! [`Driver`] pumps one [`ProtocolEngine`] over any [`Endpoint`](crate::Endpoint) backend
//! (in-memory duplex, coalesced lanes, TCP) — the blocking protocol entry
//! points across the workspace are thin wrappers over it.
//! [`run_engine_pair`] pumps two engines against each other with no
//! threads and no transport at all, deterministically, with deadlock
//! detection. [`Transcript`] records a session's logical frames and
//! [`replay`] re-drives an engine from the recording, asserting it emits
//! byte-identical output.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use ppcs_telemetry::{MetricsRegistry, WireDir};

use crate::channel::{Frame, Lane, TrafficStats};
use crate::engine::{Outgoing, ProtocolEngine};
use crate::error::{ProtocolError, TransportError};
use crate::fault::splitmix64;
use crate::wire::{decode_seq, encode_seq, Encodable};

/// Frame kind for the resume handshake: after a reconnect, each side
/// sends one `KIND_RESUME` frame carrying the count of logical frames it
/// has delivered to its engine, and the peer replays everything after
/// that ack. Reserved next to [`KIND_COALESCED`](crate::KIND_COALESCED);
/// protocols never see it.
pub const KIND_RESUME: u16 = 0x00FE;

/// Frame kind for admission-control rejection: a serving peer at
/// capacity answers a new session's opening frame with one `KIND_BUSY`
/// frame and hangs up, instead of silently dropping the connection. The
/// driver translates a received `KIND_BUSY` into
/// [`TransportError::Busy`] and fails the engine with it — protocols
/// never see the kind itself. Reserved next to [`KIND_RESUME`].
///
/// The payload is either empty (no guidance) or eight little-endian
/// bytes carrying a retry-after hint in milliseconds; see [`busy_frame`]
/// and [`busy_retry_after`].
pub const KIND_BUSY: u16 = 0x00FD;

/// Builds a [`KIND_BUSY`] shed reply, optionally carrying a retry-after
/// hint (rounded to whole milliseconds) for the shed client's backoff.
pub fn busy_frame(retry_after: Option<Duration>) -> Frame {
    let payload = match retry_after {
        Some(d) => {
            Bytes::copy_from_slice(&(d.as_millis().min(u128::from(u64::MAX)) as u64).to_le_bytes())
        }
        None => Bytes::new(),
    };
    Frame {
        kind: KIND_BUSY,
        payload,
    }
}

/// Extracts the retry-after hint from a received [`KIND_BUSY`] payload.
/// An empty payload means the server gave no guidance; any other
/// malformed payload is treated the same way — a shed reply must never
/// turn into a decode failure.
pub fn busy_retry_after(payload: &[u8]) -> Option<u64> {
    let bytes: [u8; 8] = payload.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// Per-session resource budgets enforced by [`Driver::drive`].
///
/// Each limit is independent and optional; `None` means unlimited. When
/// any budget trips, the drive fails the engine with
/// [`TransportError::Budget`] naming the exhausted budget, and an
/// attached [`MetricsRegistry`](ppcs_telemetry::MetricsRegistry) counts
/// one `budget_exceeded`.
#[derive(Clone, Debug, Default)]
pub struct SessionLimits {
    /// Total wall-clock budget for the whole session, distinct from the
    /// per-receive deadline: a peer trickling one frame per recv window
    /// (a "slow loris") passes every per-recv deadline but not this one.
    pub deadline: Option<Duration>,
    /// Maximum logical frames delivered to the engine.
    pub max_frames: Option<u64>,
    /// Maximum wire bytes moved (sent + received) during the drive.
    pub max_wire_bytes: Option<u64>,
}

impl SessionLimits {
    /// No limits: every budget unlimited.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the total wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the delivered-frame budget.
    #[must_use]
    pub fn with_max_frames(mut self, max_frames: u64) -> Self {
        self.max_frames = Some(max_frames);
        self
    }

    /// Sets the wire-byte budget (sent + received).
    #[must_use]
    pub fn with_max_wire_bytes(mut self, max_wire_bytes: u64) -> Self {
        self.max_wire_bytes = Some(max_wire_bytes);
        self
    }
}

/// Bounded-retry configuration for [`Driver::drive_resumable`]:
/// exponential backoff with deterministic (seeded) jitter between
/// reconnect attempts, and a patience window for the resume handshake.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total connection attempts (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` starts from `base_delay * 2^n`.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep (before jitter).
    pub max_delay: Duration,
    /// Seed for the deterministic jitter added to each backoff.
    pub jitter_seed: u64,
    /// Recv deadline while waiting for the peer's resume frame — longer
    /// than the session deadline, since the peer may itself be backing
    /// off before it reconnects.
    pub resume_window: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter_seed: 0x5EED,
            resume_window: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Whether `e` is a transient transport failure worth a reconnect.
    /// Codec and protocol errors are deterministic — retrying replays
    /// the same bytes into the same failure — so only the transport
    /// layer (disconnect, timeout, I/O) is retryable. A shed
    /// ([`TransportError::Busy`]) is retryable exactly when the server
    /// said when to come back: without a retry-after hint, redialing the
    /// same overloaded server would just be shed again.
    pub fn is_retryable(&self, e: &TransportError) -> bool {
        matches!(
            e,
            TransportError::Disconnected
                | TransportError::Timeout
                | TransportError::Io(_)
                | TransportError::Busy {
                    retry_after_ms: Some(_)
                }
        )
    }

    /// The backoff before attempt `attempt + 1` with no jitter applied:
    /// capped exponential growth from `base_delay`, saturating instead
    /// of overflowing at large attempt counts.
    pub fn backoff_base(&self, attempt: u32) -> Duration {
        self.base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay)
    }

    /// The backoff before attempt `attempt + 1`:
    /// [`backoff_base`](Self::backoff_base) plus seeded jitter in
    /// `[0, base / 2)`, saturating at the extremes instead of panicking.
    pub fn backoff_delay(&self, attempt: u32, jitter: &mut u64) -> Duration {
        let capped = self.backoff_base(attempt);
        let half = ((capped.as_nanos() / 2).min(u128::from(u64::MAX)) as u64).max(1);
        capped
            .checked_add(Duration::from_nanos(splitmix64(jitter) % half))
            .unwrap_or(capped)
    }

    /// The delay before the retry prompted by `e`: a shed reply carrying
    /// a retry-after hint is honored exactly (no jitter — the server
    /// already knows when capacity frees up), anything else gets the
    /// jittered exponential [`backoff_delay`](Self::backoff_delay).
    pub fn delay_for(&self, e: &TransportError, attempt: u32, jitter: &mut u64) -> Duration {
        match e {
            TransportError::Busy {
                retry_after_ms: Some(ms),
            } => Duration::from_millis(*ms),
            _ => self.backoff_delay(attempt, jitter),
        }
    }
}

/// Which way a transcript frame traveled, from the recorded party's
/// perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Emitted by the recorded engine.
    Sent,
    /// Delivered to the recorded engine.
    Received,
}

/// One transcript step: a direction plus the logical frames that moved.
///
/// A sent batch keeps its batch boundary (`coalesced = true`) so replay
/// and byte accounting reproduce the exact wire behavior.
#[derive(Clone, Debug, PartialEq)]
pub struct TranscriptEntry {
    /// Travel direction relative to the recorded engine.
    pub direction: Direction,
    /// Whether the frames were coalesced into one wire frame.
    pub coalesced: bool,
    /// The logical frames, in order.
    pub frames: Vec<Frame>,
}

impl TranscriptEntry {
    /// Bytes this step put on the wire.
    pub fn wire_len(&self) -> usize {
        if self.coalesced {
            Outgoing::Batch(self.frames.clone()).wire_len()
        } else {
            self.frames.iter().map(Frame::wire_len).sum()
        }
    }
}

impl Encodable for TranscriptEntry {
    fn encode(&self, out: &mut BytesMut) {
        let dir: u8 = match self.direction {
            Direction::Sent => 0,
            Direction::Received => 1,
        };
        dir.encode(out);
        self.coalesced.encode(out);
        encode_seq(&self.frames, out);
    }

    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        let direction = match u8::decode(input)? {
            0 => Direction::Sent,
            1 => Direction::Received,
            other => {
                return Err(TransportError::Decode(format!(
                    "unknown transcript direction tag {other}"
                )))
            }
        };
        let coalesced = bool::decode(input)?;
        let frames = decode_seq(input)?;
        Ok(Self {
            direction,
            coalesced,
            frames,
        })
    }
}

/// A recorded protocol session: every logical frame one party sent or
/// received, in order, with batch boundaries preserved.
///
/// Transcripts serialize to bytes (they implement [`Encodable`]) so a
/// captured session can be stored and re-driven later with [`replay`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Transcript {
    /// The recorded steps, in session order.
    pub entries: Vec<TranscriptEntry>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&mut self, direction: Direction, out: &Outgoing) {
        let (coalesced, frames) = match out {
            Outgoing::Frame(f) => (false, vec![f.clone()]),
            Outgoing::Batch(fs) => (true, fs.clone()),
        };
        self.entries.push(TranscriptEntry {
            direction,
            coalesced,
            frames,
        });
    }

    pub(crate) fn record_received(&mut self, frame: &Frame) {
        self.entries.push(TranscriptEntry {
            direction: Direction::Received,
            coalesced: false,
            frames: vec![frame.clone()],
        });
    }

    /// Total bytes the session moved on the wire, both directions,
    /// accounting coalesced batches at their true (shared-header) size.
    pub fn total_wire_bytes(&self) -> usize {
        self.entries.iter().map(TranscriptEntry::wire_len).sum()
    }

    /// Number of logical frames recorded, both directions.
    pub fn total_frames(&self) -> usize {
        self.entries.iter().map(|e| e.frames.len()).sum()
    }

    /// Serializes the transcript.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = BytesMut::new();
        self.encode(&mut out);
        out.to_vec()
    }

    /// Deserializes a transcript previously captured with
    /// [`Transcript::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Decode`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TransportError> {
        let mut input = Bytes::copy_from_slice(bytes);
        let t = Self::decode(&mut input)?;
        if !input.is_empty() {
            return Err(TransportError::Decode(format!(
                "{} trailing bytes after transcript",
                input.len()
            )));
        }
        Ok(t)
    }
}

impl Encodable for Transcript {
    fn encode(&self, out: &mut BytesMut) {
        encode_seq(&self.entries, out);
    }

    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        Ok(Self {
            entries: decode_seq(input)?,
        })
    }
}

/// Pumps a [`ProtocolEngine`] over any [`Lane`] until the role
/// completes: outputs are transmitted (batches coalesced), and the
/// endpoint is polled for input whenever the engine stalls. Transport
/// failures are injected into the engine so the role surfaces the same
/// typed error its blocking counterpart would.
///
/// One driver serves one session; enable recording before driving to
/// capture a [`Transcript`], attach a
/// [`MetricsRegistry`](ppcs_telemetry::MetricsRegistry) to collect
/// telemetry.
#[derive(Debug, Default)]
pub struct Driver {
    transcript: Option<Transcript>,
    metrics: Option<Arc<MetricsRegistry>>,
    timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
    limits: Option<SessionLimits>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Driver {
    /// A driver with recording disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables transcript recording for the next [`drive`](Self::drive).
    #[must_use]
    pub fn with_recording(mut self) -> Self {
        self.transcript = Some(Transcript::new());
        self
    }

    /// Attaches a telemetry registry: every [`drive`](Self::drive)
    /// installs it as the thread's span collector (so protocol-phase
    /// spans inside the role logic land in it) and merges the drive's
    /// wire-traffic deltas, poll count, and round count into it.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Sets the receive deadline every [`drive`](Self::drive) applies to
    /// its endpoint before pumping. Configure the drivers on **both**
    /// parties with the same value to get a symmetric deadline on a TCP
    /// connection pair; a [`TransportError::Timeout`] during the drive
    /// is counted in the attached registry and emits a `warn` trace
    /// event carrying the frame kind last seen and the engine round.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the retry policy [`drive_resumable`](Self::drive_resumable)
    /// uses for reconnects. Without one, the default policy applies.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Attaches per-session resource budgets enforced on every
    /// [`drive`](Self::drive): wall-clock deadline, delivered-frame
    /// count, and wire-byte count. See [`SessionLimits`]. Budgeted
    /// drives slice their blocking receives into short waits so the
    /// deadline is observed promptly; they therefore reconfigure the
    /// lane's recv deadline as they go and should own their lane.
    #[must_use]
    pub fn with_limits(mut self, limits: SessionLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Attaches a cancellation token checked on every loop iteration and
    /// while waiting for input: once set, the drive fails the engine
    /// with [`TransportError::Budget`]. The serving runtime uses this to
    /// cut in-flight sessions at the drain deadline.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Takes the recorded transcript, if recording was enabled.
    pub fn take_transcript(&mut self) -> Option<Transcript> {
        self.transcript.take()
    }

    /// Drives `engine` over `ep` to completion.
    ///
    /// # Errors
    ///
    /// The role's own error on protocol failure; transport failures are
    /// reported through the role (injected into its pending receive) so
    /// the error type and variant match the blocking code path exactly.
    pub fn drive<L, T, E>(&mut self, ep: &L, engine: &mut ProtocolEngine<'_, T, E>) -> Result<T, E>
    where
        L: Lane + ?Sized,
        E: From<TransportError>,
    {
        if let Some(timeout) = self.timeout {
            ep.set_recv_timeout(Some(timeout));
        }
        // Role futures poll on this thread, so installing the collector
        // here covers every span in the protocol stack — blocking
        // wrappers and TCP paths get telemetry for free.
        let _collector = self.metrics.clone().map(ppcs_telemetry::install);
        let stats_before = self.metrics.is_some().then(|| ep.stats());
        let rounds_before = engine.rounds();
        let result = self.drive_loop(ep, engine);
        if let Some(reg) = &self.metrics {
            merge_wire_delta(reg, &stats_before.expect("snapshotted"), &ep.stats());
            reg.record_rounds(engine.rounds() - rounds_before);
        }
        result
    }

    fn drive_loop<L, T, E>(&mut self, ep: &L, engine: &mut ProtocolEngine<'_, T, E>) -> Result<T, E>
    where
        L: Lane + ?Sized,
        E: From<TransportError>,
    {
        let started = Instant::now();
        let limits = self.limits.clone().unwrap_or_default();
        let budgeted = self.limits.is_some() || self.cancel.is_some();
        let bytes_before = budgeted.then(|| ep.stats().total_bytes());
        let mut frames_delivered: u64 = 0;
        // The frame kind most recently sent or delivered: locates a
        // timeout within the session for the warn event.
        let mut last_kind: Option<u16> = None;
        loop {
            if let Some(reg) = &self.metrics {
                reg.record_polls(1);
            }
            while let Some(out) = engine.poll_output() {
                if let Some(t) = &mut self.transcript {
                    t.record(Direction::Sent, &out);
                }
                if let Some(reg) = &self.metrics {
                    for f in out.frames() {
                        reg.record_frame_size(f.payload.len() as u64);
                    }
                }
                last_kind = out.frames().last().map(|f| f.kind);
                let sent = match &out {
                    Outgoing::Frame(f) => ep.send(f.clone()),
                    Outgoing::Batch(fs) => ep.send_coalesced(fs),
                };
                if let Err(e) = sent {
                    engine.inject_failure(e.clone());
                    return match engine.take_result() {
                        Some(r) => r,
                        None => Err(E::from(e)),
                    };
                }
            }
            if engine.is_done() {
                return engine.take_result().expect("engine reported done");
            }
            if budgeted {
                let wire = ep.stats().total_bytes() - bytes_before.expect("snapshotted");
                if let Some(e) = self.budget_trip(&limits, started, frames_delivered, wire) {
                    self.note_budget(&e, last_kind, engine.rounds());
                    return fail_engine(engine, e);
                }
            }
            match self.recv_within_budget(ep, &limits, budgeted, started) {
                Ok(frame) => {
                    if frame.kind == KIND_BUSY {
                        // The peer shed this session before admission.
                        return fail_engine(
                            engine,
                            TransportError::Busy {
                                retry_after_ms: busy_retry_after(&frame.payload),
                            },
                        );
                    }
                    if let Some(t) = &mut self.transcript {
                        t.record_received(&frame);
                    }
                    if let Some(reg) = &self.metrics {
                        reg.record_frame_size(frame.payload.len() as u64);
                    }
                    frames_delivered += 1;
                    last_kind = Some(frame.kind);
                    engine.handle_input(frame);
                }
                Err(e) => {
                    if matches!(e, TransportError::Budget(_)) {
                        self.note_budget(&e, last_kind, engine.rounds());
                    }
                    if e == TransportError::Timeout {
                        if let Some(reg) = &self.metrics {
                            reg.record_timeout();
                        }
                        ppcs_telemetry::warn_event(
                            "recv timeout",
                            last_kind,
                            Some(engine.rounds()),
                        );
                    }
                    engine.inject_failure(e.clone());
                    return match engine.take_result() {
                        Some(r) => r,
                        None => Err(E::from(e)),
                    };
                }
            }
        }
    }

    /// Returns the budget that has tripped, if any. The cancel token is
    /// checked first: a drain cut overrides any remaining allowance.
    fn budget_trip(
        &self,
        limits: &SessionLimits,
        started: Instant,
        frames_delivered: u64,
        wire_bytes: u64,
    ) -> Option<TransportError> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(TransportError::Budget(
                    "session cancelled (drain cut)".into(),
                ));
            }
        }
        if let Some(deadline) = limits.deadline {
            if started.elapsed() >= deadline {
                return Some(TransportError::Budget(format!(
                    "wall-clock deadline {deadline:?} elapsed"
                )));
            }
        }
        if let Some(max) = limits.max_frames {
            if frames_delivered >= max {
                return Some(TransportError::Budget(format!(
                    "frame budget {max} exhausted"
                )));
            }
        }
        if let Some(max) = limits.max_wire_bytes {
            if wire_bytes > max {
                return Some(TransportError::Budget(format!(
                    "wire-byte budget {max} exceeded ({wire_bytes} bytes moved)"
                )));
            }
        }
        None
    }

    /// Counts and warns about one tripped budget.
    fn note_budget(&self, e: &TransportError, last_kind: Option<u16>, rounds: u64) {
        if let Some(reg) = &self.metrics {
            reg.record_budget_exceeded();
        }
        ppcs_telemetry::warn_event(&e.to_string(), last_kind, Some(rounds));
    }

    /// Receives one frame. Budgeted drives slice the blocking wait into
    /// short intervals so a cancel or an elapsed wall-clock deadline is
    /// observed within one slice even when the peer sends nothing; the
    /// configured per-recv timeout still applies across slices.
    fn recv_within_budget<L>(
        &self,
        ep: &L,
        limits: &SessionLimits,
        budgeted: bool,
        started: Instant,
    ) -> Result<Frame, TransportError>
    where
        L: Lane + ?Sized,
    {
        if !budgeted {
            return ep.recv();
        }
        const SLICE: Duration = Duration::from_millis(20);
        let per_recv = self.timeout.unwrap_or(Duration::from_secs(30));
        let recv_started = Instant::now();
        loop {
            let mut wait = per_recv.saturating_sub(recv_started.elapsed());
            if let Some(deadline) = limits.deadline {
                wait = wait.min(deadline.saturating_sub(started.elapsed()));
            }
            ep.set_recv_timeout(Some(wait.min(SLICE).max(Duration::from_millis(1))));
            match ep.recv() {
                Err(TransportError::Timeout) => {
                    if let Some(cancel) = &self.cancel {
                        if cancel.load(Ordering::Relaxed) {
                            return Err(TransportError::Budget(
                                "session cancelled (drain cut)".into(),
                            ));
                        }
                    }
                    if let Some(deadline) = limits.deadline {
                        if started.elapsed() >= deadline {
                            return Err(TransportError::Budget(format!(
                                "wall-clock deadline {deadline:?} elapsed"
                            )));
                        }
                    }
                    if recv_started.elapsed() >= per_recv {
                        return Err(TransportError::Timeout);
                    }
                }
                other => return other,
            }
        }
    }

    /// Drives `engine` to completion across connection failures: on a
    /// retryable transport error ([`TransportError::Disconnected`],
    /// [`TransportError::Timeout`], [`TransportError::Io`]) the current
    /// lane is dropped, `connect(attempt)` establishes a fresh one after
    /// a backoff, and the session resumes where it left off via a
    /// [`KIND_RESUME`] handshake — each side announces how many logical
    /// frames it has delivered to its engine, and the peer replays the
    /// unacknowledged tail of its send log. The engine itself never sees
    /// the failure: its pending receive stays suspended until the
    /// replayed stream catches up.
    ///
    /// Both parties must drive with this method (or otherwise speak the
    /// resume handshake) for a reconnect to succeed. Transcript
    /// recording is not supported in resumable mode — replayed frames
    /// would double-record — and is ignored.
    ///
    /// [`SessionLimits`] and the cancel token are session-logical: the
    /// wall-clock deadline starts at the first dial and wire bytes
    /// accumulate across every lane, so a redial resumes the session's
    /// remaining budget rather than resetting it, and the resume
    /// handshake itself never waits past the deadline.
    ///
    /// # Errors
    ///
    /// The role's own error once retries are exhausted or a
    /// non-retryable (codec/protocol) failure occurs.
    pub fn drive_resumable<L, C, T, E>(
        &mut self,
        mut connect: C,
        engine: &mut ProtocolEngine<'_, T, E>,
    ) -> Result<T, E>
    where
        L: Lane,
        C: FnMut(u32) -> Result<L, TransportError>,
        E: From<TransportError>,
    {
        let policy = self.retry.clone().unwrap_or_default();
        let _collector = self.metrics.clone().map(ppcs_telemetry::install);
        let mut sent_log: Vec<Frame> = Vec::new();
        let mut delivered: u64 = 0;
        let mut attempt: u32 = 0;
        let mut jitter = policy.jitter_seed;
        // Budgets are session-logical: the wall clock starts at the
        // first dial and wire bytes accumulate across every lane, so a
        // redial never resets what the session has already spent.
        let started = Instant::now();
        let limits = self.limits.clone().unwrap_or_default();
        let budgeted = self.limits.is_some() || self.cancel.is_some();
        let mut wire_total: u64 = 0;
        loop {
            let lane = match connect(attempt) {
                Ok(l) => l,
                Err(e) => {
                    if policy.is_retryable(&e) && attempt + 1 < policy.max_attempts {
                        if let Some(reg) = &self.metrics {
                            reg.record_retry();
                        }
                        std::thread::sleep(policy.delay_for(&e, attempt, &mut jitter));
                        attempt += 1;
                        continue;
                    }
                    return fail_engine(engine, e);
                }
            };
            if attempt > 0 {
                if let Some(reg) = &self.metrics {
                    reg.record_reconnect();
                }
            }
            let stats_before = self.metrics.is_some().then(|| lane.stats());
            let lane_bytes_before = lane.stats().total_bytes();
            let rounds_before = engine.rounds();
            let result = self.pump_resumable(
                &lane,
                engine,
                &mut sent_log,
                &mut delivered,
                &policy,
                started,
                &limits,
                budgeted,
                wire_total,
            );
            if let Some(reg) = &self.metrics {
                merge_wire_delta(reg, &stats_before.expect("snapshotted"), &lane.stats());
                reg.record_rounds(engine.rounds() - rounds_before);
            }
            match result {
                Ok(()) => return engine.take_result().expect("engine completed"),
                Err(e) => {
                    wire_total += lane.stats().total_bytes() - lane_bytes_before;
                    // Drop the broken lane before backing off so the
                    // peer observes the disconnect promptly instead of
                    // waiting out its own deadline.
                    drop(lane);
                    if e == TransportError::Timeout {
                        if let Some(reg) = &self.metrics {
                            reg.record_timeout();
                        }
                        ppcs_telemetry::warn_event("recv timeout", None, Some(engine.rounds()));
                    }
                    if policy.is_retryable(&e) && attempt + 1 < policy.max_attempts {
                        if let Some(reg) = &self.metrics {
                            reg.record_retry();
                        }
                        std::thread::sleep(policy.delay_for(&e, attempt, &mut jitter));
                        attempt += 1;
                        continue;
                    }
                    return fail_engine(engine, e);
                }
            }
        }
    }

    /// One connection's worth of resumable pumping: the resume
    /// handshake, the unacknowledged-frame replay, then the normal
    /// poll/send/recv loop. Returns `Ok(())` once the engine reports
    /// done (its result — success or protocol error — is taken by the
    /// caller) and `Err` on any transport failure, leaving the engine
    /// suspended and resumable.
    #[allow(clippy::too_many_arguments)]
    fn pump_resumable<L, T, E>(
        &mut self,
        lane: &L,
        engine: &mut ProtocolEngine<'_, T, E>,
        sent_log: &mut Vec<Frame>,
        delivered: &mut u64,
        policy: &RetryPolicy,
        started: Instant,
        limits: &SessionLimits,
        budgeted: bool,
        wire_base: u64,
    ) -> Result<(), TransportError>
    where
        L: Lane + ?Sized,
        E: From<TransportError>,
    {
        let lane_bytes_before = lane.stats().total_bytes();
        // The resume handshake honours the session deadline too: a
        // redial late in the session must not wait out the full resume
        // window when only a sliver of wall clock remains.
        let mut window = policy.resume_window;
        if budgeted {
            if let Some(e) = self.budget_trip(limits, started, *delivered, wire_base) {
                self.note_budget(&e, None, engine.rounds());
                return Err(e);
            }
            if let Some(deadline) = limits.deadline {
                let remaining = deadline.saturating_sub(started.elapsed());
                window = window.min(remaining).max(Duration::from_millis(1));
            }
        }
        lane.set_recv_timeout(Some(window));
        lane.send(Frame::encode(KIND_RESUME, delivered))?;
        let peer_ack = loop {
            let f = match lane.recv() {
                Err(TransportError::Timeout) if budgeted => {
                    if let Some(e) = self.budget_trip(limits, started, *delivered, wire_base) {
                        self.note_budget(&e, None, engine.rounds());
                        return Err(e);
                    }
                    return Err(TransportError::Timeout);
                }
                other => other?,
            };
            if f.kind == KIND_BUSY {
                // The peer shed this session: without a retry-after
                // hint this is terminal (redialing the same overloaded
                // server would just be shed again); with one, the outer
                // loop redials after the hinted delay.
                return Err(TransportError::Busy {
                    retry_after_ms: busy_retry_after(&f.payload),
                });
            }
            if f.kind == KIND_RESUME {
                break f.decode_as::<u64>(KIND_RESUME)?;
            }
            // A stale in-flight frame from before the reconnect: drop
            // it. Whatever we have not acknowledged, the peer replays.
        };
        lane.set_recv_timeout(Some(self.timeout.unwrap_or(Duration::from_secs(30))));
        let peer_ack = usize::try_from(peer_ack)
            .ok()
            .filter(|&n| n <= sent_log.len())
            .ok_or_else(|| {
                TransportError::Decode(format!(
                    "resume ack {peer_ack} exceeds {} sent frames",
                    sent_log.len()
                ))
            })?;
        for f in &sent_log[peer_ack..] {
            lane.send(f.clone())?;
        }
        loop {
            if let Some(reg) = &self.metrics {
                reg.record_polls(1);
            }
            while let Some(out) = engine.poll_output() {
                if let Some(reg) = &self.metrics {
                    for f in out.frames() {
                        reg.record_frame_size(f.payload.len() as u64);
                    }
                }
                // Log before transmitting: a frame lost inside the
                // transport is still replayable.
                sent_log.extend(out.frames().iter().cloned());
                match &out {
                    Outgoing::Frame(f) => lane.send(f.clone())?,
                    Outgoing::Batch(fs) => lane.send_coalesced(fs)?,
                }
            }
            if engine.is_done() {
                return Ok(());
            }
            if budgeted {
                let wire = wire_base + (lane.stats().total_bytes() - lane_bytes_before);
                if let Some(e) = self.budget_trip(limits, started, *delivered, wire) {
                    self.note_budget(&e, None, engine.rounds());
                    return Err(e);
                }
            }
            let frame = self.recv_within_budget(lane, limits, budgeted, started)?;
            if frame.kind == KIND_BUSY {
                return Err(TransportError::Busy {
                    retry_after_ms: busy_retry_after(&frame.payload),
                });
            }
            if frame.kind == KIND_RESUME {
                // A duplicate handshake frame (e.g. replayed by a
                // faulty lane): not session traffic.
                continue;
            }
            if let Some(reg) = &self.metrics {
                reg.record_frame_size(frame.payload.len() as u64);
            }
            *delivered += 1;
            engine.handle_input(frame);
        }
    }
}

/// Feeds the change in an endpoint's traffic counters across one drive
/// into a registry, kind by kind. Deltas (not absolutes) make repeated
/// drives and concurrent lanes over shared registries compose.
pub(crate) fn merge_wire_delta(reg: &MetricsRegistry, before: &TrafficStats, after: &TrafficStats) {
    for k in &after.by_kind {
        let (fs0, bs0, fr0, br0) = match before.kind(k.kind) {
            Some(b) => (
                b.frames_sent,
                b.bytes_sent,
                b.frames_received,
                b.bytes_received,
            ),
            None => (0, 0, 0, 0),
        };
        reg.record_wire(
            k.kind,
            WireDir::Sent,
            k.frames_sent - fs0,
            k.bytes_sent - bs0,
        );
        reg.record_wire(
            k.kind,
            WireDir::Received,
            k.frames_received - fr0,
            k.bytes_received - br0,
        );
    }
}

/// Terminates a session on an unrecoverable transport error: the failure
/// is injected so the role surfaces its own typed error if it can, with
/// the raw transport error as the fallback.
pub(crate) fn fail_engine<T, E>(
    engine: &mut ProtocolEngine<'_, T, E>,
    e: TransportError,
) -> Result<T, E>
where
    E: From<TransportError>,
{
    engine.inject_failure(e.clone());
    match engine.take_result() {
        Some(r) => r,
        None => Err(E::from(e)),
    }
}

/// Drives an engine over a lane with a throwaway [`Driver`] — the
/// one-liner the blocking protocol wrappers use.
///
/// # Errors
///
/// See [`Driver::drive`].
pub fn drive_blocking<L, T, E>(ep: &L, engine: &mut ProtocolEngine<'_, T, E>) -> Result<T, E>
where
    L: Lane + ?Sized,
    E: From<TransportError>,
{
    Driver::new().drive(ep, engine)
}

/// Pumps two engines directly against each other — no threads, no
/// transport, fully deterministic. Batched outputs are unpacked into
/// logical frames for the peer, mirroring what
/// [`Endpoint::recv`](crate::Endpoint::recv) does on a real connection.
///
/// Returns both role results once both engines complete.
///
/// # Errors
///
/// Returns a [`ProtocolError`] if both engines stall before completing
/// (a protocol deadlock, which on a real transport would be a timeout).
/// Role-level failures are reported inside the returned `Result`s, not
/// here, so callers can assert on exact error variants.
#[allow(clippy::type_complexity)]
pub fn run_engine_pair<TA, EA, TB, EB>(
    a: &mut ProtocolEngine<'_, TA, EA>,
    b: &mut ProtocolEngine<'_, TB, EB>,
) -> Result<(Result<TA, EA>, Result<TB, EB>), ProtocolError> {
    loop {
        let mut progressed = false;
        while let Some(out) = a.poll_output() {
            progressed = true;
            for f in out.frames() {
                b.handle_input(f.clone());
            }
        }
        while let Some(out) = b.poll_output() {
            progressed = true;
            for f in out.frames() {
                a.handle_input(f.clone());
            }
        }
        if a.is_done() && b.is_done() {
            let ra = a.take_result().expect("engine a done");
            let rb = b.take_result().expect("engine b done");
            return Ok((ra, rb));
        }
        if !progressed {
            // One side finished (or wedged) while the other still waits:
            // surface the stall as the timeout a real transport would hit.
            if !a.is_done() {
                a.inject_failure(TransportError::Timeout);
            }
            if !b.is_done() {
                b.inject_failure(TransportError::Timeout);
            }
            if !(a.is_done() && b.is_done()) {
                return Err(ProtocolError::violation(
                    "engine pair deadlocked: both engines idle before completion",
                ));
            }
        }
    }
}

/// Re-drives `engine` from a recorded session: `Received` frames are fed
/// in order, and every output the engine produces is checked
/// byte-for-byte against the recorded `Sent` frames.
///
/// With deterministic role logic (same inputs, same RNG seed) a replay
/// reproduces the original session exactly — the recorded party's result
/// is recomputed without its peer being present.
///
/// # Errors
///
/// A [`ProtocolError`] if the engine diverges from the recording (wrong
/// frame, missing output, early/late completion) or if the role itself
/// fails.
pub fn replay<T, E>(
    transcript: &Transcript,
    engine: &mut ProtocolEngine<'_, T, E>,
) -> Result<T, ProtocolError>
where
    E: Into<ProtocolError>,
{
    let mut pending: Vec<Frame> = Vec::new();
    let next_out = |eng: &mut ProtocolEngine<'_, T, E>, pending: &mut Vec<Frame>| {
        if pending.is_empty() {
            if let Some(out) = eng.poll_output() {
                pending.extend(out.frames().iter().cloned());
            }
        }
        if pending.is_empty() {
            None
        } else {
            Some(pending.remove(0))
        }
    };
    for (step, entry) in transcript.entries.iter().enumerate() {
        match entry.direction {
            Direction::Received => {
                for f in &entry.frames {
                    engine.handle_input(f.clone());
                }
            }
            Direction::Sent => {
                for want in &entry.frames {
                    match next_out(engine, &mut pending) {
                        Some(got) if &got == want => {}
                        Some(got) => {
                            return Err(ProtocolError::violation(format!(
                                "replay diverged at step {step}: engine emitted kind \
                                 0x{:04x} ({} bytes), transcript has kind 0x{:04x} ({} bytes)",
                                got.kind,
                                got.payload.len(),
                                want.kind,
                                want.payload.len()
                            ))
                            .with_frame_kind(want.kind));
                        }
                        None => {
                            return Err(ProtocolError::violation(format!(
                                "replay diverged at step {step}: engine produced no output, \
                                 transcript expects kind 0x{:04x}",
                                want.kind
                            ))
                            .with_frame_kind(want.kind));
                        }
                    }
                }
            }
        }
    }
    if let Some(extra) = next_out(engine, &mut pending) {
        return Err(ProtocolError::violation(format!(
            "replay diverged after the transcript: engine emitted extra frame kind 0x{:04x}",
            extra.kind
        ))
        .with_frame_kind(extra.kind));
    }
    match engine.take_result() {
        Some(Ok(v)) => Ok(v),
        Some(Err(e)) => Err(e.into()),
        None => Err(ProtocolError::violation(
            "transcript exhausted but the engine is not done",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{duplex, Endpoint};
    use crate::engine::FrameIo;

    async fn pinger(io: FrameIo) -> Result<u64, TransportError> {
        io.send_msg(1, &7u64)?;
        io.recv_msg::<u64>(2).await
    }

    async fn ponger(io: FrameIo) -> Result<u64, TransportError> {
        let v = io.recv_msg::<u64>(1).await?;
        io.send_msg(2, &(v * 3))?;
        Ok(v)
    }

    #[test]
    fn driver_pumps_over_duplex() {
        let (ea, eb) = duplex();
        let (ra, rb) = crate::run_pair(
            move |ep| {
                let mut eng = ProtocolEngine::new(pinger);
                drive_blocking(&ep, &mut eng)
            },
            move |ep| {
                let mut eng = ProtocolEngine::new(ponger);
                drive_blocking(&ep, &mut eng)
            },
        );
        let _ = (ea, eb);
        assert_eq!(ra, Ok(21));
        assert_eq!(rb, Ok(7));
    }

    #[test]
    fn engine_pair_runs_without_transport() {
        let mut a = ProtocolEngine::new(pinger);
        let mut b = ProtocolEngine::new(ponger);
        let (ra, rb) = run_engine_pair(&mut a, &mut b).expect("no deadlock");
        assert_eq!(ra, Ok(21));
        assert_eq!(rb, Ok(7));
    }

    #[test]
    fn engine_pair_detects_deadlock() {
        // Both roles immediately wait: nobody ever sends.
        let mut a: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io| async move { io.recv_msg::<u64>(1).await });
        let mut b: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io| async move { io.recv_msg::<u64>(1).await });
        let (ra, rb) = run_engine_pair(&mut a, &mut b).expect("stall resolves via injection");
        assert_eq!(ra, Err(TransportError::Timeout));
        assert_eq!(rb, Err(TransportError::Timeout));
    }

    #[test]
    fn transcript_records_and_replays() {
        let (ep_a, ep_b) = duplex();
        let handle = std::thread::spawn(move || {
            let mut eng = ProtocolEngine::new(ponger);
            drive_blocking(&ep_b, &mut eng)
        });
        let mut driver = Driver::new().with_recording();
        let mut eng = ProtocolEngine::new(pinger);
        let result = driver.drive(&ep_a, &mut eng).expect("session");
        assert_eq!(result, 21);
        handle.join().expect("peer").expect("peer result");

        let transcript = driver.take_transcript().expect("recording enabled");
        assert_eq!(transcript.total_frames(), 2);
        assert!(transcript.total_wire_bytes() > 0);

        // Serialize, deserialize, replay against a fresh engine.
        let bytes = transcript.to_bytes();
        let restored = Transcript::from_bytes(&bytes).expect("decode");
        assert_eq!(restored, transcript);
        let mut fresh = ProtocolEngine::new(pinger);
        let replayed = replay(&restored, &mut fresh).expect("replay");
        assert_eq!(replayed, 21);
    }

    #[test]
    fn replay_detects_divergence() {
        let mut driver_transcript = Transcript::new();
        driver_transcript.entries.push(TranscriptEntry {
            direction: Direction::Sent,
            coalesced: false,
            frames: vec![Frame::encode(99, &0u64)],
        });
        let mut eng = ProtocolEngine::new(pinger);
        let err = replay(&driver_transcript, &mut eng).unwrap_err();
        assert_eq!(err.frame_kind(), Some(99));
    }

    #[test]
    fn driver_injects_transport_failures() {
        let (ep_a, ep_b) = duplex();
        drop(ep_b);
        let mut eng = ProtocolEngine::new(|io: FrameIo| async move { io.recv_msg::<u64>(1).await });
        let err = drive_blocking(&ep_a, &mut eng).unwrap_err();
        assert_eq!(err, TransportError::Disconnected);
    }

    #[test]
    fn driver_metrics_match_endpoint_stats() {
        let (ep_a, ep_b) = duplex();
        let handle = std::thread::spawn(move || {
            let mut eng = ProtocolEngine::new(ponger);
            drive_blocking(&ep_b, &mut eng)
        });
        let reg = ppcs_telemetry::MetricsRegistry::new(1, "pinger");
        let mut driver = Driver::new().with_metrics(reg.clone());
        let mut eng = ProtocolEngine::new(pinger);
        assert_eq!(driver.drive(&ep_a, &mut eng), Ok(21));
        handle.join().expect("peer").expect("peer result");

        let stats = ep_a.stats();
        let report = reg.report();
        assert_eq!(report.bytes_sent(), stats.bytes_sent);
        assert_eq!(report.bytes_received(), stats.bytes_received);
        assert_eq!(report.frames_sent(), stats.frames_sent);
        assert_eq!(report.frames_received(), stats.frames_received);
        assert_eq!(report.rounds, 1, "pinger handles one frame");
        assert!(report.polls > 0);
        assert_eq!(report.frame_sizes.count, 2, "one sent + one received");
    }

    #[test]
    fn repeated_drives_accumulate_metric_deltas() {
        let reg = ppcs_telemetry::MetricsRegistry::new(2, "pinger");
        let mut total = 0;
        for _ in 0..3 {
            let (ep_a, ep_b) = duplex();
            let handle = std::thread::spawn(move || {
                let mut eng = ProtocolEngine::new(ponger);
                drive_blocking(&ep_b, &mut eng)
            });
            let mut driver = Driver::new().with_metrics(reg.clone());
            let mut eng = ProtocolEngine::new(pinger);
            driver.drive(&ep_a, &mut eng).expect("session");
            handle.join().expect("peer").expect("peer result");
            total += ep_a.stats().total_bytes();
        }
        assert_eq!(reg.report().total_wire_bytes(), total);
        assert_eq!(reg.report().rounds, 3);
    }

    #[test]
    fn driver_timeout_is_counted_and_warned() {
        let (ep_a, _ep_b) = duplex();
        let reg = ppcs_telemetry::MetricsRegistry::new(3, "waiter");
        let mut driver = Driver::new()
            .with_metrics(reg.clone())
            .with_timeout(std::time::Duration::from_millis(10));
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move {
                io.send_msg(5, &1u64)?;
                io.recv_msg::<u64>(1).await
            });
        let err = driver.drive(&ep_a, &mut eng).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
        let report = reg.report();
        assert_eq!(report.timeouts, 1);
        assert_eq!(report.warns, 1);
    }

    #[test]
    fn resumable_drive_survives_dead_first_connection() {
        // Pinger's first lane is dead on arrival; attempt 1 gets the
        // real connection and the session completes via the resume
        // handshake.
        let (dead_a, dead_peer) = duplex();
        drop(dead_peer);
        let (real_a, real_b) = duplex();
        let reg = ppcs_telemetry::MetricsRegistry::new(7, "pinger");
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let mut eng = ProtocolEngine::new(ponger);
                let mut real = Some(real_b);
                Driver::new().drive_resumable(
                    move |_attempt| real.take().ok_or(TransportError::Disconnected),
                    &mut eng,
                )
            });
            let mut lanes = vec![real_a, dead_a]; // popped back-to-front
            let mut eng = ProtocolEngine::new(pinger);
            let mut driver = Driver::new().with_metrics(reg.clone());
            let got = driver.drive_resumable(
                move |_attempt| lanes.pop().ok_or(TransportError::Disconnected),
                &mut eng,
            );
            assert_eq!(got, Ok(21));
            assert_eq!(handle.join().expect("peer"), Ok(7));
        });
        let report = reg.report();
        assert_eq!(report.retries, 1);
        assert_eq!(report.reconnects, 1);
    }

    #[test]
    fn resumable_drive_exhausts_attempts_with_structured_error() {
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move { io.recv_msg::<u64>(1).await });
        let mut attempts = 0u32;
        let mut driver = Driver::new().with_retry(RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            ..Default::default()
        });
        let err = driver
            .drive_resumable(
                |_attempt| -> Result<Endpoint, TransportError> {
                    attempts += 1;
                    Err(TransportError::Disconnected)
                },
                &mut eng,
            )
            .unwrap_err();
        assert_eq!(err, TransportError::Disconnected);
        assert_eq!(attempts, 3, "every allowed attempt was used");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter_seed: 1,
            resume_window: Duration::from_secs(1),
        };
        let mut jitter = policy.jitter_seed;
        let d0 = policy.backoff_delay(0, &mut jitter);
        let d3 = policy.backoff_delay(3, &mut jitter);
        let d9 = policy.backoff_delay(9, &mut jitter);
        assert!(d0 >= Duration::from_millis(10) && d0 < Duration::from_millis(15));
        assert!(d3 >= Duration::from_millis(80), "exponential growth");
        // Cap plus at most half the cap of jitter.
        assert!(d9 <= Duration::from_millis(120), "cap holds: {d9:?}");
    }

    #[test]
    fn backoff_never_panics_at_extreme_parameters() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay: Duration::MAX,
            max_delay: Duration::MAX,
            jitter_seed: 42,
            resume_window: Duration::from_secs(1),
        };
        let mut jitter = policy.jitter_seed;
        for attempt in [0, 16, 63, u32::MAX] {
            let d = policy.backoff_delay(attempt, &mut jitter);
            assert!(d >= policy.backoff_base(attempt.min(16)));
        }
    }

    #[test]
    fn budget_deadline_cuts_a_silent_peer() {
        // The peer endpoint stays alive but never sends: the per-recv
        // timeout (30 s default) would hold the session for ages, the
        // wall-clock budget cuts it in tens of milliseconds.
        let (ep_a, _keep_alive) = duplex();
        let reg = ppcs_telemetry::MetricsRegistry::new(11, "budgeted");
        let mut driver = Driver::new()
            .with_metrics(reg.clone())
            .with_limits(SessionLimits::unlimited().with_deadline(Duration::from_millis(50)));
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move { io.recv_msg::<u64>(1).await });
        let t0 = std::time::Instant::now();
        let err = driver.drive(&ep_a, &mut eng).unwrap_err();
        assert!(matches!(err, TransportError::Budget(_)), "got {err:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "deadline observed promptly"
        );
        assert_eq!(reg.report().budget_exceeded, 1);
    }

    #[test]
    fn budget_max_frames_trips_on_a_flooding_peer() {
        let (ep_a, ep_b) = duplex();
        for i in 0..8u64 {
            ep_b.send_msg(1, &i).unwrap();
        }
        let mut driver = Driver::new().with_limits(SessionLimits::unlimited().with_max_frames(3));
        // The engine wants more frames than the budget allows.
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move {
                let mut sum = 0;
                for _ in 0..8 {
                    sum += io.recv_msg::<u64>(1).await?;
                }
                Ok(sum)
            });
        let err = driver.drive(&ep_a, &mut eng).unwrap_err();
        match err {
            TransportError::Budget(msg) => assert!(msg.contains("frame budget"), "{msg}"),
            other => panic!("expected Budget, got {other:?}"),
        }
    }

    #[test]
    fn budget_max_wire_bytes_trips_after_oversized_traffic() {
        let (ep_a, ep_b) = duplex();
        ep_b.send_msg(1, &vec![0u8; 4096]).unwrap();
        let mut driver =
            Driver::new().with_limits(SessionLimits::unlimited().with_max_wire_bytes(256));
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move {
                let _big = io.recv_msg::<Vec<u8>>(1).await?;
                io.recv_msg::<u64>(2).await
            });
        let err = driver.drive(&ep_a, &mut eng).unwrap_err();
        match err {
            TransportError::Budget(msg) => assert!(msg.contains("wire-byte"), "{msg}"),
            other => panic!("expected Budget, got {other:?}"),
        }
    }

    #[test]
    fn sessions_within_budget_complete_normally() {
        let (ep_a, ep_b) = duplex();
        let handle = std::thread::spawn(move || {
            let mut eng = ProtocolEngine::new(ponger);
            drive_blocking(&ep_b, &mut eng)
        });
        let mut driver = Driver::new().with_limits(
            SessionLimits::unlimited()
                .with_deadline(Duration::from_secs(10))
                .with_max_frames(16)
                .with_max_wire_bytes(1 << 20),
        );
        let mut eng = ProtocolEngine::new(pinger);
        assert_eq!(driver.drive(&ep_a, &mut eng), Ok(21));
        handle.join().expect("peer").expect("peer result");
    }

    #[test]
    fn cancel_token_cuts_an_in_flight_session() {
        let (ep_a, _keep_alive) = duplex();
        let cancel = Arc::new(AtomicBool::new(false));
        let mut driver = Driver::new().with_cancel(cancel.clone());
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move { io.recv_msg::<u64>(1).await });
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                cancel.store(true, Ordering::Relaxed);
            });
            let err = driver.drive(&ep_a, &mut eng).unwrap_err();
            match err {
                TransportError::Budget(msg) => assert!(msg.contains("cancelled"), "{msg}"),
                other => panic!("expected Budget, got {other:?}"),
            }
        });
    }

    #[test]
    fn busy_frame_surfaces_as_busy_error() {
        let (ep_a, ep_b) = duplex();
        ep_b.send(Frame {
            kind: KIND_BUSY,
            payload: Bytes::new(),
        })
        .unwrap();
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move { io.recv_msg::<u64>(1).await });
        let err = drive_blocking(&ep_a, &mut eng).unwrap_err();
        assert_eq!(
            err,
            TransportError::Busy {
                retry_after_ms: None
            }
        );
    }

    #[test]
    fn busy_frame_round_trips_its_retry_after_hint() {
        let hinted = busy_frame(Some(Duration::from_millis(250)));
        assert_eq!(hinted.kind, KIND_BUSY);
        assert_eq!(busy_retry_after(&hinted.payload), Some(250));
        let bare = busy_frame(None);
        assert_eq!(busy_retry_after(&bare.payload), None);
        // Garbage payloads degrade to "no guidance", never a decode error.
        assert_eq!(busy_retry_after(&[1, 2, 3]), None);
    }

    #[test]
    fn busy_with_hint_surfaces_the_hint_through_the_driver() {
        let (ep_a, ep_b) = duplex();
        ep_b.send(busy_frame(Some(Duration::from_millis(40))))
            .unwrap();
        let mut eng: ProtocolEngine<'_, u64, TransportError> =
            ProtocolEngine::new(|io: FrameIo| async move { io.recv_msg::<u64>(1).await });
        let err = drive_blocking(&ep_a, &mut eng).unwrap_err();
        assert_eq!(
            err,
            TransportError::Busy {
                retry_after_ms: Some(40)
            }
        );
    }

    #[test]
    fn retry_policy_honors_the_busy_hint_over_backoff() {
        let policy = RetryPolicy::default();
        let hinted = TransportError::Busy {
            retry_after_ms: Some(123),
        };
        let bare = TransportError::Busy {
            retry_after_ms: None,
        };
        assert!(policy.is_retryable(&hinted));
        assert!(!policy.is_retryable(&bare), "no hint, no blind redial");
        let mut jitter = policy.jitter_seed;
        assert_eq!(
            policy.delay_for(&hinted, 0, &mut jitter),
            Duration::from_millis(123),
            "the hint is exact — no jitter"
        );
        let d = policy.delay_for(&TransportError::Disconnected, 0, &mut jitter);
        assert!(d >= policy.base_delay, "non-busy errors keep the backoff");
    }

    #[test]
    fn transcript_accounts_coalesced_batches_at_wire_size() {
        let frames: Vec<Frame> = (0..16u64).map(|i| Frame::encode(1, &i)).collect();
        let batch = TranscriptEntry {
            direction: Direction::Sent,
            coalesced: true,
            frames: frames.clone(),
        };
        let singles = TranscriptEntry {
            direction: Direction::Sent,
            coalesced: false,
            frames,
        };
        assert!(batch.wire_len() < singles.wire_len());
    }
}
