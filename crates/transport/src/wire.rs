//! A small self-describing binary wire codec for protocol messages.
//!
//! The codec is deliberately simple (length-prefixed, little-endian,
//! no schema evolution) — every message type the protocols exchange is
//! versioned by its frame kind instead.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ppcs_math::Fp256;

use crate::error::TransportError;

/// Serialization into the ppcs wire format.
pub trait Encodable: Sized {
    /// The smallest number of bytes any encoding of this type occupies.
    ///
    /// [`decode_seq`] divides the remaining payload by this bound before
    /// allocating, so a hostile length prefix can never reserve more
    /// memory than the payload it arrived in could possibly describe.
    /// Must never be 0; types whose minimum is unknown keep the default
    /// of 1 (sound, just a weaker bound).
    const MIN_WIRE_LEN: usize = 1;

    /// Appends the encoded form to `out`.
    fn encode(&self, out: &mut BytesMut);
    /// Decodes a value, advancing `input`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Decode`] on truncated or malformed input.
    fn decode(input: &mut Bytes) -> Result<Self, TransportError>;
}

fn need(input: &Bytes, n: usize, what: &str) -> Result<(), TransportError> {
    if input.remaining() < n {
        Err(TransportError::Decode(format!(
            "truncated input: need {n} bytes for {what}, have {}",
            input.remaining()
        )))
    } else {
        Ok(())
    }
}

impl Encodable for u8 {
    fn encode(&self, out: &mut BytesMut) {
        out.put_u8(*self);
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 1, "u8")?;
        Ok(input.get_u8())
    }
}

impl Encodable for u16 {
    const MIN_WIRE_LEN: usize = 2;
    fn encode(&self, out: &mut BytesMut) {
        out.put_u16_le(*self);
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 2, "u16")?;
        Ok(input.get_u16_le())
    }
}

impl Encodable for u32 {
    const MIN_WIRE_LEN: usize = 4;
    fn encode(&self, out: &mut BytesMut) {
        out.put_u32_le(*self);
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 4, "u32")?;
        Ok(input.get_u32_le())
    }
}

impl Encodable for u64 {
    const MIN_WIRE_LEN: usize = 8;
    fn encode(&self, out: &mut BytesMut) {
        out.put_u64_le(*self);
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 8, "u64")?;
        Ok(input.get_u64_le())
    }
}

impl Encodable for usize {
    const MIN_WIRE_LEN: usize = 8;
    fn encode(&self, out: &mut BytesMut) {
        out.put_u64_le(*self as u64);
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 8, "usize")?;
        let v = input.get_u64_le();
        usize::try_from(v)
            .map_err(|_| TransportError::Decode(format!("usize {v} exceeds platform width")))
    }
}

impl Encodable for bool {
    fn encode(&self, out: &mut BytesMut) {
        out.put_u8(u8::from(*self));
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 1, "bool")?;
        match input.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(TransportError::Decode(format!("invalid bool byte {other}"))),
        }
    }
}

impl Encodable for f64 {
    const MIN_WIRE_LEN: usize = 8;
    fn encode(&self, out: &mut BytesMut) {
        out.put_u64_le(self.to_bits());
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 8, "f64")?;
        Ok(f64::from_bits(input.get_u64_le()))
    }
}

impl Encodable for Fp256 {
    const MIN_WIRE_LEN: usize = 32;
    fn encode(&self, out: &mut BytesMut) {
        out.put_slice(&self.to_bytes());
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        need(input, 32, "Fp256")?;
        let mut bytes = [0u8; 32];
        input.copy_to_slice(&mut bytes);
        // Reject values >= p rather than silently reducing: a malleable
        // encoding would let byte-distinct transcripts replay identically.
        Fp256::from_bytes_canonical(&bytes).ok_or_else(|| {
            TransportError::Decode("non-canonical Fp256 encoding (value >= field modulus)".into())
        })
    }
}

impl Encodable for Vec<u8> {
    // An empty byte vector still carries its 8-byte length prefix.
    const MIN_WIRE_LEN: usize = 8;
    fn encode(&self, out: &mut BytesMut) {
        (self.len() as u64).encode(out);
        out.put_slice(self);
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        let len = usize::decode(input)?;
        need(input, len, "byte vector body")?;
        let mut v = vec![0u8; len];
        input.copy_to_slice(&mut v);
        Ok(v)
    }
}

// Stable Rust has no specialization, so a blanket `Vec<T>` impl would
// conflict with the byte-vector impl above; generic sequences go through
// the free functions below instead.

/// Encodes a slice of encodable values with a length prefix.
pub fn encode_seq<T: Encodable>(items: &[T], out: &mut BytesMut) {
    (items.len() as u64).encode(out);
    for item in items {
        item.encode(out);
    }
}

/// Decodes a length-prefixed sequence.
///
/// # Errors
///
/// Returns [`TransportError::Decode`] on truncated or malformed input.
pub fn decode_seq<T: Encodable>(input: &mut Bytes) -> Result<Vec<T>, TransportError> {
    let len = usize::decode(input)?;
    // The length prefix is attacker-controlled: before reserving any
    // memory, check that the remaining payload could actually hold `len`
    // elements at their minimum encoded size. Otherwise a 16-byte frame
    // claiming u64::MAX Fp256 elements would reserve gigabytes before
    // the first element decode failed.
    let min_len = T::MIN_WIRE_LEN.max(1);
    if len > input.remaining() / min_len {
        return Err(TransportError::Decode(format!(
            "sequence length {len} exceeds remaining {} bytes ({min_len}-byte elements)",
            input.remaining()
        )));
    }
    let mut items = Vec::with_capacity(len);
    for _ in 0..len {
        items.push(T::decode(input)?);
    }
    Ok(items)
}

impl<A: Encodable, B: Encodable> Encodable for (A, B) {
    const MIN_WIRE_LEN: usize = A::MIN_WIRE_LEN + B::MIN_WIRE_LEN;
    fn encode(&self, out: &mut BytesMut) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut Bytes) -> Result<Self, TransportError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encodable + PartialEq + std::fmt::Debug>(v: T) {
        let mut out = BytesMut::new();
        v.encode(&mut out);
        let mut input = out.freeze();
        assert_eq!(T::decode(&mut input).unwrap(), v);
        assert_eq!(input.remaining(), 0, "decoder must consume everything");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(65535u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(123456usize);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-1234.5678f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip((42u64, -0.5f64));
    }

    #[test]
    fn fp256_roundtrip() {
        roundtrip(Fp256::from_i64(-987654321));
    }

    #[test]
    fn fp256_decode_rejects_non_canonical_encodings() {
        // 2^256 - 1 is >= p, so this encoding has no canonical preimage.
        let mut input = Bytes::copy_from_slice(&[0xFF; 32]);
        match Fp256::decode(&mut input) {
            Err(TransportError::Decode(msg)) => {
                assert!(msg.contains("non-canonical"), "unexpected message: {msg}")
            }
            other => panic!("expected Decode error, got {other:?}"),
        }
    }

    #[test]
    fn byte_vec_roundtrip() {
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Vec::<u8>::new());
    }

    #[test]
    fn sequences_roundtrip() {
        let items = vec![(1u64, 2.5f64), (3u64, -0.25f64)];
        let mut out = BytesMut::new();
        encode_seq(&items, &mut out);
        let mut input = out.freeze();
        let decoded: Vec<(u64, f64)> = decode_seq(&mut input).unwrap();
        assert_eq!(decoded, items);
    }

    #[test]
    fn truncated_input_errors() {
        let mut out = BytesMut::new();
        12345u64.encode(&mut out);
        let mut input = out.freeze().slice(0..4);
        assert!(matches!(
            u64::decode(&mut input),
            Err(TransportError::Decode(_))
        ));
    }

    #[test]
    fn bogus_length_prefix_errors_rather_than_allocating() {
        let mut out = BytesMut::new();
        (u64::MAX).encode(&mut out);
        let mut input = out.freeze();
        assert!(decode_seq::<f64>(&mut input).is_err());
    }

    #[test]
    fn u64_max_length_prefix_is_rejected_for_every_element_type() {
        // A u64::MAX prefix followed by a handful of real bytes must be
        // rejected by the pre-allocation bound, whatever the element type.
        fn attack<T: Encodable + std::fmt::Debug>() {
            let mut out = BytesMut::new();
            (u64::MAX).encode(&mut out);
            out.extend_from_slice(&[0u8; 64]);
            let mut input = out.freeze();
            match decode_seq::<T>(&mut input) {
                Err(TransportError::Decode(msg)) => {
                    assert!(msg.contains("exceeds remaining"), "got: {msg}")
                }
                other => panic!("expected Decode error, got {other:?}"),
            }
        }
        attack::<u8>();
        attack::<u64>();
        attack::<f64>();
        attack::<Fp256>();
        attack::<(u64, f64)>();
        attack::<Vec<u8>>();
    }

    #[test]
    fn length_prefix_cannot_reserve_more_than_the_payload_holds() {
        // 64 remaining bytes can hold at most two 32-byte field elements;
        // a prefix claiming 64 one-byte "elements" used to slip past the
        // old `len <= remaining` guard and reserve 64 * 32 bytes.
        let mut out = BytesMut::new();
        64u64.encode(&mut out);
        out.extend_from_slice(&[1u8; 64]);
        let mut input = out.freeze();
        assert!(decode_seq::<Fp256>(&mut input).is_err());

        // The same payload really does hold two elements.
        let mut ok = BytesMut::new();
        encode_seq(&[Fp256::from_i64(1), Fp256::from_i64(2)], &mut ok);
        let mut input = ok.freeze();
        assert_eq!(decode_seq::<Fp256>(&mut input).unwrap().len(), 2);
    }

    #[test]
    fn invalid_bool_errors() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        let mut input = out.freeze();
        assert!(bool::decode(&mut input).is_err());
    }
}
