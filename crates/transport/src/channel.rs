//! In-memory duplex channels with traffic accounting.
//!
//! Each protocol session runs over a pair of [`Endpoint`]s. The endpoints
//! count frames and payload bytes in both directions, which is how the
//! benchmark harness reports the communication cost of each protocol —
//! the paper's Fig. 9/10 discussion attributes most private-protocol cost
//! to the random-polynomial traffic, and these counters make that visible.

use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::error::TransportError;
use crate::wire::Encodable;

/// A tagged message: a `kind` discriminant plus an opaque payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Protocol-defined discriminant for the message type.
    pub kind: u16,
    /// Encoded message body.
    pub payload: Bytes,
}

impl Frame {
    /// Frame header overhead charged to the traffic counters, matching a
    /// minimal length-prefixed TCP framing (2-byte kind + 4-byte length).
    pub const HEADER_LEN: usize = 6;

    /// Builds a frame by encoding `body` with the wire codec.
    pub fn encode<T: Encodable>(kind: u16, body: &T) -> Self {
        let mut out = BytesMut::new();
        body.encode(&mut out);
        Self {
            kind,
            payload: out.freeze(),
        }
    }

    /// Decodes the payload as `T`, checking the kind tag first.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnexpectedFrame`] on a kind mismatch and
    /// [`TransportError::Decode`] if the payload is malformed or has
    /// trailing bytes.
    pub fn decode_as<T: Encodable>(&self, expected_kind: u16) -> Result<T, TransportError> {
        if self.kind != expected_kind {
            return Err(TransportError::UnexpectedFrame {
                expected: expected_kind,
                got: self.kind,
            });
        }
        let mut input = self.payload.clone();
        let value = T::decode(&mut input)?;
        if !input.is_empty() {
            return Err(TransportError::Decode(format!(
                "{} trailing bytes after frame body",
                input.len()
            )));
        }
        Ok(value)
    }

    /// Total accounted size (header + payload).
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.payload.len()
    }
}

/// Cumulative traffic counters for one endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Frames sent by this endpoint.
    pub frames_sent: u64,
    /// Wire bytes (header + payload) sent by this endpoint.
    pub bytes_sent: u64,
    /// Frames received by this endpoint.
    pub frames_received: u64,
    /// Wire bytes received by this endpoint.
    pub bytes_received: u64,
}

impl TrafficStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

#[derive(Debug, Default)]
struct StatsCell {
    stats: Mutex<TrafficStats>,
}

/// The medium an endpoint speaks over.
#[derive(Debug)]
enum Backend {
    /// In-memory crossbeam channels (tests, benches, co-located parties).
    Memory {
        tx: Sender<Frame>,
        rx: Receiver<Frame>,
    },
    /// A framed TCP socket (real distributed deployment; see
    /// [`tcp_connect`](crate::tcp_connect) / [`tcp_accept`](crate::tcp_accept)).
    Tcp(Mutex<crate::tcp::TcpConnection>),
}

/// One side of a duplex protocol connection — in-memory or TCP; the
/// protocols are agnostic.
///
/// # Examples
///
/// ```
/// use ppcs_transport::{duplex, Frame};
///
/// let (alice, bob) = duplex();
/// alice.send(Frame::encode(1, &42u64))?;
/// let frame = bob.recv()?;
/// assert_eq!(frame.decode_as::<u64>(1)?, 42);
/// # Ok::<(), ppcs_transport::TransportError>(())
/// ```
#[derive(Debug)]
pub struct Endpoint {
    backend: Backend,
    stats: Arc<StatsCell>,
    /// Default timeout for blocking receives; `None` blocks forever.
    recv_timeout: Option<Duration>,
}

impl Endpoint {
    /// Wraps a connected TCP stream.
    ///
    /// # Errors
    ///
    /// Surfaces socket configuration failures.
    pub(crate) fn from_tcp(stream: std::net::TcpStream) -> Result<Self, TransportError> {
        Ok(Self {
            backend: Backend::Tcp(Mutex::new(crate::tcp::TcpConnection::new(stream)?)),
            stats: Arc::new(StatsCell::default()),
            recv_timeout: Some(Duration::from_secs(30)),
        })
    }

    /// Sends a frame to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer was dropped.
    pub fn send(&self, frame: Frame) -> Result<(), TransportError> {
        let len = frame.wire_len() as u64;
        match &self.backend {
            Backend::Memory { tx, .. } => {
                tx.send(frame).map_err(|_| TransportError::Disconnected)?;
            }
            Backend::Tcp(conn) => conn.lock().send(&frame)?,
        }
        let mut s = self.stats.stats.lock();
        s.frames_sent += 1;
        s.bytes_sent += len;
        Ok(())
    }

    /// Encodes and sends a message in one call.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer was dropped.
    pub fn send_msg<T: Encodable>(&self, kind: u16, body: &T) -> Result<(), TransportError> {
        self.send(Frame::encode(kind, body))
    }

    /// Receives the next frame, honoring the configured timeout.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the peer dropped its endpoint,
    /// [`TransportError::Timeout`] if the configured deadline passed.
    pub fn recv(&self) -> Result<Frame, TransportError> {
        let frame = match &self.backend {
            Backend::Memory { rx, .. } => match self.recv_timeout {
                None => rx.recv().map_err(|_| TransportError::Disconnected)?,
                Some(limit) => rx.recv_timeout(limit).map_err(|e| match e {
                    RecvTimeoutError::Timeout => TransportError::Timeout,
                    RecvTimeoutError::Disconnected => TransportError::Disconnected,
                })?,
            },
            Backend::Tcp(conn) => {
                let mut conn = conn.lock();
                conn.set_read_timeout(self.recv_timeout)?;
                conn.recv()?
            }
        };
        let mut s = self.stats.stats.lock();
        s.frames_received += 1;
        s.bytes_received += frame.wire_len() as u64;
        Ok(frame)
    }

    /// Receives and decodes a message of the expected kind.
    ///
    /// # Errors
    ///
    /// Any [`TransportError`] from [`Endpoint::recv`] or
    /// [`Frame::decode_as`].
    pub fn recv_msg<T: Encodable>(&self, expected_kind: u16) -> Result<T, TransportError> {
        self.recv()?.decode_as(expected_kind)
    }

    /// Sets the blocking-receive timeout (defaults to 30 s).
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.recv_timeout = timeout;
    }

    /// Snapshot of this endpoint's traffic counters.
    pub fn stats(&self) -> TrafficStats {
        *self.stats.stats.lock()
    }

    /// Resets the traffic counters (used between benchmark iterations).
    pub fn reset_stats(&self) {
        *self.stats.stats.lock() = TrafficStats::default();
    }
}

/// Creates a connected pair of endpoints.
pub fn duplex() -> (Endpoint, Endpoint) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let default_timeout = Some(Duration::from_secs(30));
    let a = Endpoint {
        backend: Backend::Memory { tx: tx_ab, rx: rx_ba },
        stats: Arc::new(StatsCell::default()),
        recv_timeout: default_timeout,
    };
    let b = Endpoint {
        backend: Backend::Memory { tx: tx_ba, rx: rx_ab },
        stats: Arc::new(StatsCell::default()),
        recv_timeout: default_timeout,
    };
    (a, b)
}

/// Runs two party closures on separate threads over a fresh duplex
/// connection and returns both results.
///
/// Protocol errors propagate as panics in the party threads; this helper
/// re-raises them on the caller thread with the party name attached.
///
/// # Panics
///
/// Panics if either party thread panics.
pub fn run_pair<FA, FB, RA, RB>(alice: FA, bob: FB) -> (RA, RB)
where
    FA: FnOnce(Endpoint) -> RA + Send,
    FB: FnOnce(Endpoint) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let (ep_a, ep_b) = duplex();
    std::thread::scope(|scope| {
        let ha = scope.spawn(move || alice(ep_a));
        let hb = scope.spawn(move || bob(ep_b));
        let ra = match ha.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        };
        let rb = match hb.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (a, b) = duplex();
        a.send_msg(7, &123u64).unwrap();
        assert_eq!(b.recv_msg::<u64>(7).unwrap(), 123);
    }

    #[test]
    fn kind_mismatch_is_detected() {
        let (a, b) = duplex();
        a.send_msg(7, &123u64).unwrap();
        let err = b.recv_msg::<u64>(8).unwrap_err();
        assert_eq!(
            err,
            TransportError::UnexpectedFrame {
                expected: 8,
                got: 7
            }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (a, b) = duplex();
        a.send_msg(1, &(1u64, 2u64)).unwrap();
        assert!(matches!(
            b.recv_msg::<u64>(1),
            Err(TransportError::Decode(_))
        ));
    }

    #[test]
    fn stats_count_both_directions() {
        let (a, b) = duplex();
        a.send_msg(1, &1u64).unwrap();
        a.send_msg(1, &2u64).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        b.send_msg(2, &vec![0u8; 100]).unwrap();
        a.recv().unwrap();

        let sa = a.stats();
        assert_eq!(sa.frames_sent, 2);
        assert_eq!(sa.bytes_sent, 2 * (Frame::HEADER_LEN as u64 + 8));
        assert_eq!(sa.frames_received, 1);
        let sb = b.stats();
        assert_eq!(sb.frames_received, 2);
        assert_eq!(sb.bytes_sent, Frame::HEADER_LEN as u64 + 8 + 100);
        a.reset_stats();
        assert_eq!(a.stats(), TrafficStats::default());
    }

    #[test]
    fn disconnect_is_reported() {
        let (a, b) = duplex();
        drop(b);
        assert_eq!(a.send_msg(1, &1u64), Err(TransportError::Disconnected));
        assert_eq!(a.recv().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn timeout_is_reported() {
        let (mut a, _b) = duplex();
        a.set_recv_timeout(Some(Duration::from_millis(10)));
        assert_eq!(a.recv().unwrap_err(), TransportError::Timeout);
    }

    #[test]
    fn run_pair_exchanges_messages() {
        let (sum_a, sum_b) = run_pair(
            |ep| {
                ep.send_msg(1, &10u64).unwrap();
                ep.recv_msg::<u64>(2).unwrap()
            },
            |ep| {
                let v = ep.recv_msg::<u64>(1).unwrap();
                ep.send_msg(2, &(v * 2)).unwrap();
                v
            },
        );
        assert_eq!(sum_a, 20);
        assert_eq!(sum_b, 10);
    }
}
